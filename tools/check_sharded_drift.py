"""Golden-drift gate for the sharded event loop.

Runs the same small cluster scenario through the single-process
reference and the sharded coordinator and fails on *any* divergence —
the sharded loop's contract is bit-equality with the reference for a
fixed seed, independent of worker count, and bit-identical repeat runs.
Three drills:

* **exact, fault-free** — round-robin fleet, sharded(2) and sharded(4)
  vs single-process, plus a repeat sharded run (determinism);
* **exact, with crashes** — session-affinity routing under a crash
  schedule, so refugee re-routing at shard barriers stays pinned;
* **fidelity: fast + shards** — fast mode is *not* bit-equal to the
  single-process reference (spans are bounded at per-target arrivals;
  the tolerance contract lives in ``tests/test_fidelity.py``), so here
  only run-to-run determinism is gated.

Standalone (no pytest machinery), mirroring
``tools/capture_goldens.py --verify``: a clean-process gate CI can run
that names exactly which quantity moved.

Usage::

    PYTHONPATH=src python tools/check_sharded_drift.py
"""

from __future__ import annotations

import dataclasses
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cluster import ClusterConfig, ClusterSimulator  # noqa: E402
from repro.serving import WorkloadConfig, generate_workload  # noqa: E402
from repro.serving.faults import CrashSpec, FaultSchedule  # noqa: E402
from repro.serving.workload import merge_workloads  # noqa: E402

MODEL = "tiny-test"


def _workload(per: int, rate: float, seed: int):
    return merge_workloads(*[
        generate_workload(
            WorkloadConfig(num_requests=per, rate=rate),
            seed=seed + i,
            tenant=f"t{i}",
        )
        for i in range(4)
    ])


def _run(config: ClusterConfig, workload):
    sim = ClusterSimulator(MODEL, "fcfs", config)
    return sim.run(list(workload))


def _fingerprint(report) -> dict:
    """Every bit-pinned quantity of a run, as dotted-path scalars."""
    flat = {
        "makespan": report.makespan,
        "machine_gpu_busy": tuple(report.machine_gpu_busy),
        "machine_dimm_busy": tuple(report.machine_dimm_busy),
        "mean_batch_size": report.mean_batch_size,
    }
    for r in report.records:
        key = f"record[{r.request.req_id}]"
        flat[f"{key}.machine"] = r.machine
        flat[f"{key}.prefill_start"] = r.prefill_start
        flat[f"{key}.token_times"] = tuple(r.token_times)
        flat[f"{key}.preemptions"] = r.preemptions
        flat[f"{key}.migrations"] = r.migrations
        flat[f"{key}.needs_prefill"] = r.needs_prefill
    return flat


def _diff(name: str, want: dict, got: dict) -> list[str]:
    problems = []
    for key in sorted(set(want) | set(got)):
        if want.get(key) != got.get(key):
            problems.append(
                f"{name}: {key}: {want.get(key)!r} != {got.get(key)!r}")
    return problems


def main() -> int:
    problems: list[str] = []

    # exact mode, fault-free: sharded == single-process, any worker count
    base = ClusterConfig(num_machines=4, router="round-robin", max_batch=4)
    workload = _workload(per=20, rate=120.0, seed=7)
    reference = _fingerprint(_run(base, workload))
    for shards in (2, 4):
        cfg = dataclasses.replace(base, shards=shards)
        problems += _diff(f"exact shards={shards} vs single",
                          reference, _fingerprint(_run(cfg, workload)))
    cfg = dataclasses.replace(base, shards=2)
    problems += _diff("exact shards=2 repeat run",
                      _fingerprint(_run(cfg, workload)),
                      _fingerprint(_run(cfg, workload)))

    # exact mode under crashes: refugee routing at barriers stays pinned
    faults = FaultSchedule(crashes=(
        CrashSpec(machine=1, at=0.05, restart_after=0.1),
        CrashSpec(machine=2, at=0.12, restart_after=0.15),
    ))
    chaos = ClusterConfig(num_machines=4, router="session-affinity",
                          max_batch=4, faults=faults)
    chaos_workload = _workload(per=25, rate=300.0, seed=13)
    chaos_ref = _run(chaos, chaos_workload)
    if not any(r.migrations for r in chaos_ref.records):
        problems.append("chaos drill: no migrations — crash schedule "
                        "no longer exercises refugee routing")
    problems += _diff(
        "chaos shards=2 vs single", _fingerprint(chaos_ref),
        _fingerprint(_run(dataclasses.replace(chaos, shards=2),
                          chaos_workload)))

    # fidelity: fast + shards: run-to-run determinism only
    fast = dataclasses.replace(base, fidelity="fast", shards=2)
    problems += _diff("fast shards=2 repeat run",
                      _fingerprint(_run(fast, workload)),
                      _fingerprint(_run(fast, workload)))

    if problems:
        print(f"FAIL: {len(problems)} sharded drift(s):", file=sys.stderr)
        for p in problems[:20]:
            print(f"  {p}", file=sys.stderr)
        if len(problems) > 20:
            print(f"  ... and {len(problems) - 20} more", file=sys.stderr)
        return 1
    print("OK: sharded runs bit-identical to the single-process "
          "reference (fault-free + chaos) and across repeat runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
