"""Capture golden outputs of the Hermes engine on ``tiny-test``.

Run once against a known-good engine to (re)generate
``tests/data/golden_engine_tiny.json`` and
``tests/data/golden_baselines_tiny.json``;
``tests/test_golden_equivalence.py`` then asserts that the current code
reproduces every recorded number exactly.  JSON float serialisation
round-trips (repr-based), so equality checks are bit-for-bit.

The second file pins the *offline baseline systems* (FlexGen, Deja Vu,
Accelerate, TensorRT-LLM): their ``run()`` byte accounting backs the
paper's comparative figures (fig09/fig17) and the steppable serving
backends, so refactors of their cost kernels are guarded the same way
the Hermes engine is.

``--verify`` instead *recomputes* every golden and diffs it against the
committed files without writing anything — the CI golden-drift gate.  It
covers the same ground as the equivalence test but from a clean process
with zero pytest machinery, so a drift report names exactly which
recorded quantity moved.

Usage::

    PYTHONPATH=src python tools/capture_goldens.py [engine_output.json]
    PYTHONPATH=src python tools/capture_goldens.py --verify
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.baselines import (
    DejaVu,
    FlexGen,
    HuggingfaceAccelerate,
    TensorRTLLM,
)
from repro.core import HermesConfig, HermesSystem
from repro.hardware import Machine
from repro.models import get_model
from repro.serving import (
    LengthDistribution,
    ServingConfig,
    ServingSimulator,
    WorkloadConfig,
    default_serving_trace,
    generate_workload,
)
from repro.sparsity import TraceConfig, generate_trace

#: mirrors tests/conftest.py's ``tiny_trace``
TRACE_CONFIG = dict(prompt_len=32, decode_len=64, granularity=4)
TRACE_SEED = 11

#: engine configurations exercised by the goldens — the default plus the
#: Fig. 13 ablation space, so every control-plane path is pinned
CONFIGS: dict[str, HermesConfig] = {
    "default": HermesConfig(),
    "oracle": HermesConfig(oracle=True),
    "random-no-online": HermesConfig(
        partition_strategy="random", online_adjustment=False,
        window_scheduling=False),
    "token-only": HermesConfig(layer_prediction=False,
                               window_scheduling=False),
    "layer-only": HermesConfig(token_prediction=False,
                               window_scheduling=False),
    "no-window": HermesConfig(window_scheduling=False),
}
BATCHES = (1, 4)

SERVING_RATES = (50.0, 2000.0)
SERVING_POLICIES = ("fcfs", "hermes-union")
SERVING_SEED = 3


def engine_goldens() -> dict:
    machine = Machine()
    model = get_model("tiny-test")
    trace = generate_trace(model, TraceConfig(**TRACE_CONFIG), seed=TRACE_SEED)
    runs = {}
    for name, config in CONFIGS.items():
        for batch in BATCHES:
            session = HermesSystem(machine, model, config).session(
                trace, batch
            )
            session.prefill()
            steps = [
                session.decode_step() for _ in range(trace.n_decode_tokens)
            ]
            result = session.finish()
            runs[f"{name}/batch{batch}"] = {
                "prefill_time": result.prefill_time,
                "decode_time": result.decode_time,
                "breakdown": dict(result.breakdown),
                "predictor_accuracy": result.metadata["predictor_accuracy"],
                "predictor_recall": result.metadata["predictor_recall"],
                "remap_bytes": result.metadata["remap_bytes"],
                "remap_groups": result.metadata["remap_groups"],
                "swap_bytes": result.metadata["swap_bytes"],
                "hot_bytes": result.metadata["hot_bytes"],
                "step_seconds": [s.seconds for s in steps],
                "step_gpu_busy": [s.gpu_busy for s in steps],
                "step_dimm_busy": [s.dimm_busy for s in steps],
            }
    return runs


def serving_goldens() -> dict:
    model = get_model("tiny-test")
    trace = default_serving_trace(model, granularity=4)
    runs = {}
    for rate in SERVING_RATES:
        workload = generate_workload(
            WorkloadConfig(
                rate=rate, num_requests=32,
                prompt_lens=LengthDistribution(mean=32),
                output_lens=LengthDistribution(kind="uniform", mean=24,
                                               low=8, high=40)),
            seed=SERVING_SEED)
        for policy in SERVING_POLICIES:
            simulator = ServingSimulator(
                "tiny-test", policy, ServingConfig(max_batch=16), trace=trace
            )
            report = simulator.run(workload)
            runs[f"rate{rate:g}/{policy}"] = {
                "completed": len(report.completed),
                "tokens_per_second": report.tokens_per_second,
                "ttft_p50": report.ttft_percentile(50),
                "ttft_p99": report.ttft_percentile(99),
                "e2e_p50": report.e2e_percentile(50),
                "e2e_p99": report.e2e_percentile(99),
                "mean_batch": report.mean_batch_size,
                "dimm_utilization": report.dimm_utilization,
                "makespan": report.makespan,
            }
    return runs


#: offline baseline systems pinned by the second golden file; TensorRT
#: models its own 5x A100 cluster, the rest run on the default machine
BASELINE_BATCHES = (1, 4)


def _baseline_systems(machine: Machine, model) -> dict:
    return {
        "flexgen": FlexGen(machine, model),
        "dejavu": DejaVu(machine, model),
        "accelerate": HuggingfaceAccelerate(machine, model),
        "tensorrt": TensorRTLLM(model),
    }


def baseline_goldens() -> dict:
    machine = Machine()
    model = get_model("tiny-test")
    trace = generate_trace(model, TraceConfig(**TRACE_CONFIG), seed=TRACE_SEED)
    runs = {}
    for name, system in _baseline_systems(machine, model).items():
        for batch in BASELINE_BATCHES:
            result = system.run(trace, batch=batch)
            runs[f"{name}/batch{batch}"] = {
                "system": result.system,
                "prefill_time": result.prefill_time,
                "decode_time": result.decode_time,
                "breakdown": dict(result.breakdown),
                "metadata": dict(result.metadata),
            }
    return runs


def _flatten(value, prefix: str = "") -> dict:
    """Flatten nested dicts/lists to dotted-path -> leaf scalars."""
    flat = {}
    if isinstance(value, dict):
        for key, sub in value.items():
            flat.update(_flatten(sub, f"{prefix}{key}."))
    elif isinstance(value, list):
        for i, sub in enumerate(value):
            flat.update(_flatten(sub, f"{prefix}{i}."))
    else:
        flat[prefix.rstrip(".")] = value
    return flat


def verify(path: pathlib.Path, goldens: dict) -> int:
    """Diff freshly-computed goldens against the committed record."""
    if not path.exists():
        print(f"FAIL: no committed goldens at {path}", file=sys.stderr)
        return 1
    # round-trip through JSON so float repr conventions match the file
    current = _flatten(json.loads(json.dumps(goldens)))
    recorded = _flatten(json.loads(path.read_text()))
    drifted = sorted(
        key for key in set(current) | set(recorded)
        if current.get(key) != recorded.get(key))
    if drifted:
        print(
            f"FAIL: {len(drifted)} golden value(s) drifted from {path}:",
            file=sys.stderr,
        )
        for key in drifted[:20]:
            print(f"  {key}: recorded {recorded.get(key)!r} -> "
                  f"current {current.get(key)!r}", file=sys.stderr)
        if len(drifted) > 20:
            print(f"  ... and {len(drifted) - 20} more", file=sys.stderr)
        print("if the change is intentional, regenerate with "
              "tools/capture_goldens.py", file=sys.stderr)
        return 1
    print(f"OK: {len(current)} golden values match {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=None,
                        help="engine golden file (default: "
                             "tests/data/golden_engine_tiny.json); the "
                             "baseline goldens land next to it")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="recompute goldens and fail on any drift " "instead of writing",
    )
    args = parser.parse_args(argv)
    data_dir = (
        pathlib.Path(__file__).resolve().parent.parent / "tests" / "data"
    )
    out = (
        pathlib.Path(args.path)
        if args.path
        else data_dir / "golden_engine_tiny.json"
    )
    trace_spec = {**TRACE_CONFIG, "seed": TRACE_SEED, "model": "tiny-test"}
    files = {
        out: {
            "trace": trace_spec,
            "engine": engine_goldens(),
            "serving": serving_goldens(),
        },
        out.parent / "golden_baselines_tiny.json": {
            "trace": trace_spec,
            "baselines": baseline_goldens(),
        },
    }
    if args.verify:
        return max(verify(path, goldens) for path, goldens in files.items())
    for path, goldens in files.items():
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(goldens, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
