"""Capture golden outputs of the Hermes engine on ``tiny-test``.

Run once against a known-good engine to (re)generate
``tests/data/golden_engine_tiny.json``; ``tests/test_golden_equivalence.py``
then asserts that the current engine reproduces every recorded number
exactly.  JSON float serialisation round-trips (repr-based), so equality
checks are bit-for-bit.

Usage::

    PYTHONPATH=src python tools/capture_goldens.py [output.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.core import HermesConfig, HermesSystem
from repro.hardware import Machine
from repro.models import get_model
from repro.serving import (
    LengthDistribution,
    ServingConfig,
    ServingSimulator,
    WorkloadConfig,
    default_serving_trace,
    generate_workload,
)
from repro.sparsity import TraceConfig, generate_trace

#: mirrors tests/conftest.py's ``tiny_trace``
TRACE_CONFIG = dict(prompt_len=32, decode_len=64, granularity=4)
TRACE_SEED = 11

#: engine configurations exercised by the goldens — the default plus the
#: Fig. 13 ablation space, so every control-plane path is pinned
CONFIGS: dict[str, HermesConfig] = {
    "default": HermesConfig(),
    "oracle": HermesConfig(oracle=True),
    "random-no-online": HermesConfig(
        partition_strategy="random", online_adjustment=False,
        window_scheduling=False),
    "token-only": HermesConfig(layer_prediction=False,
                               window_scheduling=False),
    "layer-only": HermesConfig(token_prediction=False,
                               window_scheduling=False),
    "no-window": HermesConfig(window_scheduling=False),
}
BATCHES = (1, 4)

SERVING_RATES = (50.0, 2000.0)
SERVING_POLICIES = ("fcfs", "hermes-union")
SERVING_SEED = 3


def engine_goldens() -> dict:
    machine = Machine()
    model = get_model("tiny-test")
    trace = generate_trace(model, TraceConfig(**TRACE_CONFIG),
                           seed=TRACE_SEED)
    runs = {}
    for name, config in CONFIGS.items():
        for batch in BATCHES:
            session = HermesSystem(machine, model, config).session(
                trace, batch)
            session.prefill()
            steps = [session.decode_step() for _ in
                     range(trace.n_decode_tokens)]
            result = session.finish()
            runs[f"{name}/batch{batch}"] = {
                "prefill_time": result.prefill_time,
                "decode_time": result.decode_time,
                "breakdown": dict(result.breakdown),
                "predictor_accuracy": result.metadata["predictor_accuracy"],
                "predictor_recall": result.metadata["predictor_recall"],
                "remap_bytes": result.metadata["remap_bytes"],
                "remap_groups": result.metadata["remap_groups"],
                "swap_bytes": result.metadata["swap_bytes"],
                "hot_bytes": result.metadata["hot_bytes"],
                "step_seconds": [s.seconds for s in steps],
                "step_gpu_busy": [s.gpu_busy for s in steps],
                "step_dimm_busy": [s.dimm_busy for s in steps],
            }
    return runs


def serving_goldens() -> dict:
    model = get_model("tiny-test")
    trace = default_serving_trace(model, granularity=4)
    runs = {}
    for rate in SERVING_RATES:
        workload = generate_workload(
            WorkloadConfig(
                rate=rate, num_requests=32,
                prompt_lens=LengthDistribution(mean=32),
                output_lens=LengthDistribution(kind="uniform", mean=24,
                                               low=8, high=40)),
            seed=SERVING_SEED)
        for policy in SERVING_POLICIES:
            simulator = ServingSimulator(
                "tiny-test", policy, ServingConfig(max_batch=16),
                trace=trace)
            report = simulator.run(workload)
            runs[f"rate{rate:g}/{policy}"] = {
                "completed": len(report.completed),
                "tokens_per_second": report.tokens_per_second,
                "ttft_p50": report.ttft_percentile(50),
                "ttft_p99": report.ttft_percentile(99),
                "e2e_p50": report.e2e_percentile(50),
                "e2e_p99": report.e2e_percentile(99),
                "mean_batch": report.mean_batch_size,
                "dimm_utilization": report.dimm_utilization,
                "makespan": report.makespan,
            }
    return runs


def main(argv: list[str]) -> int:
    out = pathlib.Path(argv[1]) if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent
        / "tests" / "data" / "golden_engine_tiny.json")
    goldens = {
        "trace": {**TRACE_CONFIG, "seed": TRACE_SEED, "model": "tiny-test"},
        "engine": engine_goldens(),
        "serving": serving_goldens(),
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(goldens, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
