"""Performance benchmark driver: record and gate the decode fast path.

Measures decode steps/sec (batch 1 and 8) plus one sweep's wall time and
maintains ``BENCH_decode.json`` at the repo root — the committed record of
the performance trajectory.  Modes:

* default — measure and print, compare against the committed baseline
  informationally.
* ``--check`` — exit non-zero if decode steps/sec fall more than
  ``--tolerance`` (default 30 %) below the committed baseline.  Used as
  the CI bench smoke gate.  Absolute steps/sec vary across machines, so
  the committed baseline is first *scaled* by the ratio of this machine's
  numpy calibration score to the recorded one (a fixed engine-independent
  kernel mix — see ``benchmarks.bench_decode.bench_calibration``); a host
  can instead pin its own raw reference via the ``REPRO_BENCH_BASELINE``
  env var (a float, steps/sec at batch 1), which skips calibration.
* ``--update`` — rewrite ``BENCH_decode.json`` with this machine's
  numbers (appends the previous record to its ``history``).
* ``--quick`` — shorter measurement windows; what CI runs.

Usage::

    PYTHONPATH=src python tools/bench.py --quick
    PYTHONPATH=src python tools/bench.py --quick --check
    PYTHONPATH=src python tools/bench.py --update
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from benchmarks.bench_decode import (  # noqa: E402
    bench_calibration,
    bench_decode_steps,
    bench_sweep,
)
from tools.bench_common import (  # noqa: E402
    calibration_scale,
    emit_outputs,
    load_baseline as _load_baseline,
    make_parser,
)

BENCH_FILE = ROOT / "BENCH_decode.json"
BASELINE_ENV = "REPRO_BENCH_BASELINE"


def measure(quick: bool) -> dict:
    min_seconds = 0.5 if quick else 2.0
    decode_b1 = bench_decode_steps(1, min_seconds=min_seconds)
    decode_b8 = bench_decode_steps(8, min_seconds=min_seconds)
    sweep = bench_sweep("serving", quick=True, jobs=1)
    return {
        "schema": 2,
        "recorded_unix": round(time.time(), 3),
        "quick": quick,
        "calibration_iters_per_sec": bench_calibration(),
        "decode": decode_b1,
        "decode_batch8": decode_b8,
        "sweep": sweep,
    }


def load_baseline() -> dict | None:
    return _load_baseline(BENCH_FILE)


def main(argv: list[str] | None = None) -> int:
    parser = make_parser(
        __doc__.splitlines()[0],
        BENCH_FILE,
        tolerance=0.30,
        check_help="fail if decode steps/sec regressed past "
                   "--tolerance vs the baseline",
    )
    args = parser.parse_args(argv)

    current = measure(args.quick)
    b1 = current["decode"]["steps_per_sec"]
    b8 = current["decode_batch8"]["steps_per_sec"]
    print(f"decode steps/sec  batch 1: {b1:,.0f}   batch 8: {b8:,.0f}")
    print(f"sweep wall time   {current['sweep']['experiment']} (quick, "
          f"1 job): {current['sweep']['seconds']:.2f}s")

    baseline = load_baseline()
    env_ref = os.environ.get(BASELINE_ENV, "").strip()
    if env_ref:
        ref_b1 = float(env_ref)
        ref_src = f"{BASELINE_ENV} env"
    elif baseline is not None:
        scale, suffix = calibration_scale(current, baseline)
        ref_b1 = baseline["decode"]["steps_per_sec"] * scale
        ref_src = "BENCH_decode.json" + suffix
    else:
        ref_b1 = None
        ref_src = "none"

    status = 0
    if ref_b1:
        ratio = b1 / ref_b1
        print(f"vs baseline ({ref_src}: {ref_b1:,.0f}): {ratio:.2f}x")
        if args.check and ratio < 1.0 - args.tolerance:
            print("FAIL: decode steps/sec dropped "
                  f"{(1.0 - ratio) * 100:.0f}% (> "
                  f"{args.tolerance * 100:.0f}% allowed)", file=sys.stderr)
            status = 1
    elif args.check:
        print("FAIL: no baseline to check against "
              f"(commit BENCH_decode.json or set {BASELINE_ENV})",
              file=sys.stderr)
        status = 1

    emit_outputs(args, current, baseline, BENCH_FILE, status)
    return status


if __name__ == "__main__":
    sys.exit(main())
