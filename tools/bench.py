"""Performance benchmark driver: record and gate the decode fast path.

Measures decode steps/sec (batch 1 and 8) plus one sweep's wall time and
maintains ``BENCH_decode.json`` at the repo root — the committed record of
the performance trajectory.  Modes:

* default — measure and print, compare against the committed baseline
  informationally.
* ``--check`` — exit non-zero if decode steps/sec fall more than
  ``--tolerance`` (default 30 %) below the committed baseline.  Used as
  the CI bench smoke gate.  Absolute steps/sec vary across machines, so
  the committed baseline is first *scaled* by the ratio of this machine's
  numpy calibration score to the recorded one (a fixed engine-independent
  kernel mix — see ``benchmarks.bench_decode.bench_calibration``); a host
  can instead pin its own raw reference via the ``REPRO_BENCH_BASELINE``
  env var (a float, steps/sec at batch 1), which skips calibration.
* ``--update`` — rewrite ``BENCH_decode.json`` with this machine's
  numbers (appends the previous record to its ``history``).
* ``--quick`` — shorter measurement windows; what CI runs.

Usage::

    PYTHONPATH=src python tools/bench.py --quick
    PYTHONPATH=src python tools/bench.py --quick --check
    PYTHONPATH=src python tools/bench.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from benchmarks.bench_decode import (  # noqa: E402
    bench_calibration,
    bench_decode_steps,
    bench_sweep,
)

BENCH_FILE = ROOT / "BENCH_decode.json"
BASELINE_ENV = "REPRO_BENCH_BASELINE"


def measure(quick: bool) -> dict:
    min_seconds = 0.5 if quick else 2.0
    decode_b1 = bench_decode_steps(1, min_seconds=min_seconds)
    decode_b8 = bench_decode_steps(8, min_seconds=min_seconds)
    sweep = bench_sweep("serving", quick=True, jobs=1)
    return {
        "schema": 2,
        "recorded_unix": round(time.time(), 3),
        "quick": quick,
        "calibration_iters_per_sec": bench_calibration(),
        "decode": decode_b1,
        "decode_batch8": decode_b8,
        "sweep": sweep,
    }


def load_baseline() -> dict | None:
    if not BENCH_FILE.exists():
        return None
    return json.loads(BENCH_FILE.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short measurement windows (CI smoke)",
    )
    parser.add_argument("--check", action="store_true",
                        help="fail if decode steps/sec regressed past "
                             "--tolerance vs the baseline")
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite BENCH_decode.json with this run",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop for --check " "(default 0.30)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="also write this run's record to PATH " "(for CI artifacts)",
    )
    args = parser.parse_args(argv)

    current = measure(args.quick)
    b1 = current["decode"]["steps_per_sec"]
    b8 = current["decode_batch8"]["steps_per_sec"]
    print(f"decode steps/sec  batch 1: {b1:,.0f}   batch 8: {b8:,.0f}")
    print(f"sweep wall time   {current['sweep']['experiment']} (quick, "
          f"1 job): {current['sweep']['seconds']:.2f}s")

    baseline = load_baseline()
    env_ref = os.environ.get(BASELINE_ENV, "").strip()
    if env_ref:
        ref_b1 = float(env_ref)
        ref_src = f"{BASELINE_ENV} env"
    elif baseline is not None:
        ref_b1 = baseline["decode"]["steps_per_sec"]
        ref_src = "BENCH_decode.json"
        # rescale the recorded baseline to this machine's speed so the
        # tolerance compares like with like across hosts
        ref_calib = baseline.get("calibration_iters_per_sec")
        if ref_calib:
            scale = current["calibration_iters_per_sec"] / ref_calib
            ref_b1 *= scale
            ref_src += f", calibrated x{scale:.2f}"
    else:
        ref_b1 = None
        ref_src = "none"

    status = 0
    if ref_b1:
        ratio = b1 / ref_b1
        print(f"vs baseline ({ref_src}: {ref_b1:,.0f}): {ratio:.2f}x")
        if args.check and ratio < 1.0 - args.tolerance:
            print("FAIL: decode steps/sec dropped "
                  f"{(1.0 - ratio) * 100:.0f}% (> "
                  f"{args.tolerance * 100:.0f}% allowed)", file=sys.stderr)
            status = 1
    elif args.check:
        print("FAIL: no baseline to check against "
              f"(commit BENCH_decode.json or set {BASELINE_ENV})",
              file=sys.stderr)
        status = 1

    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(current, indent=1) + "\n"
        )
        print(f"wrote {args.json_out}")
    if args.update and status == 0:
        if baseline is not None:
            history = baseline.pop("history", [])
            history.append(baseline)
            current["history"] = history[-20:]
        BENCH_FILE.write_text(json.dumps(current, indent=1) + "\n")
        print(f"wrote {BENCH_FILE}")
    return status


if __name__ == "__main__":
    sys.exit(main())
