"""Shared plumbing for the benchmark drivers (``bench.py`` and friends).

Every driver follows the same contract: measure, print, compare against
a committed baseline JSON at the repo root, and honour the same flag
set — ``--quick`` (short windows), ``--check`` (gate), ``--update``
(rewrite the baseline, archiving the old record), ``--tolerance``
(allowed fractional wall-time drop), ``--json-out`` (CI artifact).
This module owns that contract once: the argument surface, baseline
loading, the cross-host calibration scale, and the artifact/update
writes, so the drivers only contain what they actually measure.
"""

from __future__ import annotations

import argparse
import json
import pathlib

#: how many superseded records an ``--update`` keeps in ``history``
HISTORY_KEEP = 20


def make_parser(
    description: str,
    bench_file: pathlib.Path,
    *,
    tolerance: float,
    check_help: str,
) -> argparse.ArgumentParser:
    """The drivers' shared flag surface (identical names and semantics)."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short measurement windows (CI smoke)",
    )
    parser.add_argument("--check", action="store_true", help=check_help)
    parser.add_argument(
        "--update",
        action="store_true",
        help=f"rewrite {bench_file.name} with this run",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=tolerance,
        help="allowed fractional wall-time drop for --check "
             f"(default {tolerance:.2f})",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="also write this run's record to PATH (for CI artifacts)",
    )
    return parser


def load_baseline(bench_file: pathlib.Path) -> dict | None:
    """The committed baseline record, or ``None`` before the first one."""
    if not bench_file.exists():
        return None
    return json.loads(bench_file.read_text())


def calibration_scale(current: dict, baseline: dict) -> tuple[float, str]:
    """(scale, label suffix) rescaling the baseline to this host's speed.

    Wall-time baselines are recorded on one machine and checked on
    another; the ratio of numpy calibration scores (a fixed
    engine-independent kernel mix) converts recorded rates into what
    this host should achieve, so the tolerance compares like with like.
    Identity when the baseline predates calibration recording.
    """
    calib = baseline.get("calibration_iters_per_sec")
    if not calib:
        return 1.0, ""
    scale = current["calibration_iters_per_sec"] / calib
    return scale, f", calibrated x{scale:.2f}"


def emit_outputs(
    args: argparse.Namespace,
    current: dict,
    baseline: dict | None,
    bench_file: pathlib.Path,
    status: int,
) -> None:
    """The shared tail of every driver: ``--json-out`` and ``--update``.

    An update only lands on a clean run (``status == 0``) and archives
    the superseded record onto the new one's ``history`` (bounded to
    :data:`HISTORY_KEEP` entries).
    """
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(current, indent=1) + "\n"
        )
        print(f"wrote {args.json_out}")
    if args.update and status == 0:
        if baseline is not None:
            history = baseline.pop("history", [])
            history.append(baseline)
            current["history"] = history[-HISTORY_KEEP:]
        bench_file.write_text(json.dumps(current, indent=1) + "\n")
        print(f"wrote {bench_file}")
