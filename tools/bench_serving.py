"""Serving benchmark driver: record and gate the cluster scenario path.

Companion to ``tools/bench.py`` (decode fast path) for the serving
layer: measures end-to-end runs/sec of the CI smoke scenario
(``scenarios/mixed_slo_tiny.json``), the mixed-fleet backend scenario
(``scenarios/backend_shootout_tiny.json``), the fault-injection
drill (``scenarios/chaos_mixed_tiny.json``), and the 1000-machine
scale drill (``scenarios/megafleet_1k.json``, one run), maintaining
``BENCH_serving.json`` at the repo root.  Modes:

* default — measure and print, compare informationally.
* ``--check`` — exit non-zero when the *simulated* metrics (tokens/s,
  SLO attainment, preemptions) drift from the committed record beyond
  float noise, **or** when the fused-loop scenario runs/sec fall more
  than ``--tolerance`` (default 40 %) below the committed baseline
  after calibration scaling.  Simulated outputs are deterministic, so
  the drift half is a golden-style behaviour gate on the full cluster
  stack; the wall-time half guards the macro-stepped serving fast path
  the way ``tools/bench.py`` guards ``decode_step``.
* ``--update`` — rewrite ``BENCH_serving.json`` with this machine's
  numbers (appends the previous record to its ``history``).
* ``--quick`` — shorter measurement window; what CI runs.
* ``--json-out PATH`` — also dump this run's record (for CI artifacts).

Usage::

    PYTHONPATH=src python tools/bench_serving.py --quick
    PYTHONPATH=src python tools/bench_serving.py --quick --check
    PYTHONPATH=src python tools/bench_serving.py --update
"""

from __future__ import annotations

import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from benchmarks.bench_decode import bench_calibration  # noqa: E402
from benchmarks.bench_serving import (  # noqa: E402
    BENCH_MIXED_FLEET_SCENARIO,
    bench_degradation,
    bench_fault_overhead,
    bench_megafleet,
    bench_planner,
    bench_scenario,
    bench_telemetry_overhead,
)
from tools.bench_common import (  # noqa: E402
    calibration_scale,
    emit_outputs,
    load_baseline,
    make_parser,
)

BENCH_FILE = ROOT / "BENCH_serving.json"

#: records whose wall time and ``simulated`` half are gated by --check
GATED_KEYS = ("scenario", "mixed_fleet", "fault_overhead",
              "degradation", "planner", "megafleet_1k")

#: relative tolerance for the deterministic simulated-metric gate —
#: generous against float-libm jitter across platforms, far below any
#: real scheduling-behaviour change
DRIFT_RTOL = 1e-6


def measure(quick: bool) -> dict:
    min_seconds = 0.5 if quick else 2.0
    return {
        "schema": 1,
        "recorded_unix": round(time.time(), 3),
        "quick": quick,
        "calibration_iters_per_sec": bench_calibration(),
        "scenario": bench_scenario(min_seconds=min_seconds),
        # the heterogeneous hermes/dense/dejavu fleet behind the
        # throughput-weighted router: pins the backend dispatch path
        "mixed_fleet": bench_scenario(BENCH_MIXED_FLEET_SCENARIO,
                                      min_seconds=min_seconds / 2),
        # the fault-injection drill: pins migrations, availability,
        # and MTTR alongside the usual scenario metrics
        "fault_overhead": bench_fault_overhead(
            min_seconds=min_seconds / 2),
        # the correlated-failure drill: pins the domain crash +
        # degrade/renegotiation path (per-domain availability and
        # correlated-outage seconds)
        "degradation": bench_degradation(min_seconds=min_seconds / 2),
        # the capacity planner over the smoke scenario: pins the
        # enumerate/prune/frontier counts and the chosen fleet
        "planner": bench_planner(min_seconds=min_seconds / 2),
        # the 1000-machine scale drill (sharded loop + fidelity:fast):
        # one cold end-to-end run, identical in quick and full mode
        "megafleet_1k": bench_megafleet(),
        # what enabling telemetry costs, recorded informationally —
        # the gated keys above run the default NullTracer path
        "telemetry": bench_telemetry_overhead(min_seconds=min_seconds / 2),
    }


def _drifted(current: dict, baseline: dict, prefix: str = "") -> list[str]:
    """Human-readable diffs between simulated metric records."""
    problems = []
    for key in sorted(set(current) | set(baseline)):
        label = f"{prefix}{key}"
        if key not in current or key not in baseline:
            problems.append(f"{label}: missing on one side")
            continue
        want, got = baseline[key], current[key]
        if isinstance(want, dict):
            problems.extend(_drifted(got, want, f"{label}."))
            continue
        if isinstance(want, float) and want:
            ok = abs(got - want) <= DRIFT_RTOL * abs(want)
        else:
            ok = got == want
        if not ok:
            problems.append(
                f"{label}: baseline {want!r} -> " f"current {got!r}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = make_parser(
        __doc__.splitlines()[0],
        BENCH_FILE,
        tolerance=0.40,
        check_help="fail if simulated serving metrics drift "
                   "from the committed baseline",
    )
    args = parser.parse_args(argv)

    current = measure(args.quick)
    for key in GATED_KEYS:
        scen = current[key]
        sim = scen["simulated"]
        print(f"scenario {scen['scenario']}: {scen['runs_per_sec']:.2f} "
              f"runs/sec ({scen['runs']} runs in {scen['seconds']:.2f}s)")
        fused = scen.get("fused_loop")
        if fused:
            print(f"fused loop: {fused['speedup']:.2f}x over the stepped "
                  f"reference ({fused['stepped_runs_per_sec']:.2f} "
                  "runs/sec with macro_step off)")
        if "tokens_per_second" in sim:
            print(f"simulated: {sim['tokens_per_second']:,.0f} tok/s, "
                  f"{sim['preemptions']} preemptions, "
                  f"slo_joint {sim['slo_joint']}")
        if "migrations" in sim:
            print(f"faults: {sim['migrations']} migrations, "
                  f"availability {sim['availability']:.4f}, "
                  f"MTTR {sim['mean_time_to_recover'] * 1e3:.1f} ms, "
                  f"{sim['unfinished']} unfinished")
        if "correlated_outage_seconds" in sim:
            per_domain = ", ".join(
                f"{name} {avail:.4f}"
                for name, avail in sim["domain_availability"].items())
            print(f"domains: correlated outage "
                  f"{sim['correlated_outage_seconds'] * 1e3:.1f} ms, "
                  f"availability {per_domain}")
        if "num_candidates" in sim:
            best = sim["best"] or {}
            chosen = (f"{best.get('count')}x {best.get('backend')} on "
                      f"{best.get('gpu')}" if best else "none")
            print(f"planner: {sim['num_candidates']} candidates, "
                  f"{sim['num_pruned']} pruned, frontier "
                  f"{sim['frontier_size']}, best {chosen}")
    tel = current["telemetry"]
    print(f"telemetry: recording {tel['events_per_run']} events costs "
          f"{tel['recording_overhead_frac'] * 100:.0f}% "
          f"({tel['recording_runs_per_sec']:.2f} vs "
          f"{tel['untraced_runs_per_sec']:.2f} runs/sec untraced)")

    baseline = load_baseline(BENCH_FILE)

    status = 0
    if baseline is not None:
        scale, suffix = calibration_scale(current, baseline)
        for key in GATED_KEYS:
            base_scen = baseline.get(key)
            if base_scen is None:
                # a baseline predating this record key: nothing to
                # gate yet — an --update run will start recording it
                print(f"{key}: no committed baseline, skipping")
                continue
            scen = current[key]
            ref = base_scen["runs_per_sec"] * scale
            src = f"BENCH_serving.json {key}{suffix}"
            ratio = scen["runs_per_sec"] / ref
            print(f"wall time vs baseline ({src}): {ratio:.2f}x")
            if args.check and ratio < 1.0 - args.tolerance:
                print(f"FAIL: {key} fused-loop runs/sec dropped "
                      f"{(1.0 - ratio) * 100:.0f}% (> "
                      f"{args.tolerance * 100:.0f}% allowed)",
                      file=sys.stderr)
                status = 1
            problems = _drifted(scen["simulated"], base_scen["simulated"])
            if problems:
                print(
                    f"simulated-metric drift vs baseline ({key}):",
                    file=sys.stderr,
                )
                for p in problems:
                    print(f"  {p}", file=sys.stderr)
                if args.check:
                    print("FAIL: cluster serving behaviour drifted; if "
                          "intentional, rerun with --update",
                          file=sys.stderr)
                    status = 1
    elif args.check:
        print("FAIL: no baseline to check against "
              "(commit BENCH_serving.json)", file=sys.stderr)
        status = 1

    emit_outputs(args, current, baseline, BENCH_FILE, status)
    return status


if __name__ == "__main__":
    sys.exit(main())
