"""Convert a scenario's fault schedule into a replayable JSONL trace.

Loads a scenario spec, resolves its ``faults:`` section exactly the way
a run would — explicit events merged with the seeded sampled chaos —
and writes the fully-expanded schedule as a failure-trace file (the
JSONL schema documented in ``repro.serving.faults``).  Pointing the
scenario's ``faults.trace`` key at the output then replays the same
faults bit-for-bit, which is how the replay==sampled equivalence is
pinned: sampling happens once, here, and the run consumes only recorded
events.

Usage::

    PYTHONPATH=src python tools/gen_fault_trace.py \
        scenarios/chaos_domains_tiny.json /tmp/chaos_domains.faults.jsonl
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.api import dump_fault_trace, load_scenario


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="write a scenario's resolved fault schedule as a "
        "replayable JSONL failure trace")
    parser.add_argument("scenario", help="scenario spec (.json/.toml)")
    parser.add_argument("out", help="output trace path (JSONL)")
    args = parser.parse_args(argv)

    scenario = load_scenario(args.scenario)
    faults = scenario.config.faults
    if faults is None:
        parser.error(f"{args.scenario} declares no faults: section")
    dump_fault_trace(faults, pathlib.Path(args.out))
    kinds = (
        f"{len(faults.domains)} domains, "
        f"{len(faults.crashes)} crashes, "
        f"{len(faults.domain_crashes)} domain crashes, "
        f"{len(faults.stragglers)} stragglers, "
        f"{len(faults.partitions)} partitions, "
        f"{len(faults.degrades)} degrades"
    )
    print(f"wrote {args.out}: {kinds}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
