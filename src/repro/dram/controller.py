"""Request-level DRAM controller model.

Drives the per-bank state machines of :mod:`repro.dram.bank` while enforcing
the cross-bank constraints of Table II: column-to-column spacing (tCCD_S/L),
activate-to-activate spacing (tRRD_S/L), the four-activate window (tFAW) and
data-bus occupancy (tBL).  It serves an in-order stream of read requests —
which is exactly the access pattern of an NDP GEMV unit streaming weight
rows — and reports the cycle at which the last burst completes.

Two bus configurations are supported:

* ``internal_paths=False`` — the conventional DIMM view: every burst crosses
  the single 64-bit channel bus (one path), as seen by the host CPU.
* ``internal_paths=True`` — the NDP center-buffer view: each rank x
  bank-group pair owns an independent lane into the buffer chip, so bursts
  on different lanes do not contend (paper §IV-A1, center-buffer design).

The analytic estimate in :mod:`repro.dram.bandwidth` is validated against
this controller in the test suite.
"""

from __future__ import annotations

import dataclasses
from collections import deque

from .bank import Bank
from .timing import DDR4Timing, DIMMGeometry


@dataclasses.dataclass(frozen=True)
class ReadRequest:
    """A burst-granular read: ``n_bursts`` consecutive bursts of one row."""

    rank: int
    bank_group: int
    bank: int
    row: int
    n_bursts: int = 1

    def __post_init__(self) -> None:
        if min(self.rank, self.bank_group, self.bank, self.row) < 0:
            raise ValueError("addresses must be non-negative")
        if self.n_bursts < 1:
            raise ValueError("n_bursts must be >= 1")


class DRAMController:
    """In-order single-DIMM controller for streaming reads."""

    def __init__(
        self,
        geometry: DIMMGeometry,
        timing: DDR4Timing,
        *,
        internal_paths: bool = False,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.internal_paths = internal_paths
        self._banks: dict[tuple[int, int, int], Bank] = {}
        # per-path bus state: earliest cycle the next burst may start
        n_paths = geometry.internal_paths if internal_paths else 1
        self._bus_free = [0] * n_paths
        # per-(path) last column command cycle and bank group, for tCCD
        self._last_col = [(-(10**9), -1)] * n_paths
        # per-rank activate history for tRRD / tFAW
        self._acts: dict[int, deque[int]] = {}
        self._last_act: dict[int, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    def _bank(self, req: ReadRequest) -> Bank:
        self._validate(req)
        key = (req.rank, req.bank_group, req.bank)
        if key not in self._banks:
            self._banks[key] = Bank(self.timing)
        return self._banks[key]

    def _validate(self, req: ReadRequest) -> None:
        g = self.geometry
        if req.rank >= g.ranks:
            raise ValueError(f"rank {req.rank} out of range (<{g.ranks})")
        if req.bank_group >= g.bank_groups_per_rank:
            raise ValueError(f"bank group {req.bank_group} out of range")
        if req.bank >= g.banks_per_group:
            raise ValueError(f"bank {req.bank} out of range")

    def _path(self, req: ReadRequest) -> int:
        if not self.internal_paths:
            return 0
        return req.rank * self.geometry.bank_groups_per_rank + req.bank_group

    # ------------------------------------------------------------------
    def _activate_constraints(self, rank: int, bank_group: int,
                              earliest: int) -> int:
        """Apply tRRD and tFAW to a proposed ACT issue cycle."""
        t = self.timing
        last = self._last_act.get(rank)
        if last is not None:
            last_cycle, last_bg = last
            gap = t.tRRD_L if last_bg == bank_group else t.tRRD_S
            earliest = max(earliest, last_cycle + gap)
        history = self._acts.setdefault(rank, deque(maxlen=4))
        if len(history) == 4:
            earliest = max(earliest, history[0] + t.tFAW)
        return earliest

    def _note_activate(self, rank: int, bank_group: int, cycle: int) -> None:
        self._acts.setdefault(rank, deque(maxlen=4)).append(cycle)
        self._last_act[rank] = (cycle, bank_group)

    # ------------------------------------------------------------------
    def serve(self, requests: list[ReadRequest]) -> int:
        """Serve ``requests`` in order; returns total cycles until the last
        data burst has fully crossed its bus."""
        t = self.timing
        finish = 0
        last_burst: dict[tuple[int, int, int], int] = {}
        for req in requests:
            bank = self._bank(req)
            path = self._path(req)
            key = (req.rank, req.bank_group, req.bank)
            # Row activation (with tRRD/tFAW) on a row miss.  With a deep
            # request queue the controller issues the ACT *ahead* of the data
            # bus becoming free, so the activation is constrained only by the
            # bank's own history and the rank-level ACT windows — this is
            # what lets bank interleaving hide tRC entirely while streaming.
            if bank.open_row != req.row:
                earliest = bank.next_act
                if bank.is_open:
                    # precharge may not precede the bank's in-flight reads
                    pre = max(last_burst.get(key, 0) + t.tCCD_L,
                              bank.last_act + t.tRC)
                    earliest = max(earliest, pre + t.tRP)
                earliest = self._activate_constraints(
                    req.rank, req.bank_group, earliest
                )
                bank.open_row = None
                bank.next_act = earliest
                act_cycle = bank.activate(req.row, earliest)
                self._note_activate(req.rank, req.bank_group, act_cycle)
            for _ in range(req.n_bursts):
                issue = max(bank.next_read, self._bus_free[path])
                last_cycle, last_bg = self._last_col[path]
                gap = t.tCCD_L if last_bg == req.bank_group else t.tCCD_S
                issue = max(issue, last_cycle + gap)
                self._last_col[path] = (issue, req.bank_group)
                last_burst[key] = issue
                data_end = issue + t.tCL + t.tBL
                self._bus_free[path] = issue + t.tBL
                finish = max(finish, data_end)
        return finish

    # ------------------------------------------------------------------
    def _flat_to_address(self, flat: int) -> tuple[int, int, int]:
        """Bank-group-interleaved flat-bank mapping.

        Consecutive flat indices alternate bank groups (the standard DDR4
        address mapping), so a shared-bus stream pays tCCD_S rather than
        tCCD_L between back-to-back bursts.
        """
        g = self.geometry
        rank = flat // g.banks_per_rank
        within = flat % g.banks_per_rank
        bank_group = within % g.bank_groups_per_rank
        bank_idx = within // g.bank_groups_per_rank
        return rank, bank_group, bank_idx

    def stream_rows(self, total_bytes: int) -> int:
        """Cycles to stream ``total_bytes`` of row-major data.

        Bursts are interleaved round-robin across all banks at cache-line
        granularity (alternating bank groups), which is both the DDR4
        address-mapping convention and the NDP weight-read pattern.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        if total_bytes == 0:
            return 0
        g = self.geometry
        n_bursts = -(-total_bytes // g.burst_bytes)
        requests = []
        burst_counter = [0] * g.total_banks
        for i in range(n_bursts):
            flat = i % g.total_banks
            rank, bank_group, bank_idx = self._flat_to_address(flat)
            row = burst_counter[flat] // g.bursts_per_row
            requests.append(ReadRequest(
                rank=rank, bank_group=bank_group, bank=bank_idx,
                row=row, n_bursts=1,
            ))
            burst_counter[flat] += 1
        return self.serve(requests)
