"""DDR4 timing and geometry parameters (paper Table II).

The paper evaluates NDP-DIMM efficiency with a modified Ramulator 2.0; this
package substitutes a compact cycle-approximate model built from the same
timing parameters.  Values are in memory-controller clock cycles of a
DDR4-3200 part (tCK = 0.625 ns), exactly as listed in Table II.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DDR4Timing:
    """DDR4 timing constraints, in controller clock cycles."""

    name: str = "DDR4-3200"
    data_rate: float = 3200e6  # transfers/s on the data bus
    tRC: int = 76    # row cycle: ACT -> ACT, same bank
    tRCD: int = 24   # ACT -> READ
    tCL: int = 24    # READ -> first data
    tRP: int = 24    # PRE -> ACT
    tBL: int = 4     # burst length on the bus (BL8 at DDR)
    tCCD_S: int = 4  # READ -> READ, different bank group
    tCCD_L: int = 8  # READ -> READ, same bank group
    tRRD_S: int = 4  # ACT -> ACT, different bank group
    tRRD_L: int = 6  # ACT -> ACT, same bank group
    tFAW: int = 26   # four-activate window

    def __post_init__(self) -> None:
        fields = dataclasses.asdict(self)
        for key, value in fields.items():
            if key in ("name",):
                continue
            if value <= 0:
                raise ValueError(f"{self.name}: {key} must be positive")
        if self.tCCD_L < self.tCCD_S:
            raise ValueError(f"{self.name}: tCCD_L must be >= tCCD_S")
        if self.tRRD_L < self.tRRD_S:
            raise ValueError(f"{self.name}: tRRD_L must be >= tRRD_S")
        if self.tRC < self.tRCD:
            raise ValueError(f"{self.name}: tRC must cover tRCD")

    @property
    def clock_hz(self) -> float:
        """Controller clock (half the data rate for DDR)."""
        return self.data_rate / 2

    @property
    def tCK(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        return cycles * self.tCK


@dataclasses.dataclass(frozen=True)
class DIMMGeometry:
    """Physical organisation of one DIMM (Table II: 32 GB, 4 ranks,
    2 bank groups/rank, 4 banks/bank-group)."""

    capacity_bytes: int = 32 * 2**30
    ranks: int = 4
    bank_groups_per_rank: int = 2
    banks_per_group: int = 4
    row_bytes: int = 8192  # 8 KB row buffer per bank
    bus_bytes: int = 8     # 64-bit data bus
    burst_length: int = 8  # BL8

    def __post_init__(self) -> None:
        for key in (
            "capacity_bytes",
            "ranks",
            "bank_groups_per_rank",
            "banks_per_group",
            "row_bytes",
            "bus_bytes",
            "burst_length",
        ):
            if getattr(self, key) <= 0:
                raise ValueError(f"{key} must be positive")

    @property
    def banks_per_rank(self) -> int:
        return self.bank_groups_per_rank * self.banks_per_group

    @property
    def total_banks(self) -> int:
        return self.banks_per_rank * self.ranks

    @property
    def burst_bytes(self) -> int:
        """Bytes delivered per READ burst (BL8 x 8 bytes = 64 B)."""
        return self.bus_bytes * self.burst_length

    @property
    def bursts_per_row(self) -> int:
        return self.row_bytes // self.burst_bytes

    def peak_bandwidth(self, timing: DDR4Timing) -> float:
        """Peak data-bus bandwidth of one rank interface (bytes/s)."""
        return timing.data_rate * self.bus_bytes

    @property
    def internal_paths(self) -> int:
        """Independent datapaths the center buffer can drain in parallel.

        Center-buffer NDP designs (TensorDIMM/RecNMP-style, cited by the
        paper §IV-A1) route each rank x bank-group through its own lane on
        the buffer chip, so internal parallelism is ranks x bank-groups.
        """
        return self.ranks * self.bank_groups_per_rank
