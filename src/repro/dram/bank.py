"""Per-bank DRAM state machine.

A minimal but faithful model of one DRAM bank: rows must be activated before
columns can be read, re-activating a different row requires a precharge, and
the ACT->ACT distance is bounded below by tRC.  The controller in
:mod:`repro.dram.controller` drives many of these and enforces the
cross-bank constraints (tCCD, tRRD, tFAW, data-bus occupancy).
"""

from __future__ import annotations

import dataclasses

from .timing import DDR4Timing


@dataclasses.dataclass
class Bank:
    """State of a single DRAM bank, tracked in controller clock cycles."""

    timing: DDR4Timing
    open_row: int | None = None
    #: earliest cycle a new ACT may issue (enforces tRC / tRP)
    next_act: int = 0
    #: earliest cycle a READ to the open row may issue (enforces tRCD)
    next_read: int = 0
    #: cycle of the last ACT, used for tRC bookkeeping
    last_act: int = -(10**9)

    def activate(self, row: int, now: int) -> int:
        """Open ``row``; returns the cycle the ACT actually issues.

        If another row is open, a precharge is folded in (tRP) before the
        activate; tRC from the previous ACT is always honoured.
        """
        if row < 0:
            raise ValueError("row must be non-negative")
        earliest = max(now, self.next_act)
        if self.open_row is not None and self.open_row != row:
            earliest = max(earliest, self.last_act + self.timing.tRC)
            earliest += self.timing.tRP
        act_cycle = earliest
        self.open_row = row
        self.last_act = act_cycle
        self.next_read = act_cycle + self.timing.tRCD
        self.next_act = act_cycle + self.timing.tRC
        return act_cycle

    def read(self, row: int, now: int) -> int:
        """Issue a READ to ``row``; returns the issue cycle.

        Activates the row first if it is not open (row-buffer miss).
        """
        if self.open_row != row:
            self.activate(row, now)
        return max(now, self.next_read)

    @property
    def is_open(self) -> bool:
        return self.open_row is not None
