"""Cycle-approximate DDR4 model (the Ramulator-2.0 substitute)."""

from .timing import DDR4Timing, DIMMGeometry
from .bank import Bank
from .controller import DRAMController, ReadRequest
from .bandwidth import (
    channel_stream_bandwidth,
    internal_stream_bandwidth,
    lane_bandwidth,
    scattered_access_efficiency,
)

__all__ = [
    "DDR4Timing",
    "DIMMGeometry",
    "Bank",
    "DRAMController",
    "ReadRequest",
    "channel_stream_bandwidth",
    "internal_stream_bandwidth",
    "lane_bandwidth",
    "scattered_access_efficiency",
]
