"""Sustained-bandwidth estimates derived from the Table II timing model.

These closed-form estimates are what the higher-level system models consume;
the request-level controller in :mod:`repro.dram.controller` exists to
validate them (the test suite checks agreement within a few percent).

Key effect: within one bank group, back-to-back READs are spaced by tCCD_L
(8 cycles) while a burst occupies only tBL (4 cycles), so a single bank-group
lane sustains at most tBL/tCCD_L = 50 % of its peak.  The conventional
channel bus hides this by interleaving bank groups on one shared bus; the
NDP center buffer instead drains all rank x bank-group lanes in parallel,
each at that 50 % duty cycle — which is where the DIMM-internal bandwidth
advantage over the channel interface comes from.
"""

from __future__ import annotations

from .timing import DDR4Timing, DIMMGeometry


def _row_switch_overhead(geometry: DIMMGeometry, timing: DDR4Timing) -> float:
    """Fractional throughput loss from row activations while streaming.

    Streaming interleaves banks, so a row activation in one bank overlaps
    draining another; the residual cost is only the fraction of tRC not
    covered by the drain time of the other banks in the same lane.
    """
    drain = geometry.bursts_per_row * timing.tCCD_L
    covered = drain * (geometry.banks_per_group - 1)
    residual = max(0, timing.tRC - covered)
    return residual / (drain + residual)


def lane_bandwidth(geometry: DIMMGeometry, timing: DDR4Timing) -> float:
    """Sustained bytes/s of one rank x bank-group lane while streaming."""
    peak = geometry.peak_bandwidth(timing)
    duty = timing.tBL / timing.tCCD_L
    return peak * duty * (1.0 - _row_switch_overhead(geometry, timing))


def internal_stream_bandwidth(
    geometry: DIMMGeometry, timing: DDR4Timing
) -> float:
    """Sustained DIMM-internal bandwidth seen by the NDP center buffer.

    All rank x bank-group lanes stream in parallel.  For the Table II
    configuration this is 4 ranks x 2 bank groups x 12.8 GB/s ~ 102 GB/s per
    DIMM, i.e. ~0.8 TB/s across 8 DIMMs — the "~1 TB/s-class" internal
    bandwidth the paper's Figure 1 sketches.
    """
    return lane_bandwidth(geometry, timing) * geometry.internal_paths


def channel_stream_bandwidth(
    geometry: DIMMGeometry, timing: DDR4Timing
) -> float:
    """Sustained bandwidth of the conventional channel interface.

    The shared external bus can interleave bank groups, so consecutive
    bursts are spaced by tCCD_S = tBL and the bus runs at full duty minus
    the row-switch residue: ~25 GB/s for DDR4-3200.
    """
    peak = geometry.peak_bandwidth(timing)
    duty = timing.tBL / max(timing.tBL, timing.tCCD_S)
    return peak * duty * (1.0 - _row_switch_overhead(geometry, timing))


def scattered_access_efficiency(
    geometry: DIMMGeometry, timing: DDR4Timing, run_bytes: float
) -> float:
    """Throughput retained when contiguous runs are only ``run_bytes`` long.

    Neuron weights are multi-KB contiguous runs (a 70B-class MLP neuron is
    ~32-48 KB), so scattered *neuron* access still streams well; truly short
    runs pay a full row activation (tRCD + residual tRC) per run.
    """
    if run_bytes <= 0:
        raise ValueError("run_bytes must be positive")
    bursts_per_run = max(1.0, run_bytes / geometry.burst_bytes)
    drain = bursts_per_run * timing.tCCD_L
    # one uncovered activation per run (the first row of the run)
    overhead = timing.tRCD + timing.tRP
    return drain / (drain + overhead)
