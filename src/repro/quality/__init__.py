"""Model-quality impact of sparse, prediction-driven execution."""

from .degradation import (
    QualityReport,
    RESIDUAL_DAMPING,
    activation_coverage,
    oracle_report,
)

__all__ = [
    "QualityReport",
    "RESIDUAL_DAMPING",
    "activation_coverage",
    "oracle_report",
]
