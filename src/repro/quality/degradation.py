"""Model-quality impact of prediction-driven sparse execution.

The paper asserts (§II-B, §V-A3) that exploiting activation sparsity — and
skipping the neurons the predictor misses — costs **under 1 % accuracy**.
This module quantifies that claim for our simulated runs: a skipped neuron
only matters in proportion to the activation mass it would have produced,
and false *positives* are harmless (computing a zero costs time, not
accuracy).

We report two complementary metrics:

* **activation coverage** — the fraction of true activation mass the
  executed neuron set preserves (mass-weighted recall).  PowerInfer/Deja Vu
  measure that >99 % coverage keeps downstream task accuracy within 1 %.
* **degradation proxy** — ``1 - coverage`` compounded across layers with a
  damping factor: transformer residual streams attenuate a missing FFN
  contribution rather than letting it cascade linearly, so per-layer error
  contributes sub-linearly (empirically ~0.5x per layer hop).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.predictor import ActivationPredictor
from ..sparsity import ActivationTrace

#: residual-stream attenuation of a missing neuron's contribution
RESIDUAL_DAMPING = 0.5


@dataclasses.dataclass
class QualityReport:
    """Coverage and degradation estimates for one replay."""

    coverage: float
    per_layer_miss: np.ndarray
    degradation_proxy: float

    def within_paper_claim(self, threshold: float = 0.01) -> bool:
        """True when the estimated degradation is under the paper's 1 %."""
        return self.degradation_proxy < threshold


def activation_coverage(
    trace: ActivationTrace, predictor: ActivationPredictor
) -> QualityReport:
    """Replay ``trace`` through ``predictor`` and measure quality impact.

    Misses are weighted by ``bytes x activation frequency``: a neuron's
    typical output magnitude scales with how often (and how strongly) it
    fires, so dropping a chronically-hot channel costs far more than
    dropping a drifting tail neuron on the one token it fires — which is
    where prediction misses concentrate (the predictor is nearly perfect
    on the stable head).
    """
    layout = trace.layout
    byte_w = layout.group_bytes.astype(np.float64)
    strength = [byte_w * trace.frequencies(l) for l in range(trace.num_layers)]
    total_mass = 0.0
    missed_mass = 0.0
    per_layer_miss = np.zeros(trace.num_layers)
    per_layer_total = np.zeros(trace.num_layers)
    for t in trace.decode_tokens():
        prev = None
        for l in range(trace.num_layers):
            actual = trace.active(l, t)
            predicted = predictor.predict(l, prev)
            predictor.observe(l, actual, predicted)
            missed = actual & ~predicted
            weights = strength[l]
            layer_mass = float(weights[actual].sum())
            layer_missed = float(weights[missed].sum())
            total_mass += layer_mass
            missed_mass += layer_missed
            per_layer_miss[l] += layer_missed
            per_layer_total[l] += layer_mass
            prev = actual
    if total_mass == 0:
        raise ValueError("trace contains no activations to cover")
    coverage = 1.0 - missed_mass / total_mass
    with np.errstate(invalid="ignore", divide="ignore"):
        layer_rates = np.where(
            per_layer_total > 0, per_layer_miss / per_layer_total, 0.0
        )
    # residual damping: each layer's miss contributes with geometric
    # attenuation through the remaining depth
    depth = trace.num_layers
    damping = RESIDUAL_DAMPING ** np.arange(depth)[::-1].clip(0, 8)
    degradation = float((layer_rates * damping).sum() / damping.sum())
    return QualityReport(
        coverage=coverage,
        per_layer_miss=layer_rates,
        degradation_proxy=degradation,
    )


def oracle_report(trace: ActivationTrace) -> QualityReport:
    """Coverage of a perfect predictor (upper bound: zero degradation)."""
    return QualityReport(
        coverage=1.0,
        per_layer_miss=np.zeros(trace.num_layers),
        degradation_proxy=0.0,
    )
