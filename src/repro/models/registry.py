"""Registry of the models evaluated in the paper (§V-A3).

OPT models use their native ReLU activations; the LLaMA2 and Falcon entries
correspond to the ReLU-fied checkpoints the paper uses (huggingface.co/
SparseLLM), which substitute SiLU/GELU with ReLU at <1 % accuracy loss, plus
the extra ReLU inserted before QKV generation (Fig. 3b).  Activation density
defaults reflect the 70-90 % sparsity range reported in §II-B: native-ReLU
OPT models are given slightly denser activations than the aggressively
ReLU-fied LLaMA/Falcon variants, mirroring ProSparse/ReLU-strikes-back
measurements.
"""

from __future__ import annotations

from .spec import ModelSpec

_REGISTRY: dict[str, ModelSpec] = {}


def register_model(spec: ModelSpec) -> ModelSpec:
    """Add ``spec`` to the registry; rejects duplicate names."""
    key = spec.name.lower()
    if key in _REGISTRY:
        raise ValueError(f"model {spec.name!r} already registered")
    _REGISTRY[key] = spec
    return spec


def get_model(name: str) -> ModelSpec:
    """Look up a model by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(s.name for s in _REGISTRY.values()))
        raise KeyError(
            f"unknown model {name!r}; known models: {known}") from None


def list_models() -> list[str]:
    return sorted(spec.name for spec in _REGISTRY.values())


OPT_13B = register_model(ModelSpec(
    name="OPT-13B", num_layers=40, hidden_size=5120, ffn_size=20480,
    num_heads=40, num_kv_heads=40, vocab_size=50272,
    activation_density=0.16,
))

OPT_30B = register_model(ModelSpec(
    name="OPT-30B", num_layers=48, hidden_size=7168, ffn_size=28672,
    num_heads=56, num_kv_heads=56, vocab_size=50272,
    activation_density=0.15,
))

OPT_66B = register_model(ModelSpec(
    name="OPT-66B", num_layers=64, hidden_size=9216, ffn_size=36864,
    num_heads=72, num_kv_heads=72, vocab_size=50272,
    activation_density=0.15,
))

LLAMA2_7B = register_model(ModelSpec(
    name="LLaMA2-7B", num_layers=32, hidden_size=4096, ffn_size=11008,
    num_heads=32, num_kv_heads=32, vocab_size=32000, gated_mlp=True,
    activation_density=0.12,
))

# The paper's motivation experiments use "LLaMA-13B"; architecturally it
# matches LLaMA2-13B, so both names resolve to the same geometry.
LLAMA2_13B = register_model(ModelSpec(
    name="LLaMA2-13B", num_layers=40, hidden_size=5120, ffn_size=13824,
    num_heads=40, num_kv_heads=40, vocab_size=32000, gated_mlp=True,
    activation_density=0.12,
))

LLAMA_13B = register_model(ModelSpec(
    name="LLaMA-13B", num_layers=40, hidden_size=5120, ffn_size=13824,
    num_heads=40, num_kv_heads=40, vocab_size=32000, gated_mlp=True,
    activation_density=0.12,
))

LLAMA2_70B = register_model(ModelSpec(
    name="LLaMA2-70B", num_layers=80, hidden_size=8192, ffn_size=28672,
    num_heads=64, num_kv_heads=8, vocab_size=32000, gated_mlp=True,
    activation_density=0.12,
))

FALCON_40B = register_model(ModelSpec(
    name="Falcon-40B", num_layers=60, hidden_size=8192, ffn_size=32768,
    num_heads=128, num_kv_heads=8, vocab_size=65024,
    activation_density=0.13,
))

# Small models used by tests, examples and the predictor-cost claim (§IV-C:
# the LLaMA-7B neuron state table costs 232 KB).
LLAMA_7B = register_model(ModelSpec(
    name="LLaMA-7B", num_layers=32, hidden_size=4096, ffn_size=10752,
    num_heads=32, num_kv_heads=32, vocab_size=32000, gated_mlp=True,
    activation_density=0.12,
))

TINY_TEST = register_model(ModelSpec(
    name="tiny-test", num_layers=4, hidden_size=256, ffn_size=1024,
    num_heads=4, num_kv_heads=4, vocab_size=1000,
    activation_density=0.25,
))
