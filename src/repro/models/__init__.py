"""Model specifications for the LLMs evaluated in the paper."""

from .spec import BYTES_PER_PARAM, ModelSpec, neuron_groups
from .registry import (
    FALCON_40B,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA_7B,
    LLAMA_13B,
    OPT_13B,
    OPT_30B,
    OPT_66B,
    TINY_TEST,
    get_model,
    list_models,
    register_model,
)

__all__ = [
    "BYTES_PER_PARAM",
    "ModelSpec",
    "neuron_groups",
    "get_model",
    "list_models",
    "register_model",
    "OPT_13B",
    "OPT_30B",
    "OPT_66B",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "LLAMA_7B",
    "LLAMA_13B",
    "FALCON_40B",
    "TINY_TEST",
]
