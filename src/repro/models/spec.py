"""Transformer model specifications.

Hermes reasons about LLM weights at the granularity of *neurons*: a neuron is
a specific row/column of a weight matrix (paper §I, footnote 1).  Two weight
regions per transformer layer are amenable to activation sparsity:

* the **attention block** (QKV generation) — one neuron per *input channel*
  of the fused Q/K/V projection, created by the ReLU the paper inserts before
  QKV generation (Fig. 3b).  A layer has ``hidden_size`` attention neurons.
* the **MLP block** — one neuron per *intermediate channel*: a column of FC1
  (and of the gate projection for gated MLPs) plus the matching row of FC2.
  A layer has ``ffn_size`` MLP neurons.

The attention-output projection cannot exploit activation sparsity (paper
§IV-A2) and is modelled as a dense GPU-side matrix, as are the embedding and
LM head.

All sizes are bytes of FP16 weights (2 bytes per parameter), matching the
paper's FP16 evaluation.
"""

from __future__ import annotations

import dataclasses
import math

BYTES_PER_PARAM = 2  # FP16


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """Static description of a decoder-only transformer.

    Parameters mirror the HuggingFace configs of the evaluated models; the
    ``gated_mlp`` flag distinguishes LLaMA-style SwiGLU MLPs (three matrices
    per MLP neuron) from OPT/Falcon-style two-matrix MLPs.
    """

    name: str
    num_layers: int
    hidden_size: int
    ffn_size: int
    num_heads: int
    num_kv_heads: int
    vocab_size: int
    gated_mlp: bool = False
    #: mean fraction of neurons active per token after ReLU-fication
    #: (papers report 70-90 % sparsity, i.e. 0.1-0.3 density; §II-B).
    activation_density: float = 0.25

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_size <= 0 or self.ffn_size <= 0:
            raise ValueError(f"{self.name}: sizes must be positive")
        if self.num_heads <= 0 or self.num_kv_heads <= 0:
            raise ValueError(f"{self.name}: head counts must be positive")
        if self.hidden_size % self.num_heads:
            raise ValueError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible "
                f"by num_heads {self.num_heads}"
            )
        if self.num_heads % self.num_kv_heads:
            raise ValueError(
                f"{self.name}: num_heads {self.num_heads} not divisible by "
                f"num_kv_heads {self.num_kv_heads}"
            )
        if not 0.0 < self.activation_density <= 1.0:
            raise ValueError(
                f"{self.name}: activation_density must lie in (0, 1]"
            )

    # ------------------------------------------------------------------
    # derived dimensions
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Total K (= V) projection width, accounting for GQA/MQA."""
        return self.head_dim * self.num_kv_heads

    @property
    def attn_neurons_per_layer(self) -> int:
        """Sparsifiable neurons in the QKV block (one per input channel)."""
        return self.hidden_size

    @property
    def mlp_neurons_per_layer(self) -> int:
        """Sparsifiable neurons in the MLP block (one per FFN channel)."""
        return self.ffn_size

    @property
    def neurons_per_layer(self) -> int:
        return self.attn_neurons_per_layer + self.mlp_neurons_per_layer

    @property
    def total_neurons(self) -> int:
        return self.neurons_per_layer * self.num_layers

    # ------------------------------------------------------------------
    # per-neuron weight footprints (bytes)
    # ------------------------------------------------------------------
    @property
    def attn_neuron_bytes(self) -> int:
        """Weight bytes owned by one attention neuron.

        One row each of W_q (hidden wide) and of W_k/W_v (kv_dim wide).
        """
        return (self.hidden_size + 2 * self.kv_dim) * BYTES_PER_PARAM

    @property
    def mlp_neuron_bytes(self) -> int:
        """Weight bytes owned by one MLP neuron.

        A column of FC1/up-projection plus a row of FC2/down-projection,
        plus a gate column for SwiGLU models.
        """
        matrices = 3 if self.gated_mlp else 2
        return matrices * self.hidden_size * BYTES_PER_PARAM

    # ------------------------------------------------------------------
    # aggregate weight footprints (bytes)
    # ------------------------------------------------------------------
    @property
    def attn_sparse_bytes_per_layer(self) -> int:
        return self.attn_neurons_per_layer * self.attn_neuron_bytes

    @property
    def mlp_sparse_bytes_per_layer(self) -> int:
        return self.mlp_neurons_per_layer * self.mlp_neuron_bytes

    @property
    def sparse_bytes_per_layer(self) -> int:
        """Weights subject to the hot/cold partition in one layer."""
        return (
            self.attn_sparse_bytes_per_layer + self.mlp_sparse_bytes_per_layer
        )

    @property
    def dense_bytes_per_layer(self) -> int:
        """Attention-output projection: dense, always computed on the GPU."""
        return self.hidden_size * self.hidden_size * BYTES_PER_PARAM

    @property
    def layer_bytes(self) -> int:
        return self.sparse_bytes_per_layer + self.dense_bytes_per_layer

    @property
    def embedding_bytes(self) -> int:
        """Token embedding + LM head (untied), kept in GPU memory."""
        return 2 * self.vocab_size * self.hidden_size * BYTES_PER_PARAM

    @property
    def total_weight_bytes(self) -> int:
        return self.layer_bytes * self.num_layers + self.embedding_bytes

    @property
    def total_params(self) -> int:
        return self.total_weight_bytes // BYTES_PER_PARAM

    # ------------------------------------------------------------------
    # KV cache
    # ------------------------------------------------------------------
    def kv_bytes_per_token_per_layer(self, batch: int = 1) -> int:
        """KV-cache bytes appended per generated token in one layer."""
        return 2 * self.kv_dim * BYTES_PER_PARAM * batch

    def kv_bytes_total(self, context_len: int, batch: int = 1) -> int:
        """KV-cache footprint for ``context_len`` tokens across all layers."""
        return (
            self.kv_bytes_per_token_per_layer(batch)
            * context_len
            * self.num_layers
        )

    # ------------------------------------------------------------------
    # FLOP counts (token generation, per token)
    # ------------------------------------------------------------------
    def dense_flops_per_token(self, batch: int = 1) -> int:
        """FLOPs of the dense projection layers for one decode step."""
        return (2 * self.dense_bytes_per_layer // BYTES_PER_PARAM
                * batch * self.num_layers)

    def describe(self) -> str:
        """One-line human-readable summary used by examples and reports."""
        return (
            f"{self.name}: {self.num_layers}L x {self.hidden_size}d "
            f"(ffn {self.ffn_size}, {self.num_heads}h/{self.num_kv_heads}kv), "
            f"{self.total_params / 1e9:.1f}B params, "
            f"{self.total_weight_bytes / 2**30:.1f} GiB FP16"
        )


def neuron_groups(spec: ModelSpec, granularity: int) -> tuple[int, int]:
    """Number of (attention, MLP) neuron *groups* per layer.

    The simulator tracks neurons in bundles of ``granularity`` contiguous
    neurons (PowerInfer-style clusters) so that billion-parameter models stay
    tractable; ``granularity=1`` tracks individual neurons.
    """
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    attn = math.ceil(spec.attn_neurons_per_layer / granularity)
    mlp = math.ceil(spec.mlp_neurons_per_layer / granularity)
    return attn, mlp
