"""NDP command stream: the memory-command programming interface (§IV-A1).

Hermes drives the NDP-DIMMs through extra memory commands (MAC, softmax,
merge, ...) issued by the host scheduler through the instruction queue.
This module models that interface explicitly: operators are lowered to
command streams, and :class:`NDPExecutor` retires the stream against a
two-stage pipeline (DRAM row reads double-buffered with bit-serial MACs).

The executor is the micro-architectural counterpart of the closed-form
:meth:`repro.ndp.core.NDPCore.gemv_time`; the test suite checks the two
agree, which validates the analytic model the system simulations use in
their hot loops.
"""

from __future__ import annotations

import dataclasses
import typing

from .activation import ActivationUnit
from .gemv import GEMVUnit


@dataclasses.dataclass(frozen=True)
class RowRead:
    """Stream ``num_bytes`` of weights from the DRAM arrays into the
    center buffer."""

    num_bytes: int

    def __post_init__(self) -> None:
        if self.num_bytes <= 0:
            raise ValueError("num_bytes must be positive")


@dataclasses.dataclass(frozen=True)
class Mac:
    """Multiply-accumulate ``weight_bytes`` of FP16 weights against
    ``batch`` activation vectors."""

    weight_bytes: int
    batch: int = 1

    def __post_init__(self) -> None:
        if self.weight_bytes <= 0:
            raise ValueError("weight_bytes must be positive")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")


@dataclasses.dataclass(frozen=True)
class Softmax:
    """Softmax over ``n_values`` logits on the activation unit."""

    n_values: int

    def __post_init__(self) -> None:
        if self.n_values <= 0:
            raise ValueError("n_values must be positive")


@dataclasses.dataclass(frozen=True)
class Merge:
    """Merge kernel combining GPU and DIMM partial results (§IV-A2)."""

    n_values: int

    def __post_init__(self) -> None:
        if self.n_values <= 0:
            raise ValueError("n_values must be positive")


@dataclasses.dataclass(frozen=True)
class LinkSend:
    """Ship ``num_bytes`` to a neighbouring DIMM over the DIMM-link."""

    num_bytes: int

    def __post_init__(self) -> None:
        if self.num_bytes <= 0:
            raise ValueError("num_bytes must be positive")


Command = typing.Union[RowRead, Mac, Softmax, Merge, LinkSend]


def lower_gemv(
    weight_bytes: int, batch: int = 1, *, chunk_bytes: int = 8192
) -> list[Command]:
    """Lower a sparse GEMV into an interleaved RowRead/MAC stream.

    Weights stream row by row (8 KB DRAM rows by default); each read is
    paired with the MAC that consumes it, which is what lets the executor
    double-buffer the two.
    """
    if weight_bytes <= 0:
        raise ValueError("weight_bytes must be positive")
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    stream: list[Command] = []
    remaining = weight_bytes
    while remaining > 0:
        chunk = min(chunk_bytes, remaining)
        stream.append(RowRead(chunk))
        stream.append(Mac(chunk, batch))
        remaining -= chunk
    return stream


def lower_attention(
    kv_bytes: int, context_len: int, num_heads: int, batch: int = 1
) -> list[Command]:
    """Lower one decode attention step over a KV shard."""
    if kv_bytes <= 0:
        raise ValueError("kv_bytes must be positive")
    stream = lower_gemv(kv_bytes, batch)
    for _ in range(num_heads * batch):
        stream.append(Softmax(context_len))
    return stream


class NDPExecutor:
    """Retire a command stream on one NDP-DIMM.

    RowReads occupy the DRAM-stream pipe; MACs occupy the GEMV unit; the
    two stages are double-buffered, so a MAC may start once its paired
    read has finished and the unit is free.  Softmax/merge run on the
    activation unit after the data they consume; link sends overlap
    nothing (they leave the DIMM).
    """

    def __init__(
        self,
        *,
        stream_bandwidth: float,
        gemv: GEMVUnit | None = None,
        activation: ActivationUnit | None = None,
        link_bandwidth: float = 25e9,
    ) -> None:
        if stream_bandwidth <= 0 or link_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        self.stream_bandwidth = stream_bandwidth
        self.gemv = gemv or GEMVUnit()
        self.activation = activation or ActivationUnit()
        self.link_bandwidth = link_bandwidth

    def execute(self, stream: list[Command]) -> float:
        """Seconds to retire ``stream``; raises on unknown commands."""
        read_done = 0.0   # when the last issued RowRead finishes
        unit_free = 0.0   # when the GEMV unit frees up
        act_free = 0.0    # when the activation unit frees up
        finish = 0.0
        for command in stream:
            if isinstance(command, RowRead):
                read_done = (max(read_done, 0.0)
                             + command.num_bytes / self.stream_bandwidth)
                finish = max(finish, read_done)
            elif isinstance(command, Mac):
                start = max(read_done, unit_free)
                unit_free = start + self.gemv.compute_time(
                    command.weight_bytes, command.batch
                )
                finish = max(finish, unit_free)
            elif isinstance(command, Softmax):
                start = max(act_free, unit_free)
                act_free = start + self.activation.softmax_time(
                    command.n_values
                )
                finish = max(finish, act_free)
            elif isinstance(command, Merge):
                start = max(act_free, unit_free)
                act_free = start + self.activation.relu_time(command.n_values)
                finish = max(finish, act_free)
            elif isinstance(command, LinkSend):
                finish = max(finish, unit_free) \
                    + command.num_bytes / self.link_bandwidth
            else:
                raise TypeError(f"unknown NDP command {command!r}")
        return finish
