"""The NDP core: one GEMV unit + one activation unit per DIMM (Table II).

The core reads weights from the DRAM cells through the center buffer; a GEMV
is therefore bounded by the slower of the DIMM-internal stream bandwidth and
the bit-serial MAC throughput.  At batch 1 the Table II configuration is
memory-bound (102 GB/s stream vs 256 GFLOP/s); batching multiplies MACs but
not weight traffic, so the core turns compute-bound around batch 2-3 —
matching the paper's observation that Hermes-base handles batch 2 gracefully
but saturates beyond it (§V-B2).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .activation import ActivationUnit
from .gemv import GEMVUnit


@dataclasses.dataclass(frozen=True)
class NDPCore:
    """Timing model of the per-DIMM NDP core."""

    gemv: GEMVUnit = dataclasses.field(default_factory=GEMVUnit)
    activation: ActivationUnit = dataclasses.field(
        default_factory=ActivationUnit
    )
    area_mm2: float = 1.23  # Table II, TSMC 7 nm synthesis
    frequency: float = 1e9

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0 or self.frequency <= 0:
            raise ValueError("NDP core spec must be positive")

    def gemv_time(
        self, weight_bytes: float, stream_bandwidth: float, batch: int = 1
    ) -> float:
        """GEMV over ``weight_bytes``: max(stream time, MAC time).

        Weight streaming and bit-serial accumulation are pipelined, so the
        slower of the two paths determines latency.
        """
        if stream_bandwidth <= 0:
            raise ValueError("stream_bandwidth must be positive")
        if weight_bytes < 0:
            raise ValueError("weight_bytes must be non-negative")
        if weight_bytes == 0:
            return 0.0
        t_stream = weight_bytes / stream_bandwidth
        t_compute = self.gemv.compute_time(weight_bytes, batch)
        return max(t_stream, t_compute)

    def gemv_time_batch(
        self,
        weight_bytes: np.ndarray,
        stream_bandwidth: float,
        batch: int = 1,
        *,
        check: bool = True,
    ) -> np.ndarray:
        """Vectorized :meth:`gemv_time` over an array of byte counts.

        One elementwise max over the whole array replaces a Python-level
        loop of scalar calls; each element is bit-identical to what the
        scalar path returns (zero bytes yields exactly 0.0 either way).
        ``check=False`` skips the input validation scan for callers whose
        loads are non-negative by construction.
        """
        if stream_bandwidth <= 0:
            raise ValueError("stream_bandwidth must be positive")
        if check:
            weight_bytes = np.asarray(weight_bytes, dtype=np.float64)
            if (weight_bytes < 0).any():
                raise ValueError("weight_bytes must be non-negative")
        t_stream = weight_bytes / stream_bandwidth
        t_compute = self.gemv.compute_time_batch(
            weight_bytes, batch, check=check
        )
        return np.maximum(t_stream, t_compute)

    def attention_time(
        self,
        kv_bytes: float,
        stream_bandwidth: float,
        context_len: int,
        num_heads: int,
        batch: int = 1,
    ) -> float:
        """Decode attention over the KV-cache shard held by this DIMM.

        Score and value GEMVs stream the KV cache once; softmax runs on the
        activation unit and is pipelined behind the score pass, so only the
        non-overlapped tail is charged.
        """
        if kv_bytes < 0:
            raise ValueError("kv_bytes must be non-negative")
        if kv_bytes == 0:
            return 0.0
        t_stream = self.gemv_time(kv_bytes, stream_bandwidth, batch)
        t_softmax = self.activation.attention_softmax_time(
            context_len, num_heads, batch
        )
        return t_stream + 0.1 * t_softmax

    def attention_time_span(
        self,
        kv_bytes,
        stream_bandwidth: float,
        context_len,
        num_heads: int,
        batch: int = 1,
    ):
        """Vectorized :meth:`attention_time` over per-step KV loads.

        The macro-stepped decode span knows every step's context up
        front, so one call costs the whole span's attention;
        element-for-element identical to the scalar path.
        """
        if stream_bandwidth <= 0:
            raise ValueError("stream_bandwidth must be positive")
        kv_bytes = np.asarray(kv_bytes, dtype=np.float64)
        if (kv_bytes < 0).any():
            raise ValueError("kv_bytes must be non-negative")
        t_stream = self.gemv_time_batch(kv_bytes, stream_bandwidth, batch)
        t_softmax = self.activation.attention_softmax_time_span(
            context_len, num_heads, batch
        )
        times = t_stream + 0.1 * t_softmax
        # exactly-zero KV loads cost exactly 0.0, as in the scalar path
        times *= kv_bytes != 0
        return times

    def merge_time(self, n_values: int, batch: int = 1) -> float:
        """Merge kernel gathering GPU and DIMM partial results (§IV-A2)."""
        if n_values < 0:
            raise ValueError("n_values must be non-negative")
        return self.activation.relu_time(n_values * batch)

    def with_multipliers(self, multipliers: int) -> "NDPCore":
        """Core variant for the Fig. 16 design-space exploration."""
        return dataclasses.replace(self, gemv=self.gemv.scaled(multipliers))
