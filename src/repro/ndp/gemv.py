"""GEMV unit of the NDP core (paper §IV-A1, Table II).

Each NDP-DIMM carries one NDP core whose GEMV unit contains 256 multipliers
clocked at 1 GHz.  Each multiplier handles a 128-bit word (eight FP16
values) in a *bit-serial* manner, followed by a reduction-tree accumulator
and a 256 KB intermediate buffer.  Bit-serial FP16 multiplication takes on
the order of the mantissa width in cycles; with 16 cycles per 8-value word
the unit sustains 256 x 8 / 16 = 128 GMAC/s = 256 GFLOP/s — squarely in the
"hundreds of GFLOPS" envelope the paper attributes to NDP-DIMMs (§I).

The paper's Figure 16 sweeps the multiplier count from 32 to 512; the
``multipliers`` field exposes exactly that design space.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class GEMVUnit:
    """Timing model of one bit-serial GEMV unit."""

    multipliers: int = 256
    values_per_multiplier: int = 8  # FP16 lanes per 128-bit word
    bit_serial_cycles: int = 16     # cycles to consume one 128-bit word
    frequency: float = 1e9          # Hz
    buffer_bytes: int = 256 * 1024

    def __post_init__(self) -> None:
        if self.multipliers <= 0 or self.values_per_multiplier <= 0:
            raise ValueError("GEMV unit lane counts must be positive")
        if self.bit_serial_cycles <= 0 or self.frequency <= 0:
            raise ValueError("GEMV unit timing must be positive")
        if self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")

    @property
    def macs_per_second(self) -> float:
        """Sustained FP16 multiply-accumulates per second."""
        per_cycle = self.multipliers * self.values_per_multiplier
        return per_cycle / self.bit_serial_cycles * self.frequency

    @property
    def flops(self) -> float:
        return 2.0 * self.macs_per_second

    def compute_time(self, weight_bytes: float, batch: int = 1) -> float:
        """Pure-compute time for a GEMV over ``weight_bytes`` of FP16
        weights, reused across ``batch`` activation vectors."""
        if weight_bytes < 0:
            raise ValueError("weight_bytes must be non-negative")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        macs = weight_bytes / 2 * batch  # one MAC per FP16 weight per batch
        return macs / self.macs_per_second

    def compute_time_batch(
        self, weight_bytes: np.ndarray, batch: int = 1, *, check: bool = True
    ) -> np.ndarray:
        """Vectorized :meth:`compute_time` over an array of byte counts.

        Element-for-element identical to the scalar path (same operation
        order), so callers may mix the two freely.  ``check=False`` skips
        the conversion for inputs already in float64 arrays.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if check:
            weight_bytes = np.asarray(weight_bytes, dtype=np.float64)
        return weight_bytes / 2 * batch / self.macs_per_second

    def scaled(self, multipliers: int) -> "GEMVUnit":
        """The same unit with a different multiplier count (Fig. 16 DSE)."""
        return dataclasses.replace(self, multipliers=multipliers)
