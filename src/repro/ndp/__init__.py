"""NDP core models: GEMV unit, activation unit, per-DIMM core, ISA."""

from .activation import ActivationUnit
from .core import NDPCore
from .gemv import GEMVUnit
from .isa import (
    Command,
    LinkSend,
    Mac,
    Merge,
    NDPExecutor,
    RowRead,
    Softmax,
    lower_attention,
    lower_gemv,
)

__all__ = [
    "ActivationUnit",
    "GEMVUnit",
    "NDPCore",
    "Command",
    "RowRead",
    "Mac",
    "Softmax",
    "Merge",
    "LinkSend",
    "lower_gemv",
    "lower_attention",
    "NDPExecutor",
]
