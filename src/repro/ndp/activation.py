"""Activation unit of the NDP core (paper §IV-A1).

Supports the non-linear operators LLM inference needs on the DIMM side:
ReLU on FC outputs and softmax inside attention.  The unit comprises 256
FP16 exponentiation units, 256 adders and 256 multipliers plus a comparator
tree, an adder tree and a divider.  Softmax over ``n`` logits is therefore a
four-pass streaming operation (max, exp, sum, divide) at 256 lanes/cycle,
with log-depth tree reductions folded into the passes.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np


@dataclasses.dataclass(frozen=True)
class ActivationUnit:
    """Timing model of the non-linear function unit."""

    lanes: int = 256
    frequency: float = 1e9  # Hz
    #: pipeline passes for softmax: max-scan, exp, sum-scan, divide
    softmax_passes: int = 4

    def __post_init__(self) -> None:
        if self.lanes <= 0 or self.frequency <= 0:
            raise ValueError("activation unit spec must be positive")
        if self.softmax_passes <= 0:
            raise ValueError("softmax_passes must be positive")

    def relu_time(self, n_values: int) -> float:
        """Elementwise ReLU over ``n_values`` FP16 values."""
        if n_values < 0:
            raise ValueError("n_values must be non-negative")
        cycles = math.ceil(n_values / self.lanes)
        return cycles / self.frequency

    def softmax_time(self, n_values: int) -> float:
        """Numerically-stable softmax over ``n_values`` logits."""
        if n_values < 0:
            raise ValueError("n_values must be non-negative")
        if n_values == 0:
            return 0.0
        stream_cycles = math.ceil(n_values / self.lanes) * self.softmax_passes
        tree_cycles = 2 * max(1, math.ceil(math.log2(max(2, self.lanes))))
        return (stream_cycles + tree_cycles) / self.frequency

    def attention_softmax_time(
        self, context_len: int, num_heads: int, batch: int = 1
    ) -> float:
        """Softmax cost of one decode attention step on this DIMM."""
        if context_len < 0 or num_heads <= 0 or batch < 1:
            raise ValueError("invalid attention softmax arguments")
        return self.softmax_time(context_len) * num_heads * batch

    def attention_softmax_time_span(
        self, context_len, num_heads: int, batch: int = 1
    ):
        """Vectorized :meth:`attention_softmax_time` over context lengths.

        Element-for-element identical to the scalar path (the ceil and
        tree terms are exact small integers in float64).
        """
        if num_heads <= 0 or batch < 1:
            raise ValueError("invalid attention softmax arguments")
        context_len = np.asarray(context_len, dtype=np.float64)
        stream_cycles = (
            np.ceil(context_len / self.lanes) * self.softmax_passes
        )
        tree_cycles = 2 * max(1, math.ceil(math.log2(max(2, self.lanes))))
        times = (stream_cycles + tree_cycles) / self.frequency
        # exactly-zero contexts cost exactly 0.0, as in the scalar path
        times *= context_len != 0
        return times * num_heads * batch
