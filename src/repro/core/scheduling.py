"""Window-based online cold-neuron remapping (paper §IV-D, Algorithm 1).

Token-wise similarity makes the near future look like the recent past, so
Hermes balances NDP-DIMM load using a sliding window of observed activity:
every ``window`` tokens (paper: 5) it

1. computes each DIMM's activated-neuron load over the window
   (``Z_j = sum_i C_{j,i} * A_i``),
2. sorts DIMMs by load and pairs the heaviest with the lightest (then the
   second-heaviest with the second-lightest, ...), spreading migration
   traffic over distinct DIMM-link bridges, and
3. greedily moves the most-activated groups from the heavy to the light
   DIMM of each pair while doing so reduces the pair's makespan.

Migrations ride the DIMM-links during the projection window; the engine
charges any overflow.  The remapping mutates the partition's ``dimm_of``
arrays in place — the mapping is live state, exactly as in the paper.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..sparsity import NeuronLayout


@dataclasses.dataclass
class RemapResult:
    """Migration traffic produced by one rebalancing step."""

    moved_groups: int = 0
    moved_bytes: int = 0
    #: bytes moved per (source, destination) DIMM pair
    pair_bytes: dict = dataclasses.field(default_factory=dict)

    def merge(self, other: "RemapResult") -> None:
        self.moved_groups += other.moved_groups
        self.moved_bytes += other.moved_bytes
        for pair, b in other.pair_bytes.items():
            self.pair_bytes[pair] = self.pair_bytes.get(pair, 0) + b

    @property
    def max_link_bytes(self) -> int:
        """Largest per-link traffic — the migration critical path, since
        pairs use distinct bridges concurrently."""
        if not self.pair_bytes:
            return 0
        return max(self.pair_bytes.values())


class WindowScheduler:
    """Sliding-window activity tracker + Algorithm 1 rebalancer."""

    def __init__(
        self, layout: NeuronLayout, num_dimms: int, window: int = 5
    ) -> None:
        if num_dimms < 1:
            raise ValueError("num_dimms must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.layout = layout
        self.num_dimms = num_dimms
        self.window = window
        #: dense (num_layers, groups) activity accumulator; ``_activity``
        #: keeps the per-layer API as row views into it
        self._activity_matrix = np.zeros(
            (layout.model.num_layers, layout.groups_per_layer),
            dtype=np.int64)
        self._activity = list(self._activity_matrix)
        self._tokens_seen = 0

    # ------------------------------------------------------------------
    def observe_token(self, layer_activations) -> None:
        """Accumulate one token's activated groups into the window.

        Accepts either the historical list of per-layer masks or a dense
        (num_layers, groups) matrix (the decode fast path hands the
        trace's token matrix straight through).
        """
        if isinstance(layer_activations, np.ndarray):
            if layer_activations.shape != self._activity_matrix.shape:
                raise ValueError("one activation mask per layer required")
            self._activity_matrix += layer_activations
        else:
            if len(layer_activations) != len(self._activity):
                raise ValueError("one activation mask per layer required")
            for acc, mask in zip(self._activity, layer_activations):
                acc += mask
        self._tokens_seen += 1

    @property
    def window_full(self) -> bool:
        return self._tokens_seen >= self.window

    def reset_window(self) -> None:
        self._activity_matrix[:] = 0
        self._tokens_seen = 0

    # ------------------------------------------------------------------
    def dimm_loads(self, layer: int, dimm_of: np.ndarray,
                   exclude: np.ndarray | None = None) -> np.ndarray:
        """Windowed activated-group load per DIMM for one layer
        (Algorithm 1 line 1).  ``exclude`` masks GPU-resident groups whose
        compute does not land on the DIMMs."""
        activity = self._activity[layer].astype(np.float64)
        if exclude is not None:
            activity = np.where(exclude, 0.0, activity)
        # bincount over integer-valued float64 weights is exact, and far
        # cheaper than the np.add.at scatter it replaces
        return np.bincount(dimm_of, weights=activity,
                           minlength=self.num_dimms)

    def rebalance_layer(
        self,
        layer: int,
        dimm_of: np.ndarray,
        *,
        exclude: np.ndarray | None = None,
    ) -> RemapResult:
        """Algorithm 1 for one layer; mutates ``dimm_of`` in place."""
        if self.num_dimms == 1:
            return RemapResult()
        activity = self._activity[layer].astype(np.float64)
        if exclude is not None:
            activity = np.where(exclude, 0.0, activity)
        loads = np.bincount(
            dimm_of, weights=activity, minlength=self.num_dimms
        )
        return self._rebalance_pairs(layer, dimm_of, activity, loads)

    def _rebalance_pairs(
        self,
        layer: int,
        dimm_of: np.ndarray,
        activity: np.ndarray,
        loads: np.ndarray,
        peak: np.ndarray | None = None,
    ) -> RemapResult:
        """Pair heaviest/lightest DIMMs and drain each pair (lines 2-6).

        ``peak`` optionally carries each DIMM's hottest member activity
        (a scatter-max the matrix caller computes for all layers at
        once); a pair whose heaviest member cannot move — inactive, or
        the move would overshoot the balance point — is skipped without
        touching the membership arrays, which is the common
        near-balanced outcome.
        """
        result = RemapResult()
        order = np.argsort(loads)[::-1]  # heaviest first (line 2)
        for pos in range(self.num_dimms // 2):
            heavy = int(order[pos])
            light = int(order[self.num_dimms - 1 - pos])
            if loads[heavy] <= loads[light]:
                # already balanced: any positive move would overshoot, so
                # the drain loop could only break on its first candidate
                continue
            if peak is not None:
                amax = peak[heavy]
                # the drain probes its hottest member first; this is its
                # first-probe exit, decided without gathering members
                if amax <= 0 or loads[heavy] - amax < loads[light] + amax:
                    continue
            moved = self._drain_pair(
                layer, dimm_of, activity, loads, heavy, light
            )
            result.merge(moved)
        return result

    def _drain_pair(
        self,
        layer: int,
        dimm_of: np.ndarray,
        activity: np.ndarray,
        loads: np.ndarray,
        heavy: int,
        light: int,
    ) -> RemapResult:
        """Move hottest groups heavy -> light while the pair max shrinks
        (Algorithm 1 lines 3-6).

        The greedy scan is closed-form: every quantity is an
        integer-valued float64 (windowed activation counts), so the
        prefix arithmetic reproduces the sequential move-by-move loop
        it replaced exactly — including its two stopping rules (first
        inactive group, first move that would overshoot the balance
        point).
        """
        result = RemapResult()
        members = np.flatnonzero(dimm_of == heavy)
        if members.size == 0:
            return result
        act = activity[members]
        amax = act.max()
        # The hottest candidate is probed first, so if even it cannot
        # move — inactive, or the move would overshoot the balance point
        # — the greedy scan stops with nothing moved.  That is the
        # common near-balanced outcome; bail before the argsort.
        if amax <= 0 or loads[heavy] - amax < loads[light] + amax:
            return result
        order = np.argsort(act)[::-1]
        members = members[order]
        hot = act[order]
        # the greedy loop stops at the first inactive group
        n_pos = int(np.searchsorted(-hot, 0.0, side="left"))
        if n_pos == 0:
            return result
        hot = hot[:n_pos]
        drained = np.cumsum(hot)
        before = drained - hot  # load already moved when each probe runs
        # moving group i still helps while (H - before_i) - a_i >=
        # (L + before_i) + a_i, i.e. while it reduces max(heavy, light)
        ok = loads[heavy] - loads[light] - 2.0 * before - 2.0 * hot >= 0.0
        moved_n = n_pos if ok.all() else int(np.argmin(ok))
        if moved_n == 0:
            return result
        moved = members[:moved_n]
        dimm_of[moved] = light
        total = float(drained[moved_n - 1])
        loads[heavy] -= total
        loads[light] += total
        moved_bytes = int(self.layout.group_bytes[moved].sum())
        result.moved_groups = moved_n
        result.moved_bytes = moved_bytes
        result.pair_bytes[(heavy, light)] = moved_bytes
        return result

    # ------------------------------------------------------------------
    def rebalance_all(self, dimm_of, *, exclude=None,
                      keys: np.ndarray | None = None) -> RemapResult:
        """Rebalance every layer and reset the window.

        ``dimm_of`` and ``exclude`` may be per-layer lists or dense
        (num_layers, groups) matrices; the matrix form computes every
        layer's masked activity and per-DIMM loads in a few vectorized
        ops (one flat segmented bincount) before running the per-pair
        drains, with identical results.  ``keys`` optionally supplies
        the flattened ``layer * num_dimms + dimm_of`` bin keys — a
        caller that tracks remaps (the engine, via the partition's
        ``remap_version``) can cache them between moves.
        """
        total = RemapResult()
        if isinstance(dimm_of, np.ndarray) and dimm_of.ndim == 2 \
                and self.num_dimms > 1:
            num_layers = dimm_of.shape[0]
            activity = self._activity_matrix.astype(np.float64)
            if exclude is not None:
                ex = (exclude if isinstance(exclude, np.ndarray)
                      else np.stack(list(exclude)))
                activity = np.where(ex, 0.0, activity)
            if keys is None:
                keys = dimm_of + (
                    np.arange(num_layers)[:, None] * self.num_dimms
                )
            flat_keys = keys.ravel()
            loads = np.bincount(
                flat_keys, weights=activity.ravel(),
                minlength=num_layers * self.num_dimms,
            ).reshape(num_layers, self.num_dimms)
            # hottest member per (layer, DIMM) — one scatter-max feeding
            # the per-pair first-probe exits of every layer's drain
            peak = np.zeros(num_layers * self.num_dimms)
            np.maximum.at(peak, flat_keys, activity.ravel())
            peak = peak.reshape(num_layers, self.num_dimms)
            for l in range(num_layers):
                total.merge(self._rebalance_pairs(
                    l, dimm_of[l], activity[l], loads[l], peak[l]))
        else:
            rows = list(dimm_of)
            for l in range(len(rows)):
                mask = exclude[l] if exclude is not None else None
                total.merge(self.rebalance_layer(l, rows[l], exclude=mask))
        self.reset_window()
        return total
