"""Window-based online cold-neuron remapping (paper §IV-D, Algorithm 1).

Token-wise similarity makes the near future look like the recent past, so
Hermes balances NDP-DIMM load using a sliding window of observed activity:
every ``window`` tokens (paper: 5) it

1. computes each DIMM's activated-neuron load over the window
   (``Z_j = sum_i C_{j,i} * A_i``),
2. sorts DIMMs by load and pairs the heaviest with the lightest (then the
   second-heaviest with the second-lightest, ...), spreading migration
   traffic over distinct DIMM-link bridges, and
3. greedily moves the most-activated groups from the heavy to the light
   DIMM of each pair while doing so reduces the pair's makespan.

Migrations ride the DIMM-links during the projection window; the engine
charges any overflow.  The remapping mutates the partition's ``dimm_of``
arrays in place — the mapping is live state, exactly as in the paper.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..sparsity import NeuronLayout


@dataclasses.dataclass
class RemapResult:
    """Migration traffic produced by one rebalancing step."""

    moved_groups: int = 0
    moved_bytes: int = 0
    #: bytes moved per (source, destination) DIMM pair
    pair_bytes: dict = dataclasses.field(default_factory=dict)

    def merge(self, other: "RemapResult") -> None:
        self.moved_groups += other.moved_groups
        self.moved_bytes += other.moved_bytes
        for pair, b in other.pair_bytes.items():
            self.pair_bytes[pair] = self.pair_bytes.get(pair, 0) + b

    @property
    def max_link_bytes(self) -> int:
        """Largest per-link traffic — the migration critical path, since
        pairs use distinct bridges concurrently."""
        if not self.pair_bytes:
            return 0
        return max(self.pair_bytes.values())


class WindowScheduler:
    """Sliding-window activity tracker + Algorithm 1 rebalancer."""

    def __init__(self, layout: NeuronLayout, num_dimms: int,
                 window: int = 5) -> None:
        if num_dimms < 1:
            raise ValueError("num_dimms must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.layout = layout
        self.num_dimms = num_dimms
        self.window = window
        self._activity = [
            np.zeros(layout.groups_per_layer, dtype=np.int64)
            for _ in range(layout.model.num_layers)
        ]
        self._tokens_seen = 0

    # ------------------------------------------------------------------
    def observe_token(self, layer_activations: list[np.ndarray]) -> None:
        """Accumulate one token's activated groups into the window."""
        if len(layer_activations) != len(self._activity):
            raise ValueError("one activation mask per layer required")
        for acc, mask in zip(self._activity, layer_activations):
            acc += mask
        self._tokens_seen += 1

    @property
    def window_full(self) -> bool:
        return self._tokens_seen >= self.window

    def reset_window(self) -> None:
        for acc in self._activity:
            acc[:] = 0
        self._tokens_seen = 0

    # ------------------------------------------------------------------
    def dimm_loads(self, layer: int, dimm_of: np.ndarray,
                   exclude: np.ndarray | None = None) -> np.ndarray:
        """Windowed activated-group load per DIMM for one layer
        (Algorithm 1 line 1).  ``exclude`` masks GPU-resident groups whose
        compute does not land on the DIMMs."""
        activity = self._activity[layer].astype(np.float64)
        if exclude is not None:
            activity = np.where(exclude, 0.0, activity)
        loads = np.zeros(self.num_dimms)
        np.add.at(loads, dimm_of, activity)
        return loads

    def rebalance_layer(self, layer: int, dimm_of: np.ndarray, *,
                        exclude: np.ndarray | None = None) -> RemapResult:
        """Algorithm 1 for one layer; mutates ``dimm_of`` in place."""
        result = RemapResult()
        if self.num_dimms == 1:
            return result
        activity = self._activity[layer].astype(np.float64)
        if exclude is not None:
            activity = np.where(exclude, 0.0, activity)
        loads = self.dimm_loads(layer, dimm_of, exclude=exclude)
        order = np.argsort(loads)[::-1]  # heaviest first (line 2)
        for pos in range(self.num_dimms // 2):
            heavy = int(order[pos])
            light = int(order[self.num_dimms - 1 - pos])
            moved = self._drain_pair(layer, dimm_of, activity, loads,
                                     heavy, light)
            result.merge(moved)
        return result

    def _drain_pair(self, layer: int, dimm_of: np.ndarray,
                    activity: np.ndarray, loads: np.ndarray,
                    heavy: int, light: int) -> RemapResult:
        """Move hottest groups heavy -> light while the pair max shrinks
        (Algorithm 1 lines 3-6)."""
        result = RemapResult()
        members = np.flatnonzero(dimm_of == heavy)
        if members.size == 0:
            return result
        members = members[np.argsort(activity[members])[::-1]]
        for idx in members:
            a = float(activity[idx])
            if a <= 0:
                break
            # moving idx helps only while it reduces max(heavy, light)
            if loads[heavy] - a < loads[light] + a:
                break
            dimm_of[idx] = light
            loads[heavy] -= a
            loads[light] += a
            b = int(self.layout.group_bytes[idx])
            result.moved_groups += 1
            result.moved_bytes += b
            pair = (heavy, light)
            result.pair_bytes[pair] = result.pair_bytes.get(pair, 0) + b
        return result

    # ------------------------------------------------------------------
    def rebalance_all(self, dimm_of: list[np.ndarray], *,
                      exclude: list[np.ndarray] | None = None
                      ) -> RemapResult:
        """Rebalance every layer and reset the window."""
        total = RemapResult()
        for l in range(len(dimm_of)):
            mask = exclude[l] if exclude is not None else None
            total.merge(self.rebalance_layer(l, dimm_of[l], exclude=mask))
        self.reset_window()
        return total
