"""Offline neuron mapping (paper §IV-B).

Decides, before inference starts, (a) which neuron groups are replicated
into GPU memory as the initial *hot* set and (b) which NDP-DIMM stores (and
therefore computes) each group.  The paper formalises this as an ILP
(Equations 1-7) solved with PuLP; PuLP is unavailable offline, so this
module provides:

* ``strategy="ilp"`` — the LP relaxation of Equations 1-7 solved with
  ``scipy.optimize.linprog`` (HiGHS) followed by deterministic rounding.
  The relaxation keeps the exact objective (sum over layers of the max of
  the GPU path and the balanced-DIMM path) and the exact GPU capacity
  constraint; only the per-DIMM max is relaxed to the balanced mean, which
  the separate DIMM assignment step then re-establishes.
* ``strategy="greedy"`` — globally hottest-first GPU fill (the per-byte
  benefit of GPU residency is proportional to activation frequency, so the
  greedy order is the exact LP rounding order; it differs from the LP only
  when per-layer balance binds).  Scales to 70B-class models in
  milliseconds.
* ``strategy="random"`` — the Hermes-random ablation baseline of Fig. 13.

DIMM storage assignment uses longest-processing-time (LPT) greedy packing
of expected per-layer load, respecting per-DIMM capacity — the classic
4/3-approximation for makespan, refined online by Algorithm 1.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..sparsity import NeuronLayout


@dataclasses.dataclass(frozen=True)
class PartitionCosts:
    """Per-byte execution rates used by the offline solver (Eq. 4-5)."""

    gpu_seconds_per_byte: float
    dimm_seconds_per_byte: float
    sync_seconds: float
    num_dimms: int
    gpu_budget_bytes: int
    dimm_capacity_bytes: int

    def __post_init__(self) -> None:
        if self.gpu_seconds_per_byte <= 0 or self.dimm_seconds_per_byte <= 0:
            raise ValueError("execution rates must be positive")
        if self.sync_seconds < 0:
            raise ValueError("sync_seconds must be non-negative")
        if self.num_dimms < 1:
            raise ValueError("num_dimms must be >= 1")
        if self.gpu_budget_bytes < 0:
            raise ValueError("gpu_budget_bytes must be non-negative")
        if self.dimm_capacity_bytes <= 0:
            raise ValueError("dimm_capacity_bytes must be positive")


@dataclasses.dataclass
class OfflinePartition:
    """The solved initial mapping.

    ``hot_masks[l]`` marks the groups of layer ``l`` replicated in GPU
    memory; ``dimm_of[l]`` stores the owning DIMM of *every* group (all
    weights live on DIMMs — hot groups are copies, so swapping a hot neuron
    out is a free overwrite, §IV-C2).
    """

    hot_masks: list[np.ndarray]
    dimm_of: list[np.ndarray]
    strategy: str
    #: dense (num_layers, groups) view of ``dimm_of`` — the decode fast
    #: path consumes the whole mapping per token, so the rows of
    #: ``dimm_of`` are kept as views into this matrix (in-place row
    #: mutations by the window scheduler stay visible both ways)
    dimm_of_matrix: np.ndarray = dataclasses.field(init=False, repr=False)
    #: bumped by whoever remaps ``dimm_of`` in place (the engine's window
    #: rebalance), so sessions *sharing* this partition — the machines of
    #: a homogeneous serving cluster — can cache derived views of the
    #: mapping and still observe each other's migrations
    remap_version: int = dataclasses.field(default=0, init=False,
                                           repr=False)

    def __post_init__(self) -> None:
        self.dimm_of_matrix = np.stack(self.dimm_of)
        self.dimm_of[:] = list(self.dimm_of_matrix)

    def gpu_bytes(self, layout: NeuronLayout) -> int:
        return sum(int(layout.group_bytes[m].sum()) for m in self.hot_masks)

    def validate(self, layout: NeuronLayout, costs: PartitionCosts) -> None:
        """Assert capacity constraints (Eq. 6-7) hold."""
        if self.gpu_bytes(layout) > costs.gpu_budget_bytes:
            raise ValueError("GPU capacity constraint violated")
        per_dimm = np.zeros(costs.num_dimms)
        for assignment in self.dimm_of:
            for d in range(costs.num_dimms):
                per_dimm[d] += layout.group_bytes[assignment == d].sum()
        if (per_dimm > costs.dimm_capacity_bytes).any():
            raise ValueError("DIMM capacity constraint violated")


# ----------------------------------------------------------------------
# hot/cold split
# ----------------------------------------------------------------------
def gpu_mass_share(costs: PartitionCosts) -> float:
    """Optimal fraction of *activated mass* to place on the GPU.

    GPU and the DIMM pool execute a layer concurrently (Eq. 1-3), so the
    per-layer makespan is minimised when the two sides finish together:
    ``A_gpu * r_gpu = A_dimm * r_dimm / J``, giving the GPU the share
    below.  The rates are batch-aware, so the share grows as batching
    pushes the NDP cores compute-bound (which is why large-batch Hermes
    leans harder on the GPU, §V-B2).
    """
    pool_rate = costs.dimm_seconds_per_byte / costs.num_dimms
    return pool_rate / (costs.gpu_seconds_per_byte + pool_rate)


def _greedy_hot_masks(
    frequencies: list[np.ndarray], layout: NeuronLayout, costs: PartitionCosts
) -> list[np.ndarray]:
    """Rate-balanced water-filling, hottest groups first.

    Groups are taken in global frequency order; a group joins the hot set
    while (a) GPU capacity remains and (b) its layer's accumulated
    expected activated mass is still below the balance target of
    :func:`gpu_mass_share` — filling past the balance point would make
    the GPU the bottleneck while NDP cores idle.
    """
    num_layers = len(frequencies)
    g = layout.groups_per_layer
    scores = np.concatenate(frequencies)
    order = np.argsort(scores)[::-1]
    flat_bytes = np.tile(layout.group_bytes, num_layers)
    flat_mass = scores * flat_bytes
    share = gpu_mass_share(costs)
    target = [share * float((frequencies[l] * layout.group_bytes).sum())
              for l in range(num_layers)]
    taken = [0.0] * num_layers
    selected = np.zeros(scores.size, dtype=bool)
    budget = costs.gpu_budget_bytes
    for idx in order:
        layer = idx // g
        if taken[layer] >= target[layer]:
            continue
        b = flat_bytes[idx]
        if b <= budget:
            selected[idx] = True
            budget -= b
            taken[layer] += float(flat_mass[idx])
    return [selected[l * g:(l + 1) * g].copy() for l in range(num_layers)]


def _random_hot_masks(
    frequencies: list[np.ndarray],
    layout: NeuronLayout,
    costs: PartitionCosts,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Random GPU fill (the Hermes-random ablation)."""
    num_layers = len(frequencies)
    g = layout.groups_per_layer
    order = rng.permutation(num_layers * g)
    flat_bytes = np.tile(layout.group_bytes, num_layers)
    selected = np.zeros(num_layers * g, dtype=bool)
    budget = costs.gpu_budget_bytes
    for idx in order:
        b = flat_bytes[idx]
        if b <= budget:
            selected[idx] = True
            budget -= b
    return [selected[l * g:(l + 1) * g].copy() for l in range(num_layers)]


def _lp_hot_masks(
    frequencies: list[np.ndarray], layout: NeuronLayout, costs: PartitionCosts
) -> list[np.ndarray]:
    """LP relaxation of Eq. 1-7 (HiGHS) + deterministic rounding.

    Variables: x[l,i] in [0,1] (GPU placement) and one makespan m_l per
    layer.  Objective: sum_l m_l.  Constraints:

    * m_l >= 2*Tsync + sum_i f_i c_i^GPU x_li          (Eq. 3-4)
    * m_l >= sum_i f_i c_i^DIMM (1 - x_li) / J          (Eq. 2-5, balanced)
    * sum_{l,i} M_i x_li <= S_GPU                       (Eq. 6)
    """
    from scipy.optimize import linprog

    num_layers = len(frequencies)
    g = layout.groups_per_layer
    n_x = num_layers * g
    n_vars = n_x + num_layers

    cost = np.zeros(n_vars)
    cost[n_x:] = 1.0  # minimise sum of per-layer makespans

    rows_a, rows_b = [], []
    gpu_rate = costs.gpu_seconds_per_byte
    dimm_rate = costs.dimm_seconds_per_byte / costs.num_dimms
    for l, freq in enumerate(frequencies):
        load_gpu = freq * layout.group_bytes * gpu_rate
        load_dimm = freq * layout.group_bytes * dimm_rate
        # GPU path: sum_i load_gpu_i x_i - m_l <= -2 Tsync
        row = np.zeros(n_vars)
        row[l * g:(l + 1) * g] = load_gpu
        row[n_x + l] = -1.0
        rows_a.append(row)
        rows_b.append(-2.0 * costs.sync_seconds)
        # DIMM path: -sum_i load_dimm_i x_i - m_l <= -sum_i load_dimm_i
        row = np.zeros(n_vars)
        row[l * g:(l + 1) * g] = -load_dimm
        row[n_x + l] = -1.0
        rows_a.append(row)
        rows_b.append(-float(load_dimm.sum()))
    # capacity
    row = np.zeros(n_vars)
    row[:n_x] = np.tile(layout.group_bytes, num_layers)
    rows_a.append(row)
    rows_b.append(float(costs.gpu_budget_bytes))

    bounds = [(0.0, 1.0)] * n_x + [(0.0, None)] * num_layers
    result = linprog(
        cost,
        A_ub=np.array(rows_a),
        b_ub=np.array(rows_b),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP solve failed: {result.message}")
    x = result.x[:n_x]
    # deterministic rounding: keep fractional placements in LP-value order
    order = np.argsort(x)[::-1]
    flat_bytes = np.tile(layout.group_bytes, num_layers)
    selected = np.zeros(n_x, dtype=bool)
    budget = costs.gpu_budget_bytes
    for idx in order:
        if x[idx] <= 1e-6:
            break
        b = flat_bytes[idx]
        if b <= budget:
            selected[idx] = True
            budget -= b
    return [selected[l * g:(l + 1) * g].copy() for l in range(num_layers)]


# ----------------------------------------------------------------------
# DIMM storage assignment
# ----------------------------------------------------------------------
def assign_dimms(frequencies: list[np.ndarray], hot_masks: list[np.ndarray],
                 layout: NeuronLayout, costs: PartitionCosts, *,
                 rng: np.random.Generator | None = None,
                 balanced: bool = True) -> list[np.ndarray]:
    """Assign every group of every layer to a DIMM.

    ``balanced=True`` packs by LPT on expected *cold* load per layer (hot
    groups contribute storage but negligible NDP load, since they execute
    on the GPU); ``balanced=False`` assigns round-robin by index, the naive
    placement whose imbalance §III-C measures.
    """
    num_dimms = costs.num_dimms
    capacity = np.full(num_dimms, float(costs.dimm_capacity_bytes))
    assignments = []
    for l, freq in enumerate(frequencies):
        load = freq * layout.group_bytes
        load = np.where(hot_masks[l], 0.0, load)
        dimm_of = np.empty(layout.groups_per_layer, dtype=np.int64)
        dimm_load = np.zeros(num_dimms)
        dimm_bytes = np.zeros(num_dimms)
        if balanced:
            order = np.argsort(load)[::-1]
        else:
            order = np.arange(layout.groups_per_layer)
        for rank, idx in enumerate(order):
            b = float(layout.group_bytes[idx])
            if balanced:
                if load[idx] > 0:
                    # least-loaded DIMM with room (LPT)
                    candidates = np.lexsort((dimm_bytes, dimm_load))
                else:
                    # zero-expected-load groups spread by byte balance:
                    # identity churn may make them hot later, so they must
                    # not be concentrated on one module
                    candidates = np.argsort(dimm_bytes)
            else:
                candidates = [(rank % num_dimms + k) % num_dimms
                              for k in range(num_dimms)]
            for d in candidates:
                if capacity[d] >= b:
                    dimm_of[idx] = d
                    dimm_load[d] += load[idx]
                    dimm_bytes[d] += b
                    capacity[d] -= b
                    break
            else:
                raise ValueError(
                    f"layer {l}: DIMM pool too small for the model"
                )
        assignments.append(dimm_of)
    return assignments


# ----------------------------------------------------------------------
# public entry point
# ----------------------------------------------------------------------
def solve_partition(frequencies: list[np.ndarray], layout: NeuronLayout,
                    costs: PartitionCosts, *, strategy: str = "greedy",
                    seed: int = 0,
                    balanced_dimms: bool = True) -> OfflinePartition:
    """Solve the offline neuron mapping from profiled frequencies.

    ``frequencies[l]`` is the profiled activation frequency of each group
    in layer ``l`` (the paper profiles 128 samples of C4/Pile; the engine
    passes prefill-window frequencies).
    """
    if len(frequencies) != layout.model.num_layers:
        raise ValueError("one frequency vector per layer required")
    for freq in frequencies:
        if freq.shape != (layout.groups_per_layer,):
            raise ValueError("frequency vector has wrong shape")
        if (freq < 0).any() or (freq > 1).any():
            raise ValueError("frequencies must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    if strategy == "greedy":
        hot = _greedy_hot_masks(frequencies, layout, costs)
    elif strategy == "ilp":
        hot = _lp_hot_masks(frequencies, layout, costs)
    elif strategy == "random":
        hot = _random_hot_masks(frequencies, layout, costs, rng)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    dimm_of = assign_dimms(
        frequencies,
        hot,
        layout,
        costs,
        rng=rng,
        balanced=balanced_dimms and strategy != "random",
    )
    partition = OfflinePartition(
        hot_masks=hot, dimm_of=dimm_of, strategy=strategy
    )
    partition.validate(layout, costs)
    return partition
