"""Run results shared by Hermes and every baseline system.

The paper reports end-to-end generation speed in tokens/s (batch x decoded
tokens over wall time, §V-A4) and latency breakdowns by operator class
(Fig. 12: FC, attention, predictor, prefill, communication, others).  Every
simulated system returns a :class:`RunResult` with those exact categories so
the experiment harness can print paper-shaped rows.
"""

from __future__ import annotations

import dataclasses

#: breakdown categories used in Fig. 12
BREAKDOWN_KEYS = (
    "fc", "attention", "projection", "predictor", "prefill",
    "communication", "others",
)


@dataclasses.dataclass
class RunResult:
    """Timing outcome of one simulated inference run."""

    system: str
    model: str
    batch: int
    prefill_time: float
    decode_time: float
    n_decode_tokens: int
    breakdown: dict[str, float] = dataclasses.field(default_factory=dict)
    metadata: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.n_decode_tokens < 1:
            raise ValueError("n_decode_tokens must be >= 1")
        if self.prefill_time < 0 or self.decode_time <= 0:
            raise ValueError("times must be positive")
        for key in self.breakdown:
            if key not in BREAKDOWN_KEYS:
                raise ValueError(f"unknown breakdown key {key!r}")

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        return self.prefill_time + self.decode_time

    @property
    def tokens_per_second(self) -> float:
        """End-to-end generation speed (the paper's headline metric)."""
        return self.batch * self.n_decode_tokens / self.total_time

    @property
    def decode_tokens_per_second(self) -> float:
        """Token-generation-stage speed, excluding prefill."""
        return self.batch * self.n_decode_tokens / self.decode_time

    @property
    def decode_latency_per_token(self) -> float:
        """Mean per-step decode latency in seconds."""
        return self.decode_time / self.n_decode_tokens

    # ------------------------------------------------------------------
    def add(self, key: str, seconds: float) -> None:
        """Accumulate ``seconds`` into a breakdown category."""
        if key not in BREAKDOWN_KEYS:
            raise ValueError(f"unknown breakdown key {key!r}")
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.breakdown[key] = self.breakdown.get(key, 0.0) + seconds

    def breakdown_fractions(self) -> dict[str, float]:
        """Each category as a fraction of total accounted time."""
        total = sum(self.breakdown.values())
        if total <= 0:
            raise ValueError("no breakdown recorded")
        return {k: v / total for k, v in self.breakdown.items()}

    def speedup_over(self, other: "RunResult") -> float:
        """Throughput ratio of self over ``other`` (same workload)."""
        if (other.model != self.model or other.batch != self.batch
                or other.n_decode_tokens != self.n_decode_tokens):
            raise ValueError("speedup requires identical workloads")
        return self.tokens_per_second / other.tokens_per_second
