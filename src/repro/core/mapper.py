"""Online hot/cold neuron adjustment (paper §IV-C2).

All weights live on the DIMMs; GPU memory holds *copies* of the hot set.
After each token, groups whose predictor state rose above the hot threshold
are swapped in over PCIe, evicting the lowest-state resident groups — which
is free, because evicting only overwrites the GPU copy.  Swap-ins are
scheduled inside the projection window, when the DIMMs are idle and the
PCIe link has no competing weight traffic; the engine charges any overflow
beyond the window to the token's critical path.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..sparsity import NeuronLayout
from .partition import OfflinePartition


@dataclasses.dataclass
class AdjustmentResult:
    """Outcome of one per-layer adjustment step."""

    swapped_in: int = 0
    swapped_out: int = 0
    bytes_in: int = 0

    def merge(self, other: "AdjustmentResult") -> None:
        self.swapped_in += other.swapped_in
        self.swapped_out += other.swapped_out
        self.bytes_in += other.bytes_in


class NeuronMapper:
    """Tracks GPU residency and performs threshold-guided swaps."""

    def __init__(self, layout: NeuronLayout, gpu_budget_bytes: int) -> None:
        if gpu_budget_bytes < 0:
            raise ValueError("gpu_budget_bytes must be non-negative")
        self.layout = layout
        self.gpu_budget_bytes = gpu_budget_bytes
        self.resident: list[np.ndarray] = [
            np.zeros(layout.groups_per_layer, dtype=bool)
            for _ in range(layout.model.num_layers)
        ]
        self.resident_bytes = 0
        # Per-layer residency ceiling, fixed by the offline partition:
        # online adjustment is membership churn (paired swap-in/swap-out,
        # Fig. 8a), not growth — growing the GPU side past the partition's
        # balance point would starve the NDP pool (Eq. 1).
        self.layer_budget: list[int] = [
            gpu_budget_bytes for _ in range(layout.model.num_layers)
        ]

    # ------------------------------------------------------------------
    def initialize(self, partition: OfflinePartition) -> None:
        """Load the offline hot set into GPU memory and freeze each
        layer's residency footprint at the partition's allocation."""
        total = 0
        slack = max(1, int(self.layout.group_bytes.max()))
        for l, mask in enumerate(partition.hot_masks):
            self.resident[l] = mask.copy()
            layer_bytes = int(self.layout.group_bytes[mask].sum())
            total += layer_bytes
            self.layer_budget[l] = layer_bytes + slack
        if total > self.gpu_budget_bytes:
            raise ValueError("offline partition exceeds the GPU budget")
        self.resident_bytes = total

    # ------------------------------------------------------------------
    def adjust(self, layer: int, states: np.ndarray, *,
               hot_threshold: int = 10,
               max_bytes: int | None = None) -> AdjustmentResult:
        """Swap newly-hot groups in and cold residents out for one layer.

        ``states`` is the predictor's state table for the layer.  At most
        ``max_bytes`` may be transferred (the projection-window budget);
        remaining candidates wait for the next opportunity, exactly like
        the deferred copies of the paper's instruction queue.
        """
        layout = self.layout
        resident = self.resident[layer]
        if states.shape != resident.shape:
            raise ValueError("states mask has wrong shape")
        result = AdjustmentResult()
        budget = max_bytes if max_bytes is not None else np.inf

        hot = states > hot_threshold
        wanted = np.flatnonzero(hot & ~resident)
        if wanted.size == 0:
            return result
        # hottest candidates first
        wanted = wanted[np.argsort(states[wanted])[::-1]]
        # eviction candidates: coldest residents first
        evictable = np.flatnonzero(resident)
        evictable = evictable[np.argsort(states[evictable])]
        layer_used = int(layout.group_bytes[resident].sum())
        evict_pos = 0
        for idx in wanted:
            b = int(layout.group_bytes[idx])
            if b > budget:
                break
            free = min(self.gpu_budget_bytes - self.resident_bytes,
                       self.layer_budget[layer] - layer_used)
            # evict until the newcomer fits; never evict hotter than it
            while free < b and evict_pos < evictable.size:
                victim = evictable[evict_pos]
                if states[victim] >= states[idx]:
                    break
                resident[victim] = False
                freed = int(layout.group_bytes[victim])
                self.resident_bytes -= freed
                layer_used -= freed
                free += freed
                result.swapped_out += 1
                evict_pos += 1
            if free < b:
                break
            resident[idx] = True
            self.resident_bytes += b
            layer_used += b
            budget -= b
            result.swapped_in += 1
            result.bytes_in += b
        return result

    # ------------------------------------------------------------------
    def residency_bytes(self, layer: int) -> int:
        return int(self.layout.group_bytes[self.resident[layer]].sum())

    def check_invariants(self) -> None:
        """Internal consistency: byte counter matches the masks and the
        budget holds (used by property tests)."""
        total = sum(self.residency_bytes(l)
                    for l in range(len(self.resident)))
        if total != self.resident_bytes:
            raise AssertionError("resident byte counter out of sync")
        if total > self.gpu_budget_bytes:
            raise AssertionError("GPU budget exceeded")
