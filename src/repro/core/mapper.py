"""Online hot/cold neuron adjustment (paper §IV-C2).

All weights live on the DIMMs; GPU memory holds *copies* of the hot set.
After each token, groups whose predictor state rose above the hot threshold
are swapped in over PCIe, evicting the lowest-state resident groups — which
is free, because evicting only overwrites the GPU copy.  Swap-ins are
scheduled inside the projection window, when the DIMMs are idle and the
PCIe link has no competing weight traffic; the engine charges any overflow
beyond the window to the token's critical path.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..sparsity import NeuronLayout
from .partition import OfflinePartition
from .predictor import STATE_MAX


@dataclasses.dataclass
class AdjustmentResult:
    """Outcome of one per-layer adjustment step."""

    swapped_in: int = 0
    swapped_out: int = 0
    bytes_in: int = 0

    def merge(self, other: "AdjustmentResult") -> None:
        self.swapped_in += other.swapped_in
        self.swapped_out += other.swapped_out
        self.bytes_in += other.bytes_in


class NeuronMapper:
    """Tracks GPU residency and performs threshold-guided swaps."""

    def __init__(self, layout: NeuronLayout, gpu_budget_bytes: int) -> None:
        if gpu_budget_bytes < 0:
            raise ValueError("gpu_budget_bytes must be non-negative")
        self.layout = layout
        self.gpu_budget_bytes = gpu_budget_bytes
        #: dense (num_layers, groups) residency matrix; ``resident`` keeps
        #: the historical per-layer API as row views into it, so in-place
        #: swaps update both and the decode fast path can consume the
        #: whole matrix without re-stacking per token
        self.resident_matrix = np.zeros(
            (layout.model.num_layers, layout.groups_per_layer), dtype=bool)
        self.resident: list[np.ndarray] = list(self.resident_matrix)
        self.resident_bytes = 0
        #: bumped whenever residency actually changes (initialize, or an
        #: adjust that swapped something) — lets the decode loop cache
        #: views derived from the residency matrix between changes
        self.version = 0
        #: plain-int mirrors for the adjustment inner loop (indexing a
        #: Python list beats per-element ndarray item extraction)
        self._group_bytes_list: list[int] = layout.group_bytes.tolist()
        #: per-layer resident bytes, maintained incrementally by
        #: :meth:`initialize`/:meth:`adjust` so the hot path never re-sums
        self._layer_used: list[int] = [0] * layout.model.num_layers
        # Per-layer residency ceiling, fixed by the offline partition:
        # online adjustment is membership churn (paired swap-in/swap-out,
        # Fig. 8a), not growth — growing the GPU side past the partition's
        # balance point would starve the NDP pool (Eq. 1).
        self.layer_budget: list[int] = [
            gpu_budget_bytes for _ in range(layout.model.num_layers)
        ]

    # ------------------------------------------------------------------
    def initialize(self, partition: OfflinePartition) -> None:
        """Load the offline hot set into GPU memory and freeze each
        layer's residency footprint at the partition's allocation."""
        total = 0
        slack = max(1, int(self.layout.group_bytes.max()))
        for l, mask in enumerate(partition.hot_masks):
            self.resident[l][:] = mask
            layer_bytes = int(self.layout.group_bytes[mask].sum())
            total += layer_bytes
            self._layer_used[l] = layer_bytes
            self.layer_budget[l] = layer_bytes + slack
        if total > self.gpu_budget_bytes:
            raise ValueError("offline partition exceeds the GPU budget")
        self.resident_bytes = total
        self.version += 1

    # ------------------------------------------------------------------
    def adjust(self, layer: int, states: np.ndarray, *,
               hot_threshold: int = 10,
               max_bytes: int | None = None,
               coldest_state: int | None = None,
               wanted_row: np.ndarray | None = None,
               hottest_wanted: int | None = None,
               min_wanted_bytes: int | None = None) -> AdjustmentResult:
        """Swap newly-hot groups in and cold residents out for one layer.

        ``states`` is the predictor's state table for the layer.  At most
        ``max_bytes`` may be transferred (the projection-window budget);
        remaining candidates wait for the next opportunity, exactly like
        the deferred copies of the paper's instruction queue.

        The keyword hints let a caller that already computed them (the
        engine does, for all layers at once, in a few matrix ops per
        token) skip the per-layer reductions: ``coldest_state`` is
        ``states[resident].min()`` (anything above the maximum state when
        nothing is resident), ``wanted_row`` the ``(states >
        hot_threshold) & ~resident`` mask, ``hottest_wanted`` /
        ``min_wanted_bytes`` the max state and min byte size over that
        mask.
        """
        resident = self.resident[layer]
        if states.shape != resident.shape:
            raise ValueError("states mask has wrong shape")
        result = AdjustmentResult()
        budget = max_bytes if max_bytes is not None else np.inf

        if wanted_row is None:
            wanted_row = (states > hot_threshold) & ~resident
            if not wanted_row.any():
                return result
        if budget <= 0:
            # every group weighs at least one neuron's bytes, so a
            # non-positive budget admits nothing (the unguarded loop would
            # break on its first candidate with an empty result anyway)
            return result

        # Fast paths for the dominant steady-state outcomes — the same
        # stuck candidates re-present every token.  Both conditions force
        # the greedy loop to exit on its first probe with nothing moved,
        # independent of how argsort breaks state ties: if even the
        # smallest candidate exceeds the transfer budget, the first
        # (whichever it is) breaks immediately; and if no resident group
        # is colder than the hottest candidate, the eviction guard
        # refuses the very first victim for every candidate, so only
        # eviction-free admission could act — impossible when the
        # headroom cannot fit the smallest candidate either.
        group_bytes = self._group_bytes_list
        layer_used = self._layer_used[layer]
        if coldest_state is None or hottest_wanted is None \
                or min_wanted_bytes is None:
            wanted_idx = np.flatnonzero(wanted_row)
            if wanted_idx.size == 0:
                return result
            if coldest_state is None:
                coldest_state = (int(states[resident].min())
                                 if resident.any() else STATE_MAX + 1)
            if hottest_wanted is None:
                hottest_wanted = int(states[wanted_idx].max())
            if min_wanted_bytes is None:
                min_wanted_bytes = int(
                    self.layout.group_bytes[wanted_idx].min()
                )
        if min_wanted_bytes > budget:
            return result
        free0 = min(
            self.gpu_budget_bytes - self.resident_bytes,
            self.layer_budget[layer] - layer_used,
        )
        if coldest_state >= hottest_wanted and free0 < min_wanted_bytes:
            return result

        # hottest candidates first
        wanted = np.flatnonzero(wanted_row)
        wanted = wanted[np.argsort(states[wanted])[::-1]]

        # eviction candidates: coldest residents first.  The candidate set
        # is the residency at entry (groups admitted *during* this call are
        # never eviction victims), but the sort is done lazily because most
        # adjustments that get this far have headroom and never evict.
        entry_resident = resident.copy()
        evictable: np.ndarray | None = None
        evict_pos = 0
        for idx in wanted:
            b = group_bytes[idx]
            if b > budget:
                break
            free = min(
                self.gpu_budget_bytes - self.resident_bytes,
                self.layer_budget[layer] - layer_used,
            )
            if free < b and evictable is None:
                evictable = np.flatnonzero(entry_resident)
                evictable = evictable[np.argsort(states[evictable])]
            # evict until the newcomer fits; never evict hotter than it
            while (free < b and evictable is not None
                   and evict_pos < evictable.size):
                victim = evictable[evict_pos]
                if states[victim] >= states[idx]:
                    break
                resident[victim] = False
                freed = group_bytes[victim]
                self.resident_bytes -= freed
                layer_used -= freed
                free += freed
                result.swapped_out += 1
                evict_pos += 1
            if free < b:
                break
            resident[idx] = True
            self.resident_bytes += b
            layer_used += b
            budget -= b
            result.swapped_in += 1
            result.bytes_in += b
        self._layer_used[layer] = layer_used
        if result.swapped_in or result.swapped_out:
            self.version += 1
        return result

    # ------------------------------------------------------------------
    def free_bytes(self, layer: int) -> int:
        """Headroom a swap-in to ``layer`` may use without evicting.

        The tighter of the global GPU budget slack and the layer's frozen
        residency ceiling — the same quantity :meth:`adjust` computes
        internally, exposed so the engine can skip no-op adjust calls.
        """
        return min(
            self.gpu_budget_bytes - self.resident_bytes,
            self.layer_budget[layer] - self._layer_used[layer],
        )

    def residency_bytes(self, layer: int) -> int:
        return int(self.layout.group_bytes[self.resident[layer]].sum())

    def check_invariants(self) -> None:
        """Internal consistency: byte counter matches the masks and the
        budget holds (used by property tests)."""
        total = sum(self.residency_bytes(l) for l in range(len(self.resident)))
        if total != self.resident_bytes:
            raise AssertionError("resident byte counter out of sync")
        if total > self.gpu_budget_bytes:
            raise AssertionError("GPU budget exceeded")
