"""Hermes core: predictor, offline partition, online mapping, scheduling,
and the end-to-end inference engine."""

from .predictor import (
    ActivationPredictor,
    CorrelationTable,
    PredictionStats,
    PredictorConfig,
    STATE_BITS,
    STATE_MAX,
)
from .partition import (
    OfflinePartition,
    PartitionCosts,
    assign_dimms,
    solve_partition,
)
from .mapper import AdjustmentResult, NeuronMapper
from .scheduling import RemapResult, WindowScheduler
from .result import BREAKDOWN_KEYS, RunResult
from .engine import (
    HermesConfig,
    HermesSession,
    HermesSystem,
    SpanCost,
    StepCost,
    batch_union_factor,
)

__all__ = [
    "ActivationPredictor",
    "PredictorConfig",
    "PredictionStats",
    "CorrelationTable",
    "STATE_MAX",
    "STATE_BITS",
    "OfflinePartition",
    "PartitionCosts",
    "solve_partition",
    "assign_dimms",
    "NeuronMapper",
    "AdjustmentResult",
    "WindowScheduler",
    "RemapResult",
    "RunResult",
    "BREAKDOWN_KEYS",
    "HermesConfig",
    "HermesSession",
    "HermesSystem",
    "SpanCost",
    "StepCost",
    "batch_union_factor",
]
