"""The Hermes end-to-end inference engine (paper §IV).

Simulates token generation on the heterogeneous GPU + NDP-DIMM machine by
actually *executing* the Hermes control plane against an activation trace:
the offline partitioner places neurons, the lightweight predictor forecasts
each layer's activations, the neuron mapper swaps hot/cold residency over
PCIe, and the window scheduler rebalances cold neurons over the DIMM-links.
Per-(token, layer) latencies come from the hardware models; nothing about
the schedule is assumed in closed form, which is what lets the Fig. 13
ablations fall out of flipping config switches.

Workflow per transformer layer (paper Fig. 6a):

1. **QKV generation** — sparse, split between GPU (resident predicted
   groups) and NDP-DIMMs (the rest); GPU results ship to the DIMMs
   (2 x Tsync, Eq. 3) where a merge kernel combines them.
2. **Attention** — on the NDP-DIMMs over the sharded KV cache.
3. **Projection** — dense, GPU-only; the idle-DIMM window hides hot/cold
   swaps (PCIe) and cold remaps (DIMM-links); overflow is charged.
4. **MLP** — sparse, split like QKV.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from ..hardware import Machine
from ..models import ModelSpec
from ..sim import overlap_two_stage
from ..sparsity import ActivationTrace, NeuronLayout
from .mapper import NeuronMapper
from .partition import OfflinePartition, PartitionCosts, solve_partition
from .predictor import STATE_MAX, ActivationPredictor, PredictorConfig
from .result import RunResult
from .scheduling import WindowScheduler

GIB = 2**30
_INT64_MAX = np.iinfo(np.int64).max


@dataclasses.dataclass(frozen=True)
class HermesConfig:
    """Feature switches and tunables; defaults are full Hermes."""

    partition_strategy: str = "greedy"  # 'greedy' | 'ilp' | 'random'
    online_adjustment: bool = True
    token_prediction: bool = True
    layer_prediction: bool = True
    window_scheduling: bool = True
    window: int = 5
    hot_threshold: int = 10
    #: GPU memory reserved for activations/workspace
    gpu_reserve_bytes: int = 1 * GIB
    #: oracle mode: ground-truth prediction + decode-profiled partition
    oracle: bool = False

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.gpu_reserve_bytes < 0:
            raise ValueError("gpu_reserve_bytes must be non-negative")


def batch_union_factor(freq: np.ndarray, batch: int) -> float:
    """Inflation of the activated set when a batch's activations union.

    Each batch element activates its own neuron subset; the weight traffic
    of a batched sparse GEMV covers the union.  For per-group frequency
    ``p`` the union probability is ``1 - (1-p)^batch``.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if batch == 1:
        return 1.0
    p = np.clip(freq, 0.0, 1.0)
    base = p.sum()
    if base <= 0:
        return 1.0
    return float((1.0 - (1.0 - p) ** batch).sum() / base)


@dataclasses.dataclass(frozen=True)
class StepCost:
    """Cost of one decode step, split by the device that was busy.

    ``seconds`` is the critical-path latency of the step; ``gpu_busy`` and
    ``dimm_busy`` are the per-device busy times inside it (they overlap, so
    they do not sum to ``seconds``).  The serving layer integrates these
    into utilization metrics.

    ``swap_bytes`` and ``resident_bytes`` expose the online residency
    control plane to telemetry: the hot/cold bytes pulled onto the GPU
    during this step and the GPU-resident sparse-weight bytes at its
    end.  Backends without an online residency control plane (dense,
    dejavu) leave both at 0.
    """

    seconds: float
    gpu_busy: float
    dimm_busy: float
    swap_bytes: int = 0
    resident_bytes: int = 0


@dataclasses.dataclass(frozen=True)
class SpanCost:
    """Per-step costs of one fused run of consecutive decode steps.

    Array element ``i`` is exactly what the ``i``-th sequential
    :meth:`HermesSession.decode_step` call of the span would have
    returned.  ``end_times`` holds the absolute completion time of each
    step: the span's ``start_time`` plus the *sequentially* accumulated
    step seconds — the same float arithmetic an event calendar produces
    stepping one token at a time, so macro-stepped simulators can
    back-fill per-token timestamps bit-for-bit.
    """

    seconds: np.ndarray
    gpu_busy: np.ndarray
    dimm_busy: np.ndarray
    end_times: np.ndarray
    #: per-step telemetry counters mirroring :class:`StepCost`'s
    #: ``swap_bytes`` / ``resident_bytes``; ``None`` when the producing
    #: backend has no online residency control plane
    swap_bytes: np.ndarray | None = None
    resident_bytes: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.seconds)

    def step(self, i: int) -> StepCost:
        """The ``i``-th step's cost in scalar :class:`StepCost` form."""
        return StepCost(
            seconds=float(self.seconds[i]),
            gpu_busy=float(self.gpu_busy[i]),
            dimm_busy=float(self.dimm_busy[i]),
            swap_bytes=(
                int(self.swap_bytes[i]) if self.swap_bytes is not None else 0
            ),
            resident_bytes=(
                int(self.resident_bytes[i])
                if self.resident_bytes is not None
                else 0
            ),
        )


class HermesSystem:
    """Hermes on one machine for one model."""

    name = "Hermes"

    def __init__(
        self,
        machine: Machine,
        model: ModelSpec,
        config: HermesConfig | None = None,
    ) -> None:
        self.machine = machine
        self.model = model
        self.config = config or HermesConfig()
        required = model.total_weight_bytes - model.embedding_bytes
        if not machine.fits_on_dimms(required):
            raise ValueError(
                f"{model.name} needs {required / GIB:.0f} GiB of DIMM "
                "capacity; the pool has "
                f"{machine.dimm_capacity_total / GIB:.0f} GiB")

    # ------------------------------------------------------------------
    @property
    def gpu_static_bytes(self) -> int:
        """GPU memory pinned by dense weights: projections + embeddings."""
        return (self.model.dense_bytes_per_layer * self.model.num_layers
                + self.model.embedding_bytes)

    @property
    def gpu_hot_budget(self) -> int:
        """GPU bytes available for the hot-neuron region."""
        budget = (self.machine.gpu.memory_bytes - self.gpu_static_bytes
                  - self.config.gpu_reserve_bytes)
        if budget <= 0:
            raise ValueError(
                f"{self.machine.gpu.name} cannot hold the dense weights of "
                f"{self.model.name}")
        return budget

    def partition_costs(
        self, layout: NeuronLayout, batch: int = 1
    ) -> PartitionCosts:
        """Per-byte execution rates (Eq. 4-5), batch-aware.

        Batching multiplies MACs but not weight traffic, so each side's
        rate is the slower of its stream path and its compute path; the
        NDP cores go compute-bound around batch 2-3, which shifts the
        optimal partition toward the GPU.
        """
        machine = self.machine
        gpu = machine.gpu
        gpu_rate = max(
            1.0 / gpu.effective_bandwidth, batch / gpu.effective_flops
        )
        core = machine.dimm.core
        dimm_rate = max(
            1.0 / machine.dimm.internal_bandwidth,
            batch / (2.0 * core.gemv.macs_per_second),
        )
        return PartitionCosts(
            gpu_seconds_per_byte=gpu_rate,
            dimm_seconds_per_byte=dimm_rate,
            sync_seconds=machine.sync_latency,
            num_dimms=machine.num_dimms,
            gpu_budget_bytes=self.gpu_hot_budget,
            dimm_capacity_bytes=machine.dimm.capacity_bytes,
        )

    # ------------------------------------------------------------------
    def _profiled_frequencies(self, trace: ActivationTrace
                              ) -> list[np.ndarray]:
        """Frequencies driving the offline partition.

        Hermes profiles offline (C4/Pile); the prefill window plays that
        role here.  Oracle mode peeks at the decode window instead — the
        theoretically-optimal partition of §III-B.
        """
        if self.config.oracle:
            window = slice(trace.prompt_len, trace.n_tokens)
            return [trace.frequencies(l, tokens=window)
                    for l in range(trace.num_layers)]
        return [trace.prefill_frequencies(l) for l in range(trace.num_layers)]

    def _prefill_time(
        self, layout: NeuronLayout, prompt_len: int, batch: int
    ) -> float:
        """Prompting stage: GPU with zig-zag weight streaming (§IV-A2).

        Layer weights stream over PCIe while the previous layer computes —
        the FlexGen-style overlap the paper adopts for prefill.
        """
        model = self.model
        gpu = self.machine.gpu
        transfer = []
        compute = []
        resident_fraction = min(
            1.0, self.machine.gpu.memory_bytes / model.total_weight_bytes
        )
        for _ in range(model.num_layers):
            layer_bytes = model.layer_bytes
            stream_bytes = layer_bytes * (1.0 - resident_fraction)
            transfer.append(self.machine.pcie.transfer_time(stream_bytes))
            compute.append(gpu.prefill_time(layer_bytes, prompt_len, batch))
        return overlap_two_stage(transfer, compute)

    # ------------------------------------------------------------------
    def session(self, trace: ActivationTrace, batch: int = 1, *,
                wrap: bool = False,
                partition: OfflinePartition | None = None
                ) -> "HermesSession":
        """Open a resumable stepped-execution session over ``trace``.

        The session runs the offline stage eagerly and then exposes
        :meth:`HermesSession.prefill` and :meth:`HermesSession.decode_step`
        so callers — notably :mod:`repro.serving` — can interleave token
        generation with other simulated work and vary the batch per step.
        ``wrap`` lets the token cursor cycle over the decode region so a
        session can serve more steps than the trace records.  ``partition``
        reuses an already-solved offline partition (it is deterministic in
        (trace, batch, config), so sessions over the same inputs — e.g.
        the machines of a serving cluster — need not re-solve it).
        """
        return HermesSession(
            self, trace, batch, wrap=wrap, partition=partition
        )

    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        """Simulate one full prefill + decode pass over ``trace``."""
        session = self.session(trace, batch)
        session.prefill()
        for _ in range(trace.n_decode_tokens):
            session.decode_step()
        return session.finish()


class HermesSession:
    """Resumable per-token execution of Hermes over one trace.

    Owns the online control-plane state (mapper residency, predictor state
    table, window scheduler) between steps, which is exactly what a serving
    layer needs: requests join and leave a running batch, so each decode
    step may carry a different effective batch size and context length while
    the hot/cold placement keeps evolving underneath.
    """

    def __init__(
        self,
        system: HermesSystem,
        trace: ActivationTrace,
        batch: int = 1,
        *,
        wrap: bool = False,
        partition: OfflinePartition | None = None,
    ) -> None:
        if trace.layout.model.name != system.model.name:
            raise ValueError("trace was generated for a different model")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.system = system
        self.trace = trace
        self.batch = batch
        self.wrap = wrap
        cfg = system.config
        self.layout = trace.layout
        machine = system.machine

        self.result = RunResult(
            system=system.name,
            model=system.model.name,
            batch=batch,
            prefill_time=1e-12,
            decode_time=1e-12,
            n_decode_tokens=max(1, trace.n_decode_tokens),
        )

        # ---------------- offline stage ----------------
        self.freqs = system._profiled_frequencies(trace)
        self.costs = system.partition_costs(self.layout, batch)
        # The partition optimises *realised* per-step load, and batching
        # unions activations across the batch — a rarely-active group's
        # probability rises superlinearly — so the solver sees the
        # union-inflated probabilities rather than the per-sequence ones.
        if partition is not None:
            self.partition = partition
        else:
            if batch > 1:
                partition_freqs = [
                    1.0 - (1.0 - f) ** batch for f in self.freqs
                ]
            else:
                partition_freqs = self.freqs
            self.partition = solve_partition(
                partition_freqs,
                self.layout,
                self.costs,
                strategy=cfg.partition_strategy,
                seed=trace.seed,
                balanced_dimms=cfg.partition_strategy != "random",
            )
        self.mapper = NeuronMapper(self.layout, self.costs.gpu_budget_bytes)
        self.mapper.initialize(self.partition)
        self.predictor = ActivationPredictor(self.layout, PredictorConfig(
            use_token_prediction=cfg.token_prediction,
            use_layer_prediction=cfg.layer_prediction,
            hot_threshold=cfg.hot_threshold,
        ))
        self.predictor.initialize(trace)
        self.scheduler = WindowScheduler(
            self.layout, machine.num_dimms, window=cfg.window
        )

        self.hot_bytes = self.partition.gpu_bytes(self.layout)
        self._run_bytes = float(self.layout.group_bytes.mean())
        self._attn_heads_per_dimm = -(
            -system.model.num_heads // machine.num_dimms
        )
        # Batch-union factors, filled lazily one batch column at a time
        # into a dense (num_layers, max_batch_seen) array.  Bounded by the
        # largest batch ever requested — unlike a per-(layer, batch) dict,
        # which grows without limit on long serving runs whose batch varies
        # per step.
        self._union_factors = np.ones((system.model.num_layers, 1))

        # ---- decode fast-path invariants (hoisted out of decode_step) ----
        layout = self.layout
        #: (groups, 2) matrix whose column b holds the weight bytes of FC
        #: block b (attn / mlp) and zero elsewhere — one matmul then sums
        #: both blocks' GPU-side bytes for every layer at once
        num_layers = system.model.num_layers
        n_dimms = machine.num_dimms
        self._gpu_block_matrix = np.zeros(
            (layout.groups_per_layer, 2), dtype=np.int64
        )
        for b, block in enumerate((layout.attn_slice, layout.mlp_slice)):
            self._gpu_block_matrix[block, b] = layout.group_bytes[block]
        #: flat bin key offsets mapping (layer, block, dimm) to
        #: l*n_dimms + is_mlp*num_layers*n_dimms + dimm for the one-shot
        #: segmented bincount over the whole token
        self._key_offsets = (np.arange(num_layers)[:, None] * n_dimms
                             + layout.is_mlp * (num_layers * n_dimms))
        self._fc_bins = 2 * num_layers * n_dimms
        self._two_sync = 2 * machine.sync_latency
        #: per-token KV traffic divisor: bytes = _kv_token_bytes * ctx * batch
        self._kv_token_bytes = 2 * system.model.kv_dim * 2
        #: scattered-cold-neuron stream bandwidth (invariant per session)
        self._gemv_bandwidth = machine.dimm.effective_stream_bandwidth(
            self._run_bytes)
        #: constant per-layer costs, memoised per effective batch size
        self._proj_time_cache: dict[int, float] = {}
        self._merge_time_cache: dict[int, float] = {}
        self._pred_overhead = self.predictor.predictor_overhead_seconds(0)
        #: per-batch (column, column[:, None], doubled column[:, None])
        #: union-factor views, cached so the decode loop never re-shapes
        self._union_views_cache: dict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        #: flat (layer, block, dimm) bin keys; valid until a window
        #: rebalance actually moves a group between DIMMs (tracked via
        #: the shared partition's ``remap_version``)
        self._fc_keys_cache: np.ndarray | None = None
        self._fc_keys_version = -1
        #: per-layer bin-key offsets and cached keys for the window
        #: scheduler's load bincount (same remap-version invalidation)
        self._rb_offsets = (np.arange(system.model.num_layers)[:, None]
                            * machine.num_dimms)
        self._rb_keys_cache: np.ndarray | None = None
        self._rb_keys_version = -1
        #: (caps, caps[:, None]) per-layer resident byte caps; valid
        #: until the mapper's residency actually changes (tracked via
        #: ``mapper.version``)
        self._resident_caps: tuple[np.ndarray, np.ndarray] | None = None
        self._resident_caps_version = -1
        #: latency of the most recent decode step — macro-stepping uses
        #: it to size time-budgeted chunks (an estimate only; never
        #: affects simulated results)
        self._last_step_seconds = 0.0
        #: session-invariant hot-loop bindings, packed so the per-call
        #: prologue of :meth:`_single_step` is one tuple unpack instead
        #: of dozens of attribute chains
        self._hot_invariants = (
            machine.gpu, machine.dimm, machine.num_dimms,
            layout.group_bytes, self._two_sync,
            machine.pcie.effective_bandwidth,
            cfg.oracle, cfg.online_adjustment and not cfg.oracle,
            cfg.window_scheduling, cfg.hot_threshold,
            system.model.num_layers, self._kv_token_bytes,
            self._attn_heads_per_dimm, self._gemv_bandwidth,
            self._gpu_block_matrix, self._fc_bins,
            trace.prompt_len, trace.n_decode_tokens,
        )

        self.steps_done = 0
        self.decode_time = 0.0
        self._remap_bytes_total = 0
        self._remap_groups_total = 0
        self._remap_link_time = 0.0
        self._swap_bytes_total = 0

    # ------------------------------------------------------------------
    def union_factor(self, layer: int, batch: int) -> float:
        """Batch-union inflation for one layer, cached per batch size."""
        return float(self._union_column(batch)[layer])

    @property
    def last_step_seconds(self) -> float:
        """Latency of the session's most recent decode step (0 if none).

        A sizing hint for macro-stepped callers bounding a span by
        simulation time; simulated outputs never depend on it.
        """
        return self._last_step_seconds

    def union_factors(self, batch: int) -> np.ndarray:
        """Per-layer batch-union factors at ``batch`` (cached, read-only).

        One array op over this column replaces per-layer
        :meth:`union_factor` loops in callers (e.g. the serving
        executor's mean-union batching cap).
        """
        return self._union_column(batch)

    def _union_views(
        self, batch: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(column, column[:, None], doubled column[:, None]) at ``batch``.

        The reshaped views feed the decode loop's FC byte math every
        step; their values are immutable per batch, so they are built
        once per batch size ever seen.
        """
        views = self._union_views_cache.get(batch)
        if views is None:
            col = self._union_column(batch)
            views = (col, col[:, None], np.concatenate((col, col))[:, None])
            self._union_views_cache[batch] = views
        return views

    def _fc_keys(self) -> np.ndarray:
        """Raveled FC bincount keys, rebuilt only after a DIMM remap.

        Staleness is tracked through the partition's ``remap_version`` —
        shared with every sibling session over the same partition, so a
        remap performed by another machine's engine invalidates this
        session's cache too.
        """
        partition = self.partition
        if (self._fc_keys_cache is None
                or self._fc_keys_version != partition.remap_version):
            self._fc_keys_cache = (partition.dimm_of_matrix
                                   + self._key_offsets).ravel()
            self._fc_keys_version = partition.remap_version
        return self._fc_keys_cache

    def _rebalance_keys(self) -> np.ndarray:
        """(layers, groups) scheduler bin keys, cached like the FC keys."""
        partition = self.partition
        if (self._rb_keys_cache is None
                or self._rb_keys_version != partition.remap_version):
            self._rb_keys_cache = (partition.dimm_of_matrix + self._rb_offsets)
            self._rb_keys_version = partition.remap_version
        return self._rb_keys_cache

    def _union_column(self, batch: int) -> np.ndarray:
        """Per-layer union factors at ``batch``, from the lazy 2-D cache."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        have = self._union_factors.shape[1]
        if batch > have:
            num_layers = self._union_factors.shape[0]
            grown = np.empty((num_layers, batch))
            grown[:, :have] = self._union_factors
            for b in range(have + 1, batch + 1):
                for l in range(num_layers):
                    grown[l, b - 1] = batch_union_factor(self.freqs[l], b)
            self._union_factors = grown
        return self._union_factors[:, batch - 1]

    def prefill_cost(
        self,
        prompt_len: int | None = None,
        batch: int | None = None,
        *,
        reload_hot: bool = False,
    ) -> tuple[float, float]:
        """Prompting-stage cost split as (GPU compute, PCIe transfer).

        ``reload_hot`` additionally charges re-loading the non-resident part
        of the hot set over PCIe — the cold-start path ``run`` takes.  A
        serving machine keeps the hot set resident between requests, so a
        joining request pays only prompt compute plus its KV-cache push.
        Pure cost query; no session state changes.
        """
        system = self.system
        machine = system.machine
        model = system.model
        if prompt_len is None:
            prompt_len = self.trace.prompt_len
        batch = self.batch if batch is None else batch
        prefill = system._prefill_time(self.layout, prompt_len, batch)
        # Hot neurons loaded back to GPU + prompt KV cache pushed to DIMMs.
        # Prefill already streamed every layer through GPU memory, so the
        # resident fraction of the hot set is simply *retained* rather than
        # re-transferred; only the remainder crosses PCIe again.
        resident_fraction = min(
            1.0, machine.gpu.memory_bytes / model.total_weight_bytes)
        reload_bytes = (
            self.hot_bytes * (1.0 - resident_fraction) if reload_hot else 0.0
        )
        kv_prompt = model.kv_bytes_total(prompt_len, batch)
        return prefill, machine.pcie.transfer_time(reload_bytes + kv_prompt)

    def prefill_seconds(
        self,
        prompt_len: int | None = None,
        batch: int | None = None,
        *,
        reload_hot: bool = False,
    ) -> float:
        """Total prompting-stage latency (see :meth:`prefill_cost`)."""
        compute, transfer = self.prefill_cost(
            prompt_len, batch, reload_hot=reload_hot
        )
        return compute + transfer

    def prefill(self) -> float:
        """Run the prompting stage; records it into :attr:`result`."""
        compute, load_time = self.prefill_cost(reload_hot=True)
        self.result.add("prefill", compute)
        self.result.add("communication", load_time)
        self.result.prefill_time = compute + load_time
        return self.result.prefill_time

    # ------------------------------------------------------------------
    def _maybe_adjust(self, layer: int, states_row, budget: int,
                      wanted_matrix, coldest: int, hottest_wanted: int,
                      min_wanted_bytes: int) -> int:
        """One layer's hot/cold adjustment behind its no-op fast paths.

        The gate mirrors :meth:`NeuronMapper.adjust`'s early returns
        exactly (budget exhausted; smallest candidate over budget; no
        colder resident and no headroom), so a skipped call moves no
        bytes and leaves the projection-window budget untouched — the
        single shared spelling every decode path uses.  Returns the
        bytes swapped in (0 when gated or when nothing moved).
        """
        mapper = self.mapper
        if (budget <= 0
                or min_wanted_bytes > budget
                or (coldest >= hottest_wanted
                    and mapper.free_bytes(layer) < min_wanted_bytes)):
            return 0
        adjust = mapper.adjust(
            layer,
            states_row,
            hot_threshold=self.system.config.hot_threshold,
            max_bytes=budget,
            coldest_state=coldest,
            wanted_row=wanted_matrix[layer],
            hottest_wanted=hottest_wanted,
            min_wanted_bytes=min_wanted_bytes,
        )
        self._swap_bytes_total += adjust.bytes_in
        return adjust.bytes_in

    def decode_step(
        self, batch: int | None = None, context: int | None = None
    ) -> StepCost:
        """Generate one token; returns the step's critical-path cost.

        ``batch`` overrides the session batch for this step (continuous
        batching changes it as requests join/leave); ``context`` overrides
        the attention context length (for a mixed batch, the mean context —
        attention cost is linear in total KV bytes, so the mean is exact).
        """
        batch = self.batch if batch is None else batch
        if batch < 1:
            raise ValueError("batch must be >= 1")
        n_decode = self.trace.n_decode_tokens
        if n_decode == 0:
            raise RuntimeError(
                "trace has no decode region " "(generated with decode_len=0)"
            )
        if self.steps_done >= n_decode and not self.wrap:
            raise RuntimeError("trace decode tokens exhausted "
                               "(open the session with wrap=True)")
        if context is None:
            context = self.trace.prompt_len + self.steps_done + 1
        swap_before = self._swap_bytes_total
        seconds, gpu_busy, dimm_busy = self._single_step(batch, context)
        return StepCost(
            seconds=seconds,
            gpu_busy=gpu_busy,
            dimm_busy=dimm_busy,
            swap_bytes=self._swap_bytes_total - swap_before,
            resident_bytes=self.mapper.resident_bytes,
        )

    def _single_step(
        self, batch: int, context: int
    ) -> tuple[float, float, float]:
        """One decode token through the per-token control-plane path.

        The validated single-token core shared by :meth:`decode_step`
        and one-step macro spans: per-token predictor entry points
        (``predict_all`` / ``observe_all``), scalar attention, and the
        session's cached work views.  Returns ``(seconds, gpu_busy,
        dimm_busy)``; the caller handles validation and packaging.
        """
        (gpu, dimm, n_dimms, group_bytes, two_sync, pcie_bandwidth,
         oracle, online, window_scheduling, hot_threshold, num_layers,
         kv_token, heads_per_dimm, gemv_bandwidth, block_matrix,
         fc_bins, prompt_len, n_decode) = self._hot_invariants
        trace = self.trace
        result = self.result
        predictor = self.predictor
        mapper = self.mapper
        partition = self.partition
        scheduler = self.scheduler
        union_col, union_col2d, union_twice = self._union_views(batch)
        t_proj = self._proj_time_cache.get(batch)
        if t_proj is None:
            t_proj = gpu.matmul_time(
                self.system.model.dense_bytes_per_layer, batch
            )
            self._proj_time_cache[batch] = t_proj
        t_merge = self._merge_time_cache.get(batch)
        if t_merge is None:
            t_merge = dimm.core.merge_time(
                self.system.model.hidden_size, batch
            )
            self._merge_time_cache[batch] = t_merge
        t_pred = self._pred_overhead

        t = prompt_len + self.steps_done % n_decode
        kv_bytes = kv_token * context * batch
        t_attn = dimm.attention_time(
            kv_bytes / n_dimms, context, heads_per_dimm, batch
        )
        # ---- vectorized control plane: all layers of the token at once
        # (see decode_steps for the dependence argument)
        actuals = trace.active_matrix(t)
        if oracle:
            predicted_all = actuals
        else:
            predicted_all = predictor.predict_all(actuals)
        resident_all = mapper.resident_matrix
        on_gpu_all = predicted_all & resident_all
        on_dimm_all = (
            (predicted_all & ~resident_all) | (actuals & ~predicted_all)
        )
        if self._resident_caps_version != mapper.version:
            caps = resident_all @ group_bytes
            self._resident_caps = (caps, caps[:, None])
            self._resident_caps_version = mapper.version
        resident_caps2d = self._resident_caps[1]
        # ---- sparse FC blocks: QKV then MLP ----
        gpu_sums = on_gpu_all @ block_matrix
        gpu_bytes = np.minimum(gpu_sums * union_col2d, resident_caps2d)
        weights = on_dimm_all * group_bytes
        dimm_bytes = np.bincount(
            self._fc_keys(), weights=weights.ravel(),
            minlength=fc_bins,
        ).reshape(2 * num_layers, n_dimms) * union_twice
        t_gpu = gpu.matmul_time_batch(
            gpu_bytes, batch, scattered=True, check=False
        )
        t_dimm = dimm.core.gemv_time_batch(
            dimm_bytes, gemv_bandwidth, batch, check=False).max(axis=1)
        tg_q, tg_m = t_gpu[:, 0], t_gpu[:, 1]
        td_q = t_dimm[:num_layers]
        td_m = t_dimm[num_layers:]
        fc_times = (np.maximum(tg_q + two_sync, td_q)
                    + np.maximum(tg_m + two_sync, td_m)).tolist()
        tg_qkv, tg_mlp = tg_q.tolist(), tg_m.tolist()
        td_qkv, td_mlp = td_q.tolist(), td_m.tolist()
        if online:
            state_matrix = predictor.state_matrix
            wanted_matrix = ((state_matrix > hot_threshold) & ~resident_all)
            adjust_rows = wanted_matrix.any(axis=1).tolist()
            if True in adjust_rows:
                coldest = np.where(resident_all, state_matrix,
                                   STATE_MAX + 1).min(axis=1).tolist()
                hottest_wanted = np.where(wanted_matrix, state_matrix,
                                          -1).max(axis=1).tolist()
                min_wanted_bytes = np.where(
                    wanted_matrix, group_bytes,
                    _INT64_MAX).min(axis=1).tolist()
        breakdown = result.breakdown
        bd_fc = breakdown.get("fc", 0.0)
        bd_attn = breakdown.get("attention", 0.0)
        bd_proj = breakdown.get("projection", 0.0)
        bd_others = breakdown.get("others", 0.0)
        bd_pred = breakdown.get("predictor", 0.0)
        token_time = 0.0
        gpu_busy = 0.0
        dimm_busy = 0.0
        proj_window_pcie = 0.0
        states = predictor.states
        for l in range(num_layers):
            fc_time = fc_times[l]
            bd_fc += fc_time
            gpu_busy += tg_qkv[l]
            gpu_busy += tg_mlp[l]
            dimm_busy += td_qkv[l]
            dimm_busy += td_mlp[l]
            bd_attn += t_attn
            dimm_busy += t_attn
            bd_proj += t_proj
            proj_window_pcie += t_proj
            gpu_busy += t_proj
            bd_others += t_merge
            bd_pred += t_pred
            dimm_busy += t_merge
            token_time += (fc_time + t_attn + t_proj + t_merge + t_pred)
            if online and adjust_rows[l]:
                bytes_in = self._maybe_adjust(
                    l,
                    states[l],
                    int(proj_window_pcie * pcie_bandwidth),
                    wanted_matrix,
                    coldest[l],
                    hottest_wanted[l],
                    min_wanted_bytes[l],
                )
                if bytes_in:
                    proj_window_pcie = max(
                        0.0, proj_window_pcie - bytes_in / pcie_bandwidth
                    )
        breakdown["fc"] = bd_fc
        breakdown["attention"] = bd_attn
        breakdown["projection"] = bd_proj
        breakdown["others"] = bd_others
        breakdown["predictor"] = bd_pred
        predictor.observe_all(actuals, predicted_all)
        scheduler.observe_token(actuals)
        if window_scheduling and scheduler.window_full:
            remap = scheduler.rebalance_all(
                partition.dimm_of_matrix,
                exclude=mapper.resident_matrix,
                keys=self._rebalance_keys(),
            )
            link_time = dimm.migration_time(remap.max_link_bytes)
            overflow = max(0.0, link_time - proj_window_pcie)
            result.add("communication", overflow)
            token_time += overflow
            self._remap_bytes_total += remap.moved_bytes
            self._remap_groups_total += remap.moved_groups
            self._remap_link_time += link_time
            if remap.moved_groups:
                partition.remap_version += 1
        elif scheduler.window_full:
            scheduler.reset_window()
        self.steps_done += 1
        self.decode_time += token_time
        self._last_step_seconds = token_time
        return token_time, gpu_busy, dimm_busy

    def decode_steps(
        self,
        batch: int | None = None,
        contexts: typing.Sequence[int] | None = None,
        *,
        max_steps: int | None = None,
        start_time: float = 0.0,
        until: float | None = None,
    ) -> SpanCost:
        """Run up to K consecutive decode iterations in one fused call.

        The macro-stepped serving loop's engine entry point: a span of
        steps with a *fixed batch* and per-step ``contexts`` (one entry
        per step; ``None`` falls back to the session's own trace cursor,
        with ``max_steps`` sizing the span).  The per-step costs, the
        control-plane evolution (predictor states, hot/cold residency,
        window remaps), and every :class:`RunResult` accumulator are
        bit-for-bit identical to K sequential :meth:`decode_step` calls.

        What makes the span cheaper than K calls:

        * the trace rows, correlation-table gathers, state-table
          snapshots, predicted masks and the attention ramp are computed
          for a whole chunk of steps in a few matrix ops — all of them
          depend only on immutable data plus the ground-truth activation
          stream, never on residency;
        * when no time budget can cut the span short, the hardware time
          math runs once over the whole chunk's byte loads (a second
          pass) instead of once per step — valid because the projection
          window that budgets hot/cold swaps depends only on the
          constant per-layer projection time, not on the FC times;
        * work views (union columns, FC bin keys, residency caps) are
          cached against explicit version counters and reused until the
          underlying state actually changes.

        ``until`` truncates the span on simulation time: starting from
        ``start_time``, steps run until the first one whose completion
        time reaches ``until`` (that step still completes — exactly
        where a step-at-a-time scheduler would next re-check its queue).
        The first step always runs, and each step's cost must be known
        before the next may start, so this mode times steps inline and
        sizes its chunks from the session's recent step time.  Returns a
        :class:`SpanCost` with per-step costs and absolute completion
        times of the steps actually executed.
        """
        batch = self.batch if batch is None else batch
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if contexts is not None:
            k = len(contexts)
        else:
            k = 1 if max_steps is None else max_steps
        if k < 1:
            raise ValueError("a span needs at least one step")
        trace = self.trace
        n_decode = trace.n_decode_tokens
        if n_decode == 0:
            raise RuntimeError(
                "trace has no decode region " "(generated with decode_len=0)"
            )
        if not self.wrap and self.steps_done + k > n_decode:
            raise RuntimeError("trace decode tokens exhausted "
                               "(open the session with wrap=True)")
        if k == 1:
            # one-step span (the macro scheduler's horizon was a single
            # token): skip straight to the per-token path — no stacked
            # setup, no chunk loop
            if contexts is not None:
                context = contexts[0]
            else:
                context = trace.prompt_len + self.steps_done + 1
            swap_before = self._swap_bytes_total
            seconds, gpu_busy, dimm_busy = self._single_step(batch, context)
            return SpanCost(
                seconds=np.array([seconds]),
                gpu_busy=np.array([gpu_busy]),
                dimm_busy=np.array([dimm_busy]),
                end_times=np.array([start_time + seconds]),
                swap_bytes=np.array(
                    [self._swap_bytes_total - swap_before], dtype=np.int64
                ),
                resident_bytes=np.array(
                    [self.mapper.resident_bytes], dtype=np.int64
                ),
            )
        system = self.system
        cfg = system.config
        machine = system.machine
        model = system.model
        gpu = machine.gpu
        dimm = machine.dimm
        n_dimms = machine.num_dimms
        layout = self.layout
        result = self.result
        predictor = self.predictor
        mapper = self.mapper
        partition = self.partition

        # session-invariant pieces of the per-layer work, hoisted
        group_bytes = layout.group_bytes
        two_sync = self._two_sync
        pcie_bandwidth = machine.pcie.effective_bandwidth
        union_col, union_col2d, union_twice = self._union_views(batch)
        oracle = cfg.oracle
        online = cfg.online_adjustment and not oracle
        window_scheduling = cfg.window_scheduling
        hot_threshold = cfg.hot_threshold
        num_layers = model.num_layers
        kv_token = self._kv_token_bytes
        heads_per_dimm = self._attn_heads_per_dimm
        gemv_bandwidth = self._gemv_bandwidth
        block_matrix = self._gpu_block_matrix
        fc_bins = self._fc_bins
        scheduler = self.scheduler

        # constant per-layer costs for this effective batch size
        t_proj = self._proj_time_cache.get(batch)
        if t_proj is None:
            t_proj = gpu.matmul_time(model.dense_bytes_per_layer, batch)
            self._proj_time_cache[batch] = t_proj
        t_merge = self._merge_time_cache.get(batch)
        if t_merge is None:
            t_merge = dimm.core.merge_time(model.hidden_size, batch)
            self._merge_time_cache[batch] = t_merge
        t_pred = self._pred_overhead

        # breakdown categories accumulate per layer, in the unvectorized
        # engine's order; direct dict writes skip result.add's per-call
        # validation (keys are literals, values engine-computed)
        breakdown = result.breakdown
        bd_fc = breakdown.get("fc", 0.0)
        bd_attn = breakdown.get("attention", 0.0)
        bd_proj = breakdown.get("projection", 0.0)
        bd_others = breakdown.get("others", 0.0)
        bd_pred = breakdown.get("predictor", 0.0)

        seconds_out: list[float] = []
        gpu_busy_out: list[float] = []
        dimm_busy_out: list[float] = []
        end_times: list[float] = []
        swap_out: list[int] = []
        resident_out: list[int] = []
        running = start_time
        prompt_len = trace.prompt_len
        inline_times = until is not None

        pos = 0
        stopped = False
        while pos < k and not stopped:
            # ---- chunk sizing ----
            # Without a time budget the whole remaining span is one
            # chunk.  With one, the span usually ends after a handful of
            # steps, so the chunk is sized from the session's recent
            # step time (any under-estimate just yields another chunk —
            # the scheduling outcome is length-independent).
            if until is None:
                span_len = k - pos
            else:
                est = self._last_step_seconds
                if est > 0.0:
                    need = int((until - running) / est) + 1
                    span_len = max(1, min(k - pos, need))
                else:
                    span_len = min(4, k - pos)

            if span_len == 1:
                # one-step span: the per-token path beats assembling
                # one-element stacks (identical outputs by construction)
                if contexts is not None:
                    context = contexts[pos]
                else:
                    context = prompt_len + self.steps_done + 1
                # _single_step accumulates through the breakdown dict, so
                # flush the local accumulators around the call
                breakdown["fc"] = bd_fc
                breakdown["attention"] = bd_attn
                breakdown["projection"] = bd_proj
                breakdown["others"] = bd_others
                breakdown["predictor"] = bd_pred
                swap_before = self._swap_bytes_total
                token_time, gpu_busy, dimm_busy = self._single_step(
                    batch, context
                )
                swap_out.append(self._swap_bytes_total - swap_before)
                resident_out.append(mapper.resident_bytes)
                bd_fc = breakdown["fc"]
                bd_attn = breakdown["attention"]
                bd_proj = breakdown["projection"]
                bd_others = breakdown["others"]
                bd_pred = breakdown["predictor"]
                running += token_time
                seconds_out.append(token_time)
                gpu_busy_out.append(gpu_busy)
                dimm_busy_out.append(dimm_busy)
                end_times.append(running)
                pos += 1
                if until is not None and running >= until:
                    stopped = True
                continue

            # ---- bulk precomputation for the chunk -------------------
            # Everything here depends only on the immutable trace (and
            # the deterministic state-table evolution it drives), so it
            # vectorizes across the chunk's steps exactly.
            base = self.steps_done
            first = base % n_decode
            if first + span_len <= n_decode:
                rows: "typing.Any" = slice(
                    prompt_len + first, prompt_len + first + span_len
                )
            else:  # wrap crossing: gather the cyclic row list
                rows = [
                    prompt_len + (base + j) % n_decode for j in range(span_len)
                ]
            if contexts is not None:
                ctx_list = list(contexts[pos:pos + span_len])
            else:
                ctx_list = [prompt_len + base + j + 1 for j in range(span_len)]
            actuals_span = np.ascontiguousarray(trace.active_span(rows))
            deltas_span = predictor.span_deltas(actuals_span)
            states_span = predictor.span_states(deltas_span)
            if oracle:
                pred_span = actuals_span
            else:
                scores_span = predictor.span_scores(actuals_span)
                pred_span = predictor.span_predictions(
                    scores_span, states_span
                )
            # predicted-or-activated union: every group some device must
            # compute this step (on_dimm = this minus the GPU's share)
            pa_span = pred_span | actuals_span
            if online:
                hot_span = states_span[:-1] > hot_threshold
            ctx_arr = np.asarray(ctx_list, dtype=np.int64)
            attn_list = dimm.attention_time_span(
                (kv_token * batch) * ctx_arr / n_dimms, ctx_arr,
                heads_per_dimm, batch).tolist()
            if not inline_times:
                gpu_bytes_span = np.empty((span_len, num_layers, 2))
                dimm_bytes_span = np.empty((span_len, 2 * num_layers, n_dimms))
                overflows: list[float] = [0.0] * span_len

            n_done = 0
            for i in range(span_len):
                # ---- control plane: all layers of the token at once --
                # Layer l's prediction depends only on pre-token
                # predictor state and the *ground-truth* activations of
                # layer l-1 (known from the trace), and the per-layer
                # residency/dimm maps are only mutated *after* the
                # layer's FC work — so the whole token's masks and byte
                # loads fold into a few matrix ops with bit-identical
                # results.  Shapes: (num_layers, groups) and
                # (num_layers, dimms).
                swap_before = self._swap_bytes_total
                actuals = actuals_span[i]
                predicted_all = pred_span[i]
                resident_all = mapper.resident_matrix
                on_gpu_all = predicted_all & resident_all
                # pa & ~on_gpu, as elementwise bool ">" (on_gpu is a
                # subset of pa) — one op for the NDP-side mask
                on_dimm_all = np.greater(pa_span[i], on_gpu_all)
                if self._resident_caps_version != mapper.version:
                    caps = resident_all @ group_bytes
                    self._resident_caps = (caps, caps[:, None])
                    self._resident_caps_version = mapper.version
                resident_caps2d = self._resident_caps[1]

                # ---- sparse FC blocks: QKV then MLP ----
                # The GPU computes the predicted resident groups; the
                # DIMMs compute the predicted cold groups plus every
                # *mispredicted but activated* group — false negatives
                # are discovered mid-layer and must run where the
                # weights live, so a low-recall predictor pays for its
                # misses in NDP time.  Both blocks of every layer are
                # costed in one shot: a single (groups, 2) matmul for
                # the GPU-side bytes and a single flat segmented
                # bincount keyed by (block, layer, dimm) for the
                # NDP-side loads (zero-weight entries leave the exact
                # per-bin sums unchanged).
                gpu_sums = on_gpu_all @ block_matrix
                gpu_bytes = np.minimum(gpu_sums * union_col2d, resident_caps2d)
                weights = on_dimm_all * group_bytes
                dimm_bytes = np.bincount(
                    self._fc_keys(), weights=weights.ravel(),
                    minlength=fc_bins,
                ).reshape(2 * num_layers, n_dimms) * union_twice

                if inline_times:
                    t_gpu = gpu.matmul_time_batch(
                        gpu_bytes, batch, scattered=True, check=False
                    )
                    t_dimm = dimm.core.gemv_time_batch(
                        dimm_bytes, gemv_bandwidth, batch,
                        check=False).max(axis=1)
                    tg_q, tg_m = t_gpu[:, 0], t_gpu[:, 1]
                    td_q = t_dimm[:num_layers]
                    td_m = t_dimm[num_layers:]
                    fc_times = (np.maximum(tg_q + two_sync, td_q)
                                + np.maximum(tg_m + two_sync,
                                             td_m)).tolist()
                    tg_qkv, tg_mlp = tg_q.tolist(), tg_m.tolist()
                    td_qkv, td_mlp = td_q.tolist(), td_m.tolist()
                    t_attn = attn_list[i]
                else:
                    gpu_bytes_span[i] = gpu_bytes
                    dimm_bytes_span[i] = dimm_bytes

                # per-layer ingredients of the online adjustment, in
                # matrix form: each layer's adjust only reads its own
                # pre-token row, so the candidate test and the
                # coldest-resident state fold into two reductions for
                # the whole token.  The reductions only feed adjust
                # calls, so a token with no candidate rows skips them.
                states_i = states_span[i]
                if online:
                    wanted_matrix = hot_span[i] & ~resident_all
                    adjust_rows = wanted_matrix.any(axis=1).tolist()
                    if True in adjust_rows:
                        coldest = np.where(
                            resident_all, states_i,
                            STATE_MAX + 1).min(axis=1).tolist()
                        hottest_wanted = np.where(
                            wanted_matrix, states_i,
                            -1).max(axis=1).tolist()
                        min_wanted_bytes = np.where(
                            wanted_matrix, group_bytes,
                            _INT64_MAX).min(axis=1).tolist()

                # ---- per-layer walk: busy accounting (inline mode)
                # and the online hot/cold adjustment inside the
                # projection window.  The window budget accumulates the
                # *constant* per-layer projection time, so the batched
                # mode can run it without knowing the FC times.
                proj_window_pcie = 0.0
                if inline_times:
                    token_time = 0.0
                    gpu_busy = 0.0
                    dimm_busy = 0.0
                    for l in range(num_layers):
                        fc_time = fc_times[l]
                        bd_fc += fc_time
                        # term-by-term in the unvectorized order
                        gpu_busy += tg_qkv[l]
                        gpu_busy += tg_mlp[l]
                        dimm_busy += td_qkv[l]
                        dimm_busy += td_mlp[l]
                        bd_attn += t_attn
                        dimm_busy += t_attn
                        bd_proj += t_proj
                        proj_window_pcie += t_proj
                        gpu_busy += t_proj
                        bd_others += t_merge
                        bd_pred += t_pred
                        dimm_busy += t_merge
                        token_time += (
                            fc_time + t_attn + t_proj + t_merge + t_pred
                        )
                        if online and adjust_rows[l]:
                            bytes_in = self._maybe_adjust(
                                l,
                                states_i[l],
                                int(proj_window_pcie * pcie_bandwidth),
                                wanted_matrix,
                                coldest[l],
                                hottest_wanted[l],
                                min_wanted_bytes[l],
                            )
                            if bytes_in:
                                proj_window_pcie = max(
                                    0.0, proj_window_pcie
                                    - bytes_in / pcie_bandwidth)
                else:
                    for l in range(num_layers):
                        proj_window_pcie += t_proj
                        if online and adjust_rows[l]:
                            bytes_in = self._maybe_adjust(
                                l,
                                states_i[l],
                                int(proj_window_pcie * pcie_bandwidth),
                                wanted_matrix,
                                coldest[l],
                                hottest_wanted[l],
                                min_wanted_bytes[l],
                            )
                            if bytes_in:
                                proj_window_pcie = max(
                                    0.0, proj_window_pcie
                                    - bytes_in / pcie_bandwidth)

                # ---- window-based cold remapping over the DIMM-links
                # (the token's state update itself was precomputed in
                # ``states_span`` and is committed at chunk end)
                scheduler.observe_token(actuals)
                overflow = 0.0
                if window_scheduling and scheduler.window_full:
                    remap = scheduler.rebalance_all(
                        partition.dimm_of_matrix,
                        exclude=mapper.resident_matrix,
                        keys=self._rebalance_keys(),
                    )
                    link_time = dimm.migration_time(remap.max_link_bytes)
                    # migrations overlap the token's projection windows
                    overflow = max(0.0, link_time - proj_window_pcie)
                    result.add("communication", overflow)
                    self._remap_bytes_total += remap.moved_bytes
                    self._remap_groups_total += remap.moved_groups
                    self._remap_link_time += link_time
                    if remap.moved_groups:
                        partition.remap_version += 1
                elif scheduler.window_full:
                    scheduler.reset_window()

                self.steps_done += 1
                n_done = i + 1
                swap_out.append(self._swap_bytes_total - swap_before)
                resident_out.append(mapper.resident_bytes)
                if inline_times:
                    token_time += overflow
                    self.decode_time += token_time
                    self._last_step_seconds = token_time
                    running += token_time
                    seconds_out.append(token_time)
                    gpu_busy_out.append(gpu_busy)
                    dimm_busy_out.append(dimm_busy)
                    end_times.append(running)
                    if running >= until:
                        stopped = True
                        break
                else:
                    overflows[i] = overflow

            # ---- commit the chunk's control-plane evolution ----
            pos += n_done
            predictor.sync_states(states_span[n_done])
            predictor.record_span(pred_span[:n_done], actuals_span[:n_done])

            if inline_times:
                continue

            # ---- batched time math: whole chunk in one pass ----------
            # Valid because nothing above needed a step's latency; the
            # scalar walk below replays the per-step accumulation in
            # exactly the unvectorized order.
            t_gpu_all = gpu.matmul_time_batch(gpu_bytes_span, batch,
                                              scattered=True, check=False)
            t_dimm_all = dimm.core.gemv_time_batch(
                dimm_bytes_span, gemv_bandwidth, batch,
                check=False).max(axis=2)
            tg_q_all = t_gpu_all[:, :, 0]
            tg_m_all = t_gpu_all[:, :, 1]
            td_q_all = t_dimm_all[:, :num_layers]
            td_m_all = t_dimm_all[:, num_layers:]
            fc_all = (np.maximum(tg_q_all + two_sync, td_q_all)
                      + np.maximum(tg_m_all + two_sync,
                                   td_m_all)).tolist()
            tgq_all = tg_q_all.tolist()
            tgm_all = tg_m_all.tolist()
            tdq_all = td_q_all.tolist()
            tdm_all = td_m_all.tolist()
            for i in range(n_done):
                fc_times = fc_all[i]
                tg_qkv = tgq_all[i]
                tg_mlp = tgm_all[i]
                td_qkv = tdq_all[i]
                td_mlp = tdm_all[i]
                t_attn = attn_list[i]
                token_time = 0.0
                gpu_busy = 0.0
                dimm_busy = 0.0
                for l in range(num_layers):
                    fc_time = fc_times[l]
                    bd_fc += fc_time
                    gpu_busy += tg_qkv[l]
                    gpu_busy += tg_mlp[l]
                    dimm_busy += td_qkv[l]
                    dimm_busy += td_mlp[l]
                    bd_attn += t_attn
                    dimm_busy += t_attn
                    bd_proj += t_proj
                    gpu_busy += t_proj
                    bd_others += t_merge
                    bd_pred += t_pred
                    dimm_busy += t_merge
                    token_time += (
                        fc_time + t_attn + t_proj + t_merge + t_pred
                    )
                token_time += overflows[i]
                self.decode_time += token_time
                self._last_step_seconds = token_time
                running += token_time
                seconds_out.append(token_time)
                gpu_busy_out.append(gpu_busy)
                dimm_busy_out.append(dimm_busy)
                end_times.append(running)

        breakdown["fc"] = bd_fc
        breakdown["attention"] = bd_attn
        breakdown["projection"] = bd_proj
        breakdown["others"] = bd_others
        breakdown["predictor"] = bd_pred
        return SpanCost(
            seconds=np.asarray(seconds_out),
            gpu_busy=np.asarray(gpu_busy_out),
            dimm_busy=np.asarray(dimm_busy_out),
            end_times=np.asarray(end_times),
            swap_bytes=np.asarray(swap_out, dtype=np.int64),
            resident_bytes=np.asarray(resident_out, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    def finish(self) -> RunResult:
        """Seal the session and return its :class:`RunResult`."""
        result = self.result
        result.decode_time = self.decode_time
        result.n_decode_tokens = max(1, self.steps_done)
        predictor = self.predictor
        result.metadata.update({
            "predictor_accuracy": (predictor.stats.accuracy
                                   if predictor.stats.total else None),
            "predictor_recall": (predictor.stats.recall
                                 if predictor.stats.total else None),
            "hot_bytes": self.hot_bytes,
            "gpu_hot_budget": self.costs.gpu_budget_bytes,
            "partition_strategy": self.partition.strategy,
            "remap_bytes": self._remap_bytes_total,
            "remap_groups": self._remap_groups_total,
            "remap_link_time": self._remap_link_time,
            "swap_bytes": self._swap_bytes_total,
        })
        return result
