"""The lightweight online activation predictor (paper §IV-C1).

Replaces the expensive per-layer MLP predictors of Deja Vu/PowerInfer
(2 GB of weights, 10-25 % of runtime for LLaMA-7B) with two tiny tables:

* **Neuron state table** — a 4-bit saturating counter per neuron, the
  branch-predictor trick applied to activation locality.  Initialised from
  prefill activation frequencies (16 linear stages); on every decode step an
  activated neuron's state rises by ``s_up`` (paper: 4) and an inactive
  neuron's falls by ``s_down`` (paper: 1).
* **Neuron correlation table** — the top-2 most correlated predecessor
  neurons in the previous layer, sampled offline from profiling data.

A neuron is predicted active when ``s1 + lambda * s2 > T`` with ``s1`` its
state, ``s2`` the number of its correlated predecessors that fired in the
previous layer this token, ``lambda = 6`` and ``T = 15`` (paper values).
Neurons with state above ``hot_threshold = 10`` are classified *hot* and
become candidates for GPU residency (§IV-C2).

For LLaMA-7B the state table is 232 KB (4 bits x 32 layers x 14.8 K
neurons), matching the paper's footprint claim; the table sizes are exposed
so tests can assert them.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..sparsity import ActivationTrace, NeuronLayout

STATE_MAX = 15
STATE_BITS = 4


@dataclasses.dataclass(frozen=True)
class PredictorConfig:
    """Hyper-parameters of the combined predictor (paper defaults)."""

    s_up: int = 4
    s_down: int = 1
    lam: float = 6.0
    threshold: float = 15.0
    hot_threshold: int = 10
    use_token_prediction: bool = True
    use_layer_prediction: bool = True

    def __post_init__(self) -> None:
        if self.s_up < 1 or self.s_down < 1:
            raise ValueError("state increments must be >= 1")
        if self.lam < 0:
            raise ValueError("lambda must be non-negative")
        if not 0 <= self.hot_threshold <= STATE_MAX:
            raise ValueError("hot_threshold must lie in [0, 15]")
        if not (self.use_token_prediction or self.use_layer_prediction):
            raise ValueError("at least one prediction mode must be enabled")


class CorrelationTable:
    """Top-2 correlated predecessor groups per layer (offline sampled)."""

    def __init__(self, parents: list[np.ndarray | None]) -> None:
        self.parents = parents

    @classmethod
    def from_profiling(cls, trace: ActivationTrace) -> "CorrelationTable":
        """The offline-profiled table (paper: sampled over 128 C4/Pile
        samples, §IV-B/C).

        A single trace cannot stand in for a large independent profiling
        corpus, so this uses the correlation structure the trace recorded
        at initialisation time — the information an ideal offline profiler
        would have extracted.  Crucially it is a *snapshot*: as neuron
        identities drift during decode the table goes stale, reproducing
        the paper's observation that the static sampled table limits
        layer-only prediction (§V-C).
        """
        parents = [None if p is None else p.copy() for p in trace.parents]
        return cls(parents)

    @classmethod
    def from_trace(
        cls, trace: ActivationTrace, *, tokens: slice | None = None
    ) -> "CorrelationTable":
        """Estimate parent pairs statistically from a profiling window.

        The data-driven alternative to :meth:`from_profiling` for traces
        without recorded structure.  Estimation quality is bounded by the
        window's effective sample count (token-wise similarity makes
        consecutive tokens highly dependent)."""
        if tokens is None:
            tokens = slice(0, max(2, trace.prompt_len))
        parents: list[np.ndarray | None] = [None]
        for l in range(1, trace.num_layers):
            prev = trace.layers[l - 1][tokens].astype(np.float64)
            cur = trace.layers[l][tokens].astype(np.float64)
            if prev.shape[0] < 2:
                raise ValueError("profiling window too short")
            # Pearson correlation rather than raw co-occurrence: always-on
            # parents co-occur with everything, so conditional probability
            # alone cannot separate the genuinely correlated predecessor
            # from the merely hot one; centering removes that bias.
            prev_c = prev - prev.mean(axis=0)
            cur_c = cur - cur.mean(axis=0)
            denom = np.outer(
                np.linalg.norm(prev_c, axis=0), np.linalg.norm(cur_c, axis=0)
            )
            with np.errstate(invalid="ignore", divide="ignore"):
                corr = np.where(denom > 0, prev_c.T @ cur_c / denom, 0.0)
            # top-2 parents per child by correlation
            top2 = np.argsort(corr, axis=0)[-2:, :][::-1].T
            parents.append(np.ascontiguousarray(top2))
        return cls(parents)

    def table_bytes(self, index_bytes: int = 2) -> int:
        """Storage footprint of the correlation table."""
        total = 0
        for table in self.parents:
            if table is not None:
                total += table.size * index_bytes
        return total


@dataclasses.dataclass
class PredictionStats:
    """Running accuracy counters (predicted vs ground-truth activations)."""

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    def update(self, predicted: np.ndarray, actual: np.ndarray) -> None:
        # Three count_nonzero passes instead of four logical_and+sum
        # temporaries; the derived counts are the same integers.
        tp = int(np.count_nonzero(predicted & actual))
        n_pred = int(np.count_nonzero(predicted))
        n_act = int(np.count_nonzero(actual))
        self.true_positive += tp
        self.false_positive += n_pred - tp
        self.false_negative += n_act - tp
        self.true_negative += predicted.size - n_pred - n_act + tp

    @property
    def total(self) -> int:
        return (self.true_positive + self.false_positive
                + self.true_negative + self.false_negative)

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            raise ValueError("no predictions recorded")
        return (self.true_positive + self.true_negative) / self.total

    @property
    def recall(self) -> float:
        actual = self.true_positive + self.false_negative
        if actual == 0:
            return 1.0
        return self.true_positive / actual

    @property
    def precision(self) -> float:
        predicted = self.true_positive + self.false_positive
        if predicted == 0:
            return 1.0
        return self.true_positive / predicted


class ActivationPredictor:
    """Combined token-wise + layer-wise activation predictor."""

    def __init__(
        self, layout: NeuronLayout, config: PredictorConfig | None = None
    ) -> None:
        self.layout = layout
        self.config = config or PredictorConfig()
        self.num_layers = layout.model.num_layers
        # int16 working dtype: the 4-bit counters fit comfortably, and the
        # decode hot path can update them without the int8 -> int16 -> int8
        # round-trip a saturating update would otherwise need.  The modelled
        # hardware footprint stays 4 bits (:meth:`state_table_bytes`).
        # ``states`` keeps the historical per-layer API as row views into
        # the dense matrix the vectorized paths consume.
        self.state_matrix = np.zeros(
            (self.num_layers, layout.groups_per_layer), dtype=np.int16)
        self.states = list(self.state_matrix)
        self.correlation: CorrelationTable | None = None
        self._parents_stack: tuple[np.ndarray, np.ndarray, np.ndarray,
                                   bool] | None = None
        self.stats = PredictionStats()

    # ------------------------------------------------------------------
    def initialize(self, trace: ActivationTrace, *,
                   correlation: str = "profiled") -> None:
        """Set initial states from prefill frequencies (16 linear stages)
        and build the correlation table.

        ``correlation`` selects the table source: ``"profiled"`` uses the
        trace's recorded offline structure (the paper's corpus-profiled
        table), ``"sampled"`` estimates it statistically from the prefill
        window.
        """
        for l in range(self.num_layers):
            freq = trace.prefill_frequencies(l)
            self.states[l][:] = np.minimum(
                (freq * (STATE_MAX + 1)).astype(np.int16), STATE_MAX
            )
        self._parents_stack = None
        if self.config.use_layer_prediction:
            if correlation == "profiled":
                self.correlation = CorrelationTable.from_profiling(trace)
            elif correlation == "sampled":
                self.correlation = CorrelationTable.from_trace(trace)
            else:
                raise ValueError(f"unknown correlation source {correlation!r}")

    # ------------------------------------------------------------------
    def predict(self, layer: int,
                prev_actual: np.ndarray | None = None) -> np.ndarray:
        """Predicted activation mask for ``layer`` on the current token.

        ``prev_actual`` is the realised activation of layer-1 (available
        because layers execute sequentially); it feeds the layer-wise term.
        """
        cfg = self.config
        if cfg.use_token_prediction:
            s1 = self.states[layer].astype(np.float64)
        else:
            s1 = np.zeros(self.layout.groups_per_layer)
        s2 = np.zeros_like(s1)
        if (cfg.use_layer_prediction and layer > 0
                and prev_actual is not None
                and self.correlation is not None):
            parents = self.correlation.parents[layer]
            if parents is not None:
                s2 = prev_actual[parents].sum(axis=1).astype(np.float64)
        score = s1 + cfg.lam * s2
        if not cfg.use_token_prediction:
            # layer-only mode: both sampled parents must fire — one parent
            # alone fires far too often (hot parents are nearly always on)
            return s2 >= 2.0
        # ">=" rather than the paper's strict ">": the state table saturates
        # at 15 == T, so a strict comparison would never fire on a
        # permanently-active neuron with silent parents.
        return score >= cfg.threshold

    def _stacked_parents(
        self
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
        """(layer indices, gather rows, stacked top-2 parent table,
        indices-are-contiguous flag) for the vectorized layer-wise term;
        layers without a table are absent from the stack."""
        if self._parents_stack is None:
            parents = (self.correlation.parents
                       if self.correlation is not None else [])
            layers = [l for l in range(1, self.num_layers)
                      if l < len(parents) and parents[l] is not None]
            idx = np.asarray(layers, dtype=np.intp)
            stack = (np.stack([parents[l] for l in layers]) if layers
                     else np.zeros((0, self.layout.groups_per_layer, 2),
                                   dtype=np.intp))
            rows = np.arange(idx.size)[:, None, None]
            contiguous = bool(idx.size == self.num_layers - 1
                              and (idx == np.arange(1, self.num_layers)).all())
            self._parents_stack = (idx, rows, stack, contiguous)
        return self._parents_stack

    def predict_all(self, actuals: np.ndarray) -> np.ndarray:
        """Predicted masks for every layer of one token, vectorized.

        ``actuals`` is the token's (num_layers, groups) ground-truth
        activation matrix; row ``l-1`` supplies the realised previous-layer
        activations feeding layer ``l``'s layer-wise term (layers execute
        sequentially, so those are known by the time layer ``l`` runs).
        Row ``l`` equals ``predict(l, actuals[l-1])`` bit-for-bit — one
        call replaces the per-layer loop on the decode fast path.
        """
        if actuals.shape != self.state_matrix.shape:
            raise ValueError("actuals matrix has wrong shape")
        cfg = self.config
        s2 = np.zeros(self.state_matrix.shape)
        if cfg.use_layer_prediction and self.correlation is not None:
            idx, rows, parents, contiguous = self._stacked_parents()
            if idx.size:
                # every layer past the first has a table in the common
                # case, so the previous-layer rows are just a slice
                prev = actuals[:-1] if contiguous else actuals[idx - 1]
                s2[idx] = prev[rows, parents].sum(axis=2)
        if not cfg.use_token_prediction:
            # layer-only mode: both sampled parents must fire (see predict)
            return s2 >= 2.0
        score = s2
        score *= cfg.lam
        score += self.state_matrix
        return score >= cfg.threshold

    # ---- fused-span API (macro-stepped decode) -----------------------
    def span_scores(self, actuals_span: np.ndarray) -> np.ndarray:
        """Layer-wise score term of every step in a fused span.

        ``actuals_span`` stacks the span's ground-truth activations as
        ``(steps, num_layers, groups)``.  The returned float64 array of
        the same shape holds ``lam * s2`` per step (raw ``s2`` in
        layer-only mode, whose threshold does not mix in the state
        table).  The correlation-table gather — the expensive part of
        :meth:`predict_all` — runs once for the whole span; combined
        with :meth:`predict_span_step` the per-step masks are
        bit-identical to per-token ``predict_all`` calls, because the
        layer term depends only on the immutable trace, never on the
        evolving state table.
        """
        if actuals_span.shape[1:] != self.state_matrix.shape:
            raise ValueError("actuals span has wrong shape")
        cfg = self.config
        s2 = np.zeros(actuals_span.shape)
        if cfg.use_layer_prediction and self.correlation is not None:
            idx, rows, parents, contiguous = self._stacked_parents()
            if idx.size:
                prev = (actuals_span[:, :-1] if contiguous
                        else actuals_span[:, idx - 1])
                s2[:, idx] = prev[:, rows, parents].sum(axis=3)
        if cfg.use_token_prediction:
            s2 *= cfg.lam
        return s2

    def span_deltas(self, actuals_span: np.ndarray) -> np.ndarray:
        """Pre-clip state-table deltas of every step, in one ``where``."""
        return np.where(
            actuals_span,
            np.int16(self.config.s_up),
            np.int16(-self.config.s_down),
        )

    def span_states(self, deltas_span: np.ndarray) -> np.ndarray:
        """State-table snapshots across a span: ``(K + 1, L, G)``.

        Entry 0 is the live table as it stands; entry ``i`` the table
        after the span's first ``i`` saturating updates (deltas from
        :meth:`span_deltas`).  The state evolution depends only on the
        trace's ground-truth activations — never on predictions or
        residency — which is what lets a fused span precompute every
        step's pre-token table up front.  Each update is the
        max-then-min spelling of :meth:`observe_all`'s clip: identical
        integers.  The caller commits the realized prefix back with
        :meth:`sync_states`.
        """
        k = deltas_span.shape[0]
        out = np.empty((k + 1,) + self.state_matrix.shape, dtype=np.int16)
        out[0] = self.state_matrix
        for i in range(k):
            nxt = out[i + 1]
            np.add(out[i], deltas_span[i], out=nxt)
            np.maximum(nxt, 0, out=nxt)
            np.minimum(nxt, STATE_MAX, out=nxt)
        return out

    def span_predictions(
        self, scores_span: np.ndarray, states_span: np.ndarray
    ) -> np.ndarray:
        """Predicted masks for every step of a span, in two matrix ops.

        ``scores_span`` from :meth:`span_scores`, ``states_span`` from
        :meth:`span_states` — row ``i`` is bit-identical to a
        ``predict_all`` call on token ``i`` interleaved with the span's
        state updates, because every term is a small exact integer in
        float64.
        """
        cfg = self.config
        if not cfg.use_token_prediction:
            # layer-only mode: both sampled parents must fire
            return scores_span >= 2.0
        return scores_span + states_span[:-1] >= cfg.threshold

    def sync_states(self, states: np.ndarray) -> None:
        """Commit a span's realized final state snapshot to the table."""
        self.state_matrix[:] = states

    def record_span(
        self, predicted_span: np.ndarray, actuals_span: np.ndarray
    ) -> None:
        """Fold a whole span's outcomes into the accuracy counters.

        The counters are order-free integer sums, so one update over the
        stacked masks equals the per-step folds exactly.
        """
        self.stats.update(predicted_span, actuals_span)

    # ------------------------------------------------------------------
    def observe(self, layer: int, actual: np.ndarray,
                predicted: np.ndarray | None = None) -> None:
        """Finite-state-machine update after the layer's true activations
        are known; also folds the outcome into the accuracy counters."""
        if actual.shape != (self.layout.groups_per_layer,):
            raise ValueError("actual mask has wrong shape")
        if predicted is not None:
            self.stats.update(predicted, actual)
        state = np.where(
            actual,
            self.states[layer] + self.config.s_up,
            self.states[layer] - self.config.s_down,
        )
        np.clip(state, 0, STATE_MAX, out=self.states[layer])

    def observe_all(
        self, actuals: np.ndarray, predicted: np.ndarray | None = None
    ) -> None:
        """Token-level :meth:`observe`: fold one token's outcome for every
        layer into the state table and accuracy counters at once.

        Equivalent to calling ``observe(l, actuals[l], predicted[l])`` for
        each layer — the state update is elementwise and the counters are
        order-free sums — but costs a handful of matrix ops per token.
        Valid whenever no reader consumes layer ``l``'s post-token state
        between the layer loop and the end of the token, which holds for
        the engine: online adjustment reads pre-token states only.
        """
        if actuals.shape != self.state_matrix.shape:
            raise ValueError("actuals matrix has wrong shape")
        if predicted is not None:
            self.stats.update(predicted, actuals)
        matrix = self.state_matrix
        # in-place delta + saturating clamp (max-then-min spelling of
        # clip); identical integers to the scalar update
        matrix += np.where(actuals, np.int16(self.config.s_up),
                           np.int16(-self.config.s_down))
        np.maximum(matrix, 0, out=matrix)
        np.minimum(matrix, STATE_MAX, out=matrix)

    # ------------------------------------------------------------------
    def hot_mask(self, layer: int) -> np.ndarray:
        """Groups currently classified hot (state > hot_threshold)."""
        return self.states[layer] > self.config.hot_threshold

    def state_table_bytes(self) -> int:
        """Footprint of the neuron state table at 4 bits per neuron.

        Reported at *neuron* granularity (the paper's bookkeeping), i.e.
        independent of the simulation's group granularity.
        """
        return self.layout.model.total_neurons * STATE_BITS // 8

    def predictor_overhead_seconds(self, layer: int) -> float:
        """Host-CPU time to evaluate the predictor for one layer.

        A handful of vector ops over the state table held in LLC; the paper
        measures <0.1 % of runtime.  Modelled as table-scan time at LLC
        bandwidth (~100 GB/s) with a 1 us floor for control flow.
        """
        table_bytes = self.layout.model.neurons_per_layer * STATE_BITS / 8
        return 1e-6 + table_bytes / 100e9
