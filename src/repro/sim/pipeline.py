"""Pipeline-overlap helpers built on the event engine.

The recurring overlap pattern in offloading systems is a two-stage pipeline:
stage 0 (a transfer link) feeds stage 1 (a compute device), item by item.
``pipeline_makespan`` computes the makespan of an N-stage in-order pipeline;
``overlap_two_stage`` is the closed-form special case used in hot loops, and
the test suite checks the two agree.
"""

from __future__ import annotations

import typing

from .engine import Acquire, Release, Resource, Simulator, Timeout


def pipeline_makespan(
    durations: typing.Sequence[typing.Sequence[float]]
) -> float:
    """Makespan of an in-order pipeline.

    ``durations[i][s]`` is the service time of item ``i`` on stage ``s``;
    each stage is a serial resource, items pass through stages in order
    (item i cannot enter stage s before finishing stage s-1, and stages
    process items FIFO).  Simulated exactly with the event engine.
    """
    if not durations:
        return 0.0
    n_stages = len(durations[0])
    if n_stages == 0:
        return 0.0
    for row in durations:
        if len(row) != n_stages:
            raise ValueError("all items must visit the same stages")
        if any(d < 0 for d in row):
            raise ValueError("durations must be non-negative")
    sim = Simulator()
    stages = [Resource(f"stage{s}") for s in range(n_stages)]
    done: list = []

    def item(i: int) -> typing.Generator:
        for s in range(n_stages):
            yield Acquire(stages[s])
            yield Timeout(durations[i][s])
            yield Release(stages[s])

    for i in range(len(durations)):
        done.append(sim.process(item(i), name=f"item{i}"))
    return sim.run()


def overlap_two_stage(
    transfer: typing.Sequence[float], compute: typing.Sequence[float]
) -> float:
    """Closed-form makespan of a transfer->compute pipeline.

    Classic prefetch recurrence: compute of item ``i`` starts when both the
    transfer of item ``i`` and the compute of item ``i-1`` are done, and
    transfers are serial on the link.
    """
    if len(transfer) != len(compute):
        raise ValueError("transfer and compute must have equal length")
    link_free = 0.0
    compute_free = 0.0
    for t, c in zip(transfer, compute):
        if t < 0 or c < 0:
            raise ValueError("durations must be non-negative")
        link_free += t
        compute_free = max(compute_free, link_free) + c
    return compute_free
