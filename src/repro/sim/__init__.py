"""Discrete-event simulation engine and overlap helpers."""

from .engine import (
    Acquire,
    Process,
    Release,
    Resource,
    Signal,
    Simulator,
    Timeout,
    WaitSignal,
    WaitUntil,
)
from .pipeline import overlap_two_stage, pipeline_makespan

__all__ = [
    "Simulator",
    "Process",
    "Resource",
    "Timeout",
    "WaitUntil",
    "WaitSignal",
    "Signal",
    "Acquire",
    "Release",
    "pipeline_makespan",
    "overlap_two_stage",
]
