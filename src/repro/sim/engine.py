"""A compact discrete-event simulation engine.

The system models are mostly analytic, but anything involving *overlap* —
FlexGen's weight prefetch pipeline, Hermes hiding migrations behind the
projection window — is easiest to get right with a real event calendar.
Processes are Python generators that yield simulation primitives:

* ``Timeout(dt)`` — advance this process by ``dt`` seconds;
* ``WaitUntil(t)`` — advance this process to the *absolute* time ``t``
  (no-op when already past).  Macro-stepped processes use this to land on
  exactly the clock value a chain of per-step ``Timeout`` yields would
  have produced — ``now + (t - now)`` re-rounds in floating point, an
  absolute target does not;
* ``Acquire(resource)`` / ``Release(resource)`` — serialise on a device;
* ``WaitSignal(signal, until)`` — interruptible wait: sleep until another
  process fires the :class:`Signal` (``sim.fire``) or the optional
  absolute deadline passes, whichever comes first.  The serving layer
  uses this so an idle machine can be woken the moment a crashed peer
  migrates work into its queue, instead of polling;
* another process handle — join (wait for completion).

The engine is deterministic: simultaneous events fire in scheduling order.
"""

from __future__ import annotations

import dataclasses
import heapq
import typing


@dataclasses.dataclass(frozen=True)
class Timeout:
    """Advance the yielding process by ``delay`` seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be non-negative")


@dataclasses.dataclass(frozen=True)
class WaitUntil:
    """Advance the yielding process to absolute time ``time``.

    Fires immediately when ``time`` is not in the future.  Unlike
    ``Timeout(time - now)``, the wake-up lands on exactly ``time`` —
    no float re-rounding — which is what lets a fused multi-step span
    end on the same clock value as its step-at-a-time equivalent.
    """

    time: float


class Resource:
    """A serially-shared device (a link, a GPU, one NDP core)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._holder: "Process | None" = None
        self._waiters: list["Process"] = []

    @property
    def busy(self) -> bool:
        return self._holder is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Resource({self.name!r}, busy={self.busy})"


class Signal:
    """A broadcast wake-up channel for interruptible waits.

    Processes block on it by yielding :class:`WaitSignal`;
    :meth:`Simulator.fire` wakes every current waiter at the present
    simulation time.  A fired wait's pending deadline entry becomes a
    no-op, and a deadline expiry removes the waiter from the channel —
    each wait wakes exactly once.
    """

    def __init__(self, name: str = "signal") -> None:
        self.name = name
        self._waiters: list["_SignalWait"] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class _SignalWait:
    """Internal one-shot token tying a waiting process to a Signal."""

    __slots__ = ("signal", "proc", "woken")

    def __init__(self, signal: Signal, proc: "Process") -> None:
        self.signal = signal
        self.proc = proc
        self.woken = False


@dataclasses.dataclass(frozen=True)
class WaitSignal:
    """Sleep until ``signal`` fires or absolute time ``until`` passes.

    With ``until=None`` the wait is unbounded — only a fire wakes it.
    Like :class:`WaitUntil`, a deadline not in the future fires
    immediately; the waker cannot be distinguished from the yield value
    (processes receive nothing), so wakers inspect ``sim.now`` or shared
    state to learn why they woke.
    """

    signal: Signal
    until: float | None = None


@dataclasses.dataclass(frozen=True)
class Acquire:
    resource: Resource


@dataclasses.dataclass(frozen=True)
class Release:
    resource: Resource


class Process:
    """Handle to a running generator process."""

    def __init__(
        self, sim: "Simulator", generator: typing.Generator, name: str = "proc"
    ) -> None:
        self.sim = sim
        self.generator = generator
        self.name = name
        self.finished = False
        self.end_time: float | None = None
        self._joiners: list["Process"] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Process({self.name!r}, finished={self.finished})"


class Simulator:
    """Event calendar + process scheduler."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, "Process | _SignalWait"]] = []
        self._seq = 0

    # ------------------------------------------------------------------
    def process(self, generator: typing.Generator, name: str = "proc",
                delay: float = 0.0) -> Process:
        """Register a generator as a process starting after ``delay``."""
        proc = Process(self, generator, name)
        self._push(self.now + delay, proc)
        return proc

    def _push(self, time: float, proc: "Process | _SignalWait") -> None:
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, proc))

    def fire(self, signal: Signal) -> None:
        """Wake every process currently blocked on ``signal`` now."""
        waiters = signal._waiters
        signal._waiters = []
        for token in waiters:
            if not token.woken:
                token.woken = True
                self._push(self.now, token.proc)

    # ------------------------------------------------------------------
    def _step(self, proc: Process) -> None:
        try:
            item = next(proc.generator)
        except StopIteration:
            self._finish(proc)
            return
        self._dispatch(proc, item)

    def _dispatch(self, proc: Process, item) -> None:
        if isinstance(item, Timeout):
            self._push(self.now + item.delay, proc)
        elif isinstance(item, WaitUntil):
            self._push(item.time if item.time > self.now else self.now, proc)
        elif isinstance(item, WaitSignal):
            token = _SignalWait(item.signal, proc)
            item.signal._waiters.append(token)
            if item.until is not None:
                self._push(
                    item.until if item.until > self.now else self.now, token
                )
        elif isinstance(item, Acquire):
            resource = item.resource
            if resource._holder is None:
                resource._holder = proc
                self._push(self.now, proc)
            else:
                resource._waiters.append(proc)
        elif isinstance(item, Release):
            resource = item.resource
            if resource._holder is not proc:
                raise RuntimeError(
                    f"{proc.name} released {resource.name} it does not hold"
                )
            resource._holder = None
            if resource._waiters:
                waiter = resource._waiters.pop(0)
                resource._holder = waiter
                self._push(self.now, waiter)
            self._push(self.now, proc)
        elif isinstance(item, Process):
            if item.finished:
                self._push(self.now, proc)
            else:
                item._joiners.append(proc)
        else:
            raise TypeError(f"process {proc.name} yielded {item!r}")

    def _finish(self, proc: Process) -> None:
        proc.finished = True
        proc.end_time = self.now
        for joiner in proc._joiners:
            self._push(self.now, joiner)
        proc._joiners.clear()

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Run to quiescence (or to ``until``); returns the final time.

        A bounded run is *resumable*: events at exactly ``until`` fire,
        the first event past it is pushed back intact (same sequence
        number, so tie-breaks replay identically), and a later ``run``
        call continues from where this one stopped.  The sharded cluster
        coordinator drives each shard's calendar window-by-window
        through exactly this contract.
        """
        while self._queue:
            time, seq, entry = heapq.heappop(self._queue)
            if until is not None and time > until:
                heapq.heappush(self._queue, (time, seq, entry))
                self.now = until
                return self.now
            if isinstance(entry, _SignalWait):
                # deadline expiry of an interruptible wait; a no-op when
                # the signal already fired (the wait woke exactly once)
                if entry.woken:
                    continue
                entry.woken = True
                entry.signal._waiters.remove(entry)
                self.now = time
                self._step(entry.proc)
                continue
            self.now = time
            self._step(entry)
        return self.now
