"""Declarative workload scenarios for the cluster simulator.

``scenarios/*.json`` / ``*.toml`` files at the repo root describe a full
cluster experiment — tenants, priority classes with SLOs, router, machine
hardware — and :func:`load_scenario` turns one into a runnable
:class:`Scenario`:

    from repro.scenarios import load_scenario
    report = load_scenario("scenarios/mixed_slo_tiny.json").run()

or from the command line::

    python -m repro.experiments cluster --scenario scenarios/<file>
"""

from .spec import (
    PlannerSpec,
    Scenario,
    TenantSpec,
    load_scenario,
    parse_scenario,
    scenario_trace,
)

__all__ = [
    "PlannerSpec",
    "Scenario",
    "TenantSpec",
    "load_scenario",
    "parse_scenario",
    "scenario_trace",
]
