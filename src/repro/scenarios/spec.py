"""Declarative scenario specs: a workload is a config file, not code.

A scenario file (JSON, or TOML on Python >= 3.11) describes everything
one cluster simulation needs — the model, the hardware of each machine,
the cluster front door (machine count, router, batching policy), the
priority classes with their SLOs, and a list of tenant traffic streams —
so opening a new workload means writing a spec under ``scenarios/``
instead of touching code.  The schema (every key, with defaults) is
documented in the README's "Scenario specs" section; unknown keys are
rejected so typos fail loudly instead of silently meaning defaults.

Determinism: every sampled quantity is seeded.  Tenants default to
``seed + tenant index`` so two tenants never share a stream, and the
power-of-two router draws its probes from ``cluster.router_seed``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10
    tomllib = None  # type: ignore[assignment]

from ..cluster import ClusterConfig, ClusterReport, ClusterSimulator, ROUTERS
from ..cluster.slo import DEFAULT_CLASS, PriorityClass, SLOPolicy
from ..hardware import GPU_REGISTRY, Machine, get_gpu
from ..models import get_model
from ..serving import (
    BACKENDS,
    BatchingPolicy,
    CrashSpec,
    DegradeSpec,
    DomainCrashSpec,
    DomainSpec,
    FaultSchedule,
    HermesUnionPolicy,
    LengthDistribution,
    MachineGroup,
    PartitionSpec,
    Request,
    SampleSpec,
    StragglerSpec,
    WorkloadConfig,
    generate_workload,
    get_policy,
    load_fault_trace,
    merge_sampled,
    merge_workloads,
)
from ..sparsity import ActivationTrace, TraceConfig, generate_trace
from ..telemetry import TelemetrySpec, Tracer


def scenario_trace(model: str, granularity: int, seed: int) -> ActivationTrace:
    """The shared activation trace a scenario's machines execute against.

    Mirrors :func:`repro.serving.default_serving_trace`'s shape so a
    scenario run exercises the same serving fast path the benchmarks
    measure, but stays explicitly seedable from the spec.
    """
    config = TraceConfig(prompt_len=64, decode_len=64, granularity=granularity)
    return generate_trace(get_model(model), config, seed=seed)


def _take(data: dict, allowed: typing.Iterable[str], context: str) -> dict:
    """Reject unknown keys so a typo'd spec fails with a clear error."""
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ValueError(
            f"{context}: unknown keys {unknown}; "
            f"allowed: {sorted(allowed)}"
        )
    return data


def _lengths(data: dict | None, context: str) -> LengthDistribution:
    if data is None:
        return LengthDistribution()
    _take(data, ("kind", "mean", "low", "high", "sigma"), context)
    return LengthDistribution(**data)


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant's open-loop traffic stream."""

    name: str
    class_name: str
    workload: WorkloadConfig
    seed: int

    def generate(self) -> list[Request]:
        return generate_workload(
            self.workload,
            seed=self.seed,
            tenant=self.name,
            class_name=self.class_name,
        )


@dataclasses.dataclass(frozen=True)
class PlannerSpec:
    """The ``planner:`` section: budget and candidate space for ``plan``.

    Describes which homogeneous fleets the capacity planner may propose
    for this scenario's traffic — the cross product of backends, GPUs,
    models, nominal batches, and machine counts — plus the acceptance
    bar (``target_attainment`` on every SLO-bearing class) and the
    analytic-prune slack.  Empty tuples mean "the whole registry" (or,
    for models and batches, the scenario's own defaults), so a scenario
    without a ``planner:`` section still plans over a sensible space.
    """

    #: largest machine count a candidate fleet may use
    budget: int = 8
    #: backend registry names (empty = every registered backend)
    backends: tuple[str, ...] = ()
    #: GPU registry names (empty = every registered GPU)
    gpus: tuple[str, ...] = ()
    #: model registry names (empty = the scenario's model)
    models: tuple[str, ...] = ()
    #: offline-partition/probe batch sizes (empty = the scenario's
    #: simulator default, ``max(2, cluster.max_batch // 2)``)
    nominal_batches: tuple[int, ...] = ()
    #: explicit machine counts (empty = ``1..budget``); counts above
    #: the budget are dropped at enumeration time
    counts: tuple[int, ...] = ()
    #: joint SLO attainment every SLO-bearing class must reach for a
    #: validated fleet to count as "meeting the SLO table"
    target_attainment: float = 0.95
    #: analytic throughput-prune slack: a candidate survives pruning
    #: while ``optimism x estimated fleet tokens/sec`` covers the
    #: demanded rate, so the heuristic estimate only ever discards
    #: fleets that miss by a wide margin (the simulator never sees a
    #: falsely-infeasible candidate)
    optimism: float = 4.0
    #: optional hard cap on a candidate fleet's bill of materials
    max_cost_usd: float | None = None

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("planner.budget must be >= 1")
        if not 0.0 < self.target_attainment <= 1.0:
            raise ValueError(
                "planner.target_attainment must be in (0, 1]"
            )
        if self.optimism < 1.0:
            raise ValueError("planner.optimism must be >= 1")
        if any(b < 1 for b in self.nominal_batches):
            raise ValueError("planner.nominal_batches must be >= 1")
        if any(c < 1 for c in self.counts):
            raise ValueError("planner.counts must be >= 1")
        if self.max_cost_usd is not None and self.max_cost_usd <= 0:
            raise ValueError("planner.max_cost_usd must be positive")
        for backend in self.backends:
            if backend.lower() not in BACKENDS:
                known = ", ".join(sorted(BACKENDS))
                raise ValueError(
                    f"planner.backends: unknown backend {backend!r}; "
                    f"known: {known}"
                )
        for gpu in self.gpus:
            if gpu.lower() not in GPU_REGISTRY:
                known = ", ".join(sorted(GPU_REGISTRY))
                raise ValueError(
                    f"planner.gpus: unknown GPU {gpu!r}; known: {known}"
                )
        for model in self.models:
            get_model(model)  # raises with the known-model list


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A fully-resolved scenario: ``run()`` yields the cluster report."""

    name: str
    description: str
    model: str
    granularity: int
    trace_seed: int
    machine: Machine
    config: ClusterConfig
    policy: BatchingPolicy
    slo: SLOPolicy
    tenants: tuple[TenantSpec, ...]
    #: heterogeneous fleet description; ``None`` means the homogeneous
    #: ``cluster.num_machines`` Hermes fleet
    fleet: tuple[MachineGroup, ...] | None = None
    #: declarative telemetry request (the ``telemetry:`` table); the
    #: default spec names no outputs, so runs stay untraced unless the
    #: CLI adds ``--trace-out``
    telemetry: TelemetrySpec = TelemetrySpec()
    #: capacity-planner budget and candidate space (the ``planner:``
    #: table); the default plans over the full backend/GPU registries
    planner: PlannerSpec = PlannerSpec()

    def build_workload(self) -> list[Request]:
        """Merge every tenant's stream into one routed workload."""
        return merge_workloads(*(t.generate() for t in self.tenants))

    def build_trace(self) -> ActivationTrace:
        """The shared activation trace all machines execute against."""
        return scenario_trace(self.model, self.granularity, self.trace_seed)

    def build_simulator(
        self, trace: ActivationTrace | None = None
    ) -> ClusterSimulator:
        return ClusterSimulator(
            self.model,
            self.policy,
            self.config,
            slo=self.slo,
            machine=self.machine,
            trace=trace if trace is not None else self.build_trace(),
            granularity=self.granularity,
            seed=self.trace_seed,
            fleet=self.fleet,
        )

    def run(
        self,
        trace: ActivationTrace | None = None,
        *,
        tracer: Tracer | None = None,
    ) -> ClusterReport:
        return self.build_simulator(trace).run(
            self.build_workload(), tracer=tracer
        )


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
_TOP_KEYS = (
    "name",
    "description",
    "model",
    "seed",
    "trace",
    "machine",
    "fleet",
    "cluster",
    "slo",
    "classes",
    "tenants",
    "telemetry",
    "faults",
    "planner",
)
_TENANT_KEYS = (
    "name",
    "class",
    "arrival",
    "rate",
    "num_requests",
    "prompt_lens",
    "output_lens",
    "seed",
    "burst_factor",
    "burst_fraction",
    "burst_period",
)
#: tenant keys forwarded verbatim to :class:`WorkloadConfig`
_WORKLOAD_KEYS = (
    "arrival",
    "rate",
    "num_requests",
    "burst_factor",
    "burst_fraction",
    "burst_period",
)


def _parse_machine(
    data: dict | None,
    base: Machine | None = None,
    context: str = "machine",
) -> Machine:
    machine = base if base is not None else Machine()
    if not data:
        return machine
    _take(
        data,
        ("gpu", "num_dimms", "multipliers", "sync_latency"),
        context,
    )
    if "gpu" in data:
        machine = machine.with_gpu(get_gpu(data["gpu"]))
    if "num_dimms" in data:
        machine = machine.with_dimms(int(data["num_dimms"]))
    if "multipliers" in data:
        machine = machine.with_multipliers(int(data["multipliers"]))
    if "sync_latency" in data:
        machine = dataclasses.replace(
            machine, sync_latency=float(data["sync_latency"])
        )
    return machine


#: per-group fleet keys: machine-hardware overrides ride along with the
#: group shape, backend choice, and model override
_FLEET_KEYS = (
    "count",
    "backend",
    "gpu",
    "num_dimms",
    "multipliers",
    "sync_latency",
    "model",
    "nominal_batch",
)
_FLEET_MACHINE_KEYS = ("gpu", "num_dimms", "multipliers", "sync_latency")


def _parse_fleet(
    data: list | None, base_machine: Machine
) -> tuple[MachineGroup, ...] | None:
    """Machine groups from the ``fleet:`` section (``None`` if absent).

    Each group inherits the scenario-level ``machine`` table and may
    override individual hardware knobs, the backend, the model, and the
    nominal batch; unknown keys are rejected per group.
    """
    if data is None:
        return None
    if not isinstance(data, list) or not data:
        raise ValueError("fleet: must be a non-empty list of machine groups")
    groups: list[MachineGroup] = []
    for index, entry in enumerate(data):
        context = f"fleet[{index}]"
        if not isinstance(entry, dict):
            raise ValueError(f"{context}: each machine group is a mapping")
        _take(entry, _FLEET_KEYS, context)
        backend = str(entry.get("backend", "hermes"))
        if backend.lower() not in BACKENDS:
            known = ", ".join(sorted(BACKENDS))
            raise ValueError(
                f"{context}: unknown backend {backend!r}; known: {known}"
            )
        model = entry.get("model")
        if model is not None:
            get_model(model)  # fail at parse time with the known-model list
        machine_overrides = {
            key: entry[key] for key in _FLEET_MACHINE_KEYS if key in entry
        }
        machine = (
            _parse_machine(machine_overrides, base_machine, context)
            if machine_overrides
            else None
        )
        nominal = entry.get("nominal_batch")
        groups.append(
            MachineGroup(
                count=int(entry.get("count", 1)),
                backend=backend,
                machine=machine,
                model=model,
                nominal_batch=int(nominal) if nominal is not None else None,
            )
        )
    return tuple(groups)


def _parse_cluster(data: dict | None) -> tuple[ClusterConfig, str, dict]:
    """(config, policy name, policy kwargs) from the ``cluster`` table."""
    data = dict(data or {})
    _take(
        data,
        (
            "num_machines",
            "max_batch",
            "macro_step",
            "fidelity",
            "shards",
            "shard_processes",
            "router",
            "router_seed",
            "health_aware",
            "policy",
            "union_cap",
        ),
        "cluster",
    )
    policy = data.pop("policy", "fcfs")
    policy_kwargs = {}
    if "union_cap" in data:
        policy_kwargs["union_cap"] = float(data.pop("union_cap"))
    router = data.get("router", "round-robin")
    if router not in ROUTERS:
        known = ", ".join(sorted(ROUTERS))
        raise ValueError(
            f"cluster.router: unknown router {router!r}; known: {known}"
        )
    return ClusterConfig(**data), policy, policy_kwargs


_FAULT_KEYS = (
    "seed",
    "restart_warmup",
    "crashes",
    "stragglers",
    "partitions",
    "domains",
    "domain_crashes",
    "degrades",
    "sample",
    "trace",
)
_CRASH_KEYS = ("machine", "at", "restart_after")
_STRAGGLER_KEYS = ("machine", "start", "end", "slowdown")
_PARTITION_KEYS = ("machine", "start", "end")
_DOMAIN_CRASH_KEYS = ("domain", "at", "restart_after")
_DEGRADE_KEYS = ("machine", "at", "dimm_fraction", "bandwidth_factor")
_SAMPLE_KEYS = (
    "horizon",
    "crashes_per_machine",
    "mean_downtime",
    "restart_fraction",
    "stragglers_per_machine",
    "mean_straggle",
    "slowdown",
    "partitions_per_machine",
    "mean_partition",
    "crashes_per_domain",
)


def _parse_domains(data: dict) -> tuple:
    """``faults.domains``: a ``{name: [machine, ...]}`` mapping."""
    table = data.get("domains") or {}
    if not isinstance(table, dict):
        raise ValueError(
            "faults.domains: must map domain names to machine lists"
        )
    out = []
    for name, members in table.items():
        if not isinstance(members, list):
            raise ValueError(
                f"faults.domains.{name}: members must be a list of "
                "machine indices"
            )
        out.append(DomainSpec(name=name, machines=tuple(members)))
    return tuple(out)


def _parse_faults(
    data: dict | None,
    num_machines: int,
    base_dir: pathlib.Path | None = None,
) -> FaultSchedule | None:
    """The ``faults:`` section: explicit events plus seeded sampled chaos.

    Absent section means ``None`` — every fault branch in the serving
    loops stays short-circuited and the run is bit-identical to a
    fault-free build.  Explicit events and the ``sample`` table are
    validated with the same unknown-key strictness as the rest of the
    spec, and the merged schedule is checked against the fleet size.

    ``trace: FILE`` replays a recorded JSONL failure log instead (path
    relative to the scenario file); the trace carries the *complete*
    schedule — seed, domains, every event — so it excludes every other
    fault key.
    """
    if data is None:
        return None
    data = dict(data)
    _take(data, _FAULT_KEYS, "faults")
    trace = data.pop("trace", None)
    if trace is not None:
        if data:
            raise ValueError(
                "faults.trace replays a complete recorded schedule and "
                f"excludes every other fault key; also found: "
                f"{sorted(data)}"
            )
        path = pathlib.Path(trace)
        if base_dir is not None and not path.is_absolute():
            path = base_dir / path
        schedule = load_fault_trace(path)
        schedule.validate_fleet(num_machines)
        return schedule

    def _events(key: str, allowed: tuple, factory) -> tuple:
        entries = data.get(key)
        if entries is None:
            return ()
        if not isinstance(entries, list):
            raise ValueError(f"faults.{key}: must be a list of mappings")
        out = []
        for index, entry in enumerate(entries):
            context = f"faults.{key}[{index}]"
            if not isinstance(entry, dict):
                raise ValueError(f"{context}: each event is a mapping")
            _take(entry, allowed, context)
            out.append(factory(**entry))
        return tuple(out)

    schedule = FaultSchedule(
        crashes=_events("crashes", _CRASH_KEYS, CrashSpec),
        stragglers=_events("stragglers", _STRAGGLER_KEYS, StragglerSpec),
        partitions=_events("partitions", _PARTITION_KEYS, PartitionSpec),
        seed=int(data.get("seed", 0)),
        restart_warmup=float(data.get("restart_warmup", 0.0)),
        domains=_parse_domains(data),
        domain_crashes=_events(
            "domain_crashes", _DOMAIN_CRASH_KEYS, DomainCrashSpec
        ),
        degrades=_events("degrades", _DEGRADE_KEYS, DegradeSpec),
    )
    sample = data.get("sample")
    if sample is not None:
        _take(sample, _SAMPLE_KEYS, "faults.sample")
        schedule = merge_sampled(
            schedule, SampleSpec(**sample), num_machines
        )
    schedule.validate_fleet(num_machines)
    return schedule


def _parse_policy(name: str, kwargs: dict) -> BatchingPolicy:
    if kwargs and name != "hermes-union":
        raise ValueError(
            "cluster.union_cap only applies to the hermes-union policy"
        )
    if name == "hermes-union" and kwargs:
        return HermesUnionPolicy(**kwargs)
    return get_policy(name)


def _parse_classes(classes: dict | None, slo_table: dict | None) -> SLOPolicy:
    slo_table = dict(slo_table or {})
    _take(slo_table, ("preemptive", "headroom"), "slo")
    parsed: list[PriorityClass] = []
    for name, fields in (classes or {}).items():
        _take(fields, ("priority", "ttft_slo", "tbt_slo"), f"classes.{name}")
        parsed.append(
            PriorityClass(
                name=name,
                priority=int(fields.get("priority", 0)),
                ttft_slo=fields.get("ttft_slo"),
                tbt_slo=fields.get("tbt_slo"),
            )
        )
    if not any(c.name == "default" for c in parsed):
        parsed.append(DEFAULT_CLASS)
    return SLOPolicy(classes=tuple(parsed), **slo_table)


def _parse_telemetry(data: dict | None) -> TelemetrySpec:
    data = dict(data or {})
    _take(
        data, ("sample_interval", "stream", "chrome_trace"), "telemetry"
    )
    kwargs: dict = {}
    if "sample_interval" in data:
        kwargs["sample_interval"] = float(data["sample_interval"])
    for key in ("stream", "chrome_trace"):
        if data.get(key) is not None:
            kwargs[key] = str(data[key])
    return TelemetrySpec(**kwargs)


_PLANNER_KEYS = (
    "budget",
    "backends",
    "gpus",
    "models",
    "nominal_batches",
    "counts",
    "target_attainment",
    "optimism",
    "max_cost_usd",
)


def _parse_planner(data: dict | None) -> PlannerSpec:
    data = dict(data or {})
    _take(data, _PLANNER_KEYS, "planner")
    kwargs: dict = {}
    if "budget" in data:
        kwargs["budget"] = int(data["budget"])
    for key in ("backends", "gpus", "models"):
        if key in data:
            value = data[key]
            if not isinstance(value, list):
                raise ValueError(f"planner.{key}: must be a list of names")
            kwargs[key] = tuple(str(v) for v in value)
    for key in ("nominal_batches", "counts"):
        if key in data:
            value = data[key]
            if not isinstance(value, list):
                raise ValueError(
                    f"planner.{key}: must be a list of integers"
                )
            kwargs[key] = tuple(int(v) for v in value)
    for key in ("target_attainment", "optimism"):
        if key in data:
            kwargs[key] = float(data[key])
    if data.get("max_cost_usd") is not None:
        kwargs["max_cost_usd"] = float(data["max_cost_usd"])
    return PlannerSpec(**kwargs)


def _parse_tenant(
    data: dict, index: int, base_seed: int, slo: SLOPolicy
) -> TenantSpec:
    context = f"tenants[{index}]"
    _take(data, _TENANT_KEYS, context)
    name = data.get("name", f"tenant-{index}")
    class_name = data.get("class", "default")
    if class_name not in {c.name for c in slo.classes}:
        declared = ", ".join(sorted(c.name for c in slo.classes))
        raise ValueError(
            f"{context}: class {class_name!r} is not declared "
            f"(declared: {declared})"
        )
    workload_kwargs = {}
    for key in _WORKLOAD_KEYS:
        if key in data:
            workload_kwargs[key] = data[key]
    workload = WorkloadConfig(
        prompt_lens=_lengths(
            data.get("prompt_lens"), f"{context}.prompt_lens"
        ),
        output_lens=_lengths(
            data.get("output_lens"), f"{context}.output_lens"
        ),
        **workload_kwargs,
    )
    return TenantSpec(
        name=name,
        class_name=class_name,
        workload=workload,
        seed=int(data.get("seed", base_seed + index)),
    )


def parse_scenario(
    data: dict,
    *,
    name_hint: str = "scenario",
    base_dir: str | pathlib.Path | None = None,
) -> Scenario:
    """Build a :class:`Scenario` from a decoded spec mapping.

    ``base_dir`` anchors relative file references inside the spec (the
    ``faults.trace`` failure log); :func:`load_scenario` passes the
    spec file's own directory.
    """
    if base_dir is not None:
        base_dir = pathlib.Path(base_dir)
    _take(data, _TOP_KEYS, name_hint)
    if "model" not in data:
        raise ValueError(f"{name_hint}: a scenario must name its model")
    tenants_data = data.get("tenants")
    if not tenants_data:
        raise ValueError(f"{name_hint}: a scenario needs >= 1 tenant")
    base_seed = int(data.get("seed", 0))
    trace = dict(data.get("trace") or {})
    _take(trace, ("granularity", "seed"), f"{name_hint}.trace")
    config, policy_name, policy_kwargs = _parse_cluster(data.get("cluster"))
    slo = _parse_classes(data.get("classes"), data.get("slo"))
    machine = _parse_machine(data.get("machine"))
    fleet = _parse_fleet(data.get("fleet"), machine)
    if fleet is not None:
        if "num_machines" in (data.get("cluster") or {}):
            raise ValueError(
                f"{name_hint}: cluster.num_machines conflicts with a "
                "fleet: section — the machine count is the sum of the "
                "group counts"
            )
        config = dataclasses.replace(
            config, num_machines=sum(g.count for g in fleet)
        )
    faults = _parse_faults(
        data.get("faults"), config.num_machines, base_dir=base_dir
    )
    if faults is not None:
        config = dataclasses.replace(config, faults=faults)
    tenants = []
    for index, tenant in enumerate(tenants_data):
        tenants.append(_parse_tenant(tenant, index, base_seed, slo))
    return Scenario(
        name=data.get("name", name_hint),
        description=data.get("description", ""),
        model=data["model"],
        granularity=int(trace.get("granularity", 64)),
        trace_seed=int(trace.get("seed", 7)),
        machine=machine,
        config=config,
        policy=_parse_policy(policy_name, policy_kwargs),
        slo=slo,
        tenants=tuple(tenants),
        fleet=fleet,
        telemetry=_parse_telemetry(data.get("telemetry")),
        planner=_parse_planner(data.get("planner")),
    )


def load_scenario(path: str | pathlib.Path) -> Scenario:
    """Load a scenario spec from a ``.json`` or ``.toml`` file."""
    path = pathlib.Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        data = json.loads(path.read_text())
    elif suffix == ".toml":
        if tomllib is None:
            raise RuntimeError(
                "TOML scenarios need Python >= 3.11 (tomllib); "
                "use the JSON form on older interpreters"
            )
        data = tomllib.loads(path.read_text())
    else:
        raise ValueError(
            f"unsupported scenario format {suffix!r} "
            "(expected .json or .toml)"
        )
    if not isinstance(data, dict):
        raise ValueError(f"{path}: scenario spec must be a mapping")
    return parse_scenario(data, name_hint=path.stem, base_dir=path.parent)
