"""Hardware models: GPUs, links, NDP-DIMMs and whole machines."""

from .gpu import (
    A100_40GB,
    GPU_REGISTRY,
    GPUSpec,
    RTX_3090,
    RTX_4090,
    TESLA_T4,
    get_gpu,
)
from .links import HostCPU, Link, dimm_link, host_memory_bus, pcie4_x16
from .dimm import NDPDIMM, default_dimm
from .energy import EnergyModel, decode_energy_per_token, tokens_per_joule
from .system import (
    COMPONENT_COST_USD,
    Machine,
    machine_cost_usd,
    server_cost_usd,
)

__all__ = [
    "EnergyModel",
    "decode_energy_per_token",
    "tokens_per_joule",
    "GPUSpec",
    "GPU_REGISTRY",
    "get_gpu",
    "RTX_4090",
    "RTX_3090",
    "TESLA_T4",
    "A100_40GB",
    "Link",
    "HostCPU",
    "pcie4_x16",
    "dimm_link",
    "host_memory_bus",
    "NDPDIMM",
    "default_dimm",
    "Machine",
    "machine_cost_usd",
    "server_cost_usd",
    "COMPONENT_COST_USD",
]
