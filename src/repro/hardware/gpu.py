"""Analytic GPU timing model.

The paper measures GPU kernels on real hardware with Nsight Compute; here we
substitute a roofline model parameterised by the public spec-sheet numbers
the paper itself quotes (§V-A1, §V-E2).  Token generation is dominated by
GEMV/skinny-GEMM kernels, which are memory-bandwidth bound until the batch
size pushes arithmetic intensity past the machine balance point — exactly the
regime structure the roofline captures.

Two efficiency knobs keep the model honest:

* ``bandwidth_efficiency`` — achievable fraction of peak DRAM bandwidth for
  streaming kernels (~80 % is typical of tuned GEMV kernels).
* ``gather_efficiency`` — additional derating when the kernel gathers
  *scattered* hot-neuron rows rather than a contiguous matrix.  Hot rows are
  copied into a packed buffer on migration, so the penalty is mild.
"""

from __future__ import annotations

import dataclasses

import numpy as np

GIB = 2**30


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """A consumer- or server-grade GPU, as characterised in the paper."""

    name: str
    memory_bytes: int
    memory_bandwidth: float  # bytes/s
    fp16_tflops: float  # shader FP16 TFLOPS
    tensor_tops: float  # tensor-core FP16 TOPS
    kernel_launch_overhead: float = 5e-6  # seconds per kernel
    bandwidth_efficiency: float = 0.80
    gather_efficiency: float = 0.85
    compute_efficiency: float = 0.55  # achieved fraction of peak tensor TOPS

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.memory_bandwidth <= 0:
            raise ValueError(f"{self.name}: memory spec must be positive")
        if self.fp16_tflops <= 0 or self.tensor_tops <= 0:
            raise ValueError(f"{self.name}: compute spec must be positive")
        for field in (
            "bandwidth_efficiency", "gather_efficiency", "compute_efficiency"
        ):
            value = getattr(self, field)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{self.name}: {field} must lie in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def effective_bandwidth(self) -> float:
        return self.memory_bandwidth * self.bandwidth_efficiency

    @property
    def effective_flops(self) -> float:
        return self.tensor_tops * 1e12 * self.compute_efficiency

    # ------------------------------------------------------------------
    def matmul_time(self, weight_bytes: float, batch: int = 1, *,
                    scattered: bool = False) -> float:
        """Time for a weight-stationary (GEMV / skinny-GEMM) kernel.

        ``weight_bytes`` is the FP16 weight traffic; activations are tiny in
        decode and are ignored.  ``batch`` scales FLOPs but not weight bytes
        (weights are reused across the batch), which is what makes batched
        decode progressively compute-bound.
        """
        if weight_bytes < 0:
            raise ValueError("weight_bytes must be non-negative")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if weight_bytes == 0:
            return 0.0
        bandwidth = self.effective_bandwidth
        if scattered:
            bandwidth *= self.gather_efficiency
        flops = weight_bytes * batch  # 2 FLOPs per 2-byte FP16 weight
        t_memory = weight_bytes / bandwidth
        t_compute = flops / self.effective_flops
        return max(t_memory, t_compute) + self.kernel_launch_overhead

    def matmul_time_batch(
        self,
        weight_bytes: np.ndarray,
        batch: int = 1,
        *,
        scattered: bool = False,
        check: bool = True,
    ) -> np.ndarray:
        """Vectorized :meth:`matmul_time` over an array of byte counts.

        Scalar-preserving: each element matches the scalar path bit-for-bit
        (including the exactly-zero fast path, which skips the kernel-launch
        overhead).  ``check=False`` skips the input validation scan for
        callers whose loads are non-negative by construction (the decode
        loop calls this every step).
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if check:
            weight_bytes = np.asarray(weight_bytes, dtype=np.float64)
            if (weight_bytes < 0).any():
                raise ValueError("weight_bytes must be non-negative")
        bandwidth = self.effective_bandwidth
        if scattered:
            bandwidth *= self.gather_efficiency
        t_memory = weight_bytes / bandwidth
        t_compute = weight_bytes * batch / self.effective_flops
        times = np.maximum(t_memory, t_compute) + self.kernel_launch_overhead
        # exactly-zero loads cost exactly 0.0, as in the scalar path
        times *= weight_bytes != 0
        return times

    def attention_time(self, kv_bytes: float) -> float:
        """Decode attention over a resident KV cache (bandwidth bound)."""
        if kv_bytes < 0:
            raise ValueError("kv_bytes must be non-negative")
        if kv_bytes == 0:
            return 0.0
        return (
            kv_bytes / self.effective_bandwidth + self.kernel_launch_overhead
        )

    def prefill_time(
        self, weight_bytes: float, prompt_len: int, batch: int = 1
    ) -> float:
        """Prefill one full forward pass over ``prompt_len`` tokens.

        Prefill is compute-bound GEMM; weights are read once.
        """
        if prompt_len < 1:
            raise ValueError("prompt_len must be >= 1")
        flops = weight_bytes * prompt_len * batch
        t_compute = flops / self.effective_flops
        t_memory = weight_bytes / self.effective_bandwidth
        return max(t_compute, t_memory)


def _gpu(
    name: str, mem_gib: float, bw_gbs: float, fp16: float, tops: float
) -> GPUSpec:
    return GPUSpec(
        name=name,
        memory_bytes=int(mem_gib * GIB),
        memory_bandwidth=bw_gbs * 1e9,
        fp16_tflops=fp16,
        tensor_tops=tops,
    )


#: Consumer GPU used by the main Hermes configuration (§V-A1).
RTX_4090 = _gpu("RTX 4090", 24, 936, 82.6, 330)
#: Sensitivity-study GPUs (§V-E2).
RTX_3090 = _gpu("RTX 3090", 24, 936, 35.6, 142)
TESLA_T4 = _gpu("Tesla T4", 16, 320, 65.0, 65)
#: Server GPU backing the TensorRT-LLM comparison (§V-F).
A100_40GB = _gpu("A100-40GB-SXM4", 40, 1555, 78.0, 312)

GPU_REGISTRY: dict[str, GPUSpec] = {
    gpu.name.lower(): gpu for gpu in (RTX_4090, RTX_3090, TESLA_T4, A100_40GB)
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by (case-insensitive) name."""
    try:
        return GPU_REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(GPU_REGISTRY))
        raise KeyError(f"unknown GPU {name!r}; known GPUs: {known}") from None
