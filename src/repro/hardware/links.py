"""Interconnect models: PCIe, DIMM-link, and the host memory bus.

Every byte that moves between devices in any of the simulated systems goes
through one of these three links, so their fidelity determines the headline
comparisons.  Each link is modelled as latency + size/effective-bandwidth,
with an efficiency factor covering protocol and driver overheads:

* **PCIe 4.0 x16** (GPU <-> host): 64 GB/s raw.  Sustained host-to-device
  copies of pinned memory reach ~80 % of raw; pageable copies (what naive
  offloading frameworks issue) reach ~40 % because of the staging memcpy.
* **DIMM-link** (DIMM <-> DIMM): 25 GB/s bidirectional point-to-point links
  (Table II), used for cold-neuron remapping.  The paper reports >62x faster
  inter-DIMM movement than bouncing through the host.
* **Host memory bus** (CPU <-> DIMMs): 89.6 GB/s on the i9-13900K reference
  host (§V-A2), shared by CPU-side compute in Hermes-host.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class Link:
    """A point-to-point transfer channel."""

    name: str
    bandwidth: float  # bytes/s, raw
    latency: float  # seconds per transfer
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"{self.name}: efficiency must lie in (0, 1]")

    @property
    def effective_bandwidth(self) -> float:
        return self.bandwidth * self.efficiency

    def transfer_time(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` over this link (0 bytes is free)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency + num_bytes / self.effective_bandwidth

    def transfer_time_batch(self, num_bytes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`transfer_time` over an array of sizes.

        Scalar-preserving: zero-byte entries cost exactly 0.0, everything
        else ``latency + size / effective_bandwidth``, as in the scalar
        path.
        """
        num_bytes = np.asarray(num_bytes, dtype=np.float64)
        if np.any(num_bytes < 0):
            raise ValueError("num_bytes must be non-negative")
        times = self.latency + num_bytes / self.effective_bandwidth
        return np.where(num_bytes == 0, 0.0, times)


def pcie4_x16(*, pinned: bool = True) -> Link:
    """PCIe 4.0 x16 between GPU and host memory.

    ``pinned`` selects the DMA-from-pinned-memory efficiency used by tuned
    runtimes (FlexGen, Deja Vu, Hermes) versus the pageable-copy efficiency
    of framework-default offloading (HuggingFace Accelerate).
    """
    return Link(
        name="PCIe 4.0 x16" + ("" if pinned else " (pageable)"),
        bandwidth=64e9,
        latency=10e-6,
        efficiency=0.80 if pinned else 0.40,
    )


def dimm_link() -> Link:
    """Inter-DIMM point-to-point link (Table II: 25 GB/s per link)."""
    return Link(
        name="DIMM-link", bandwidth=25e9, latency=1e-6, efficiency=0.90
    )


def host_memory_bus(bandwidth: float = 89.6e9) -> Link:
    """CPU load/store path to commodity DIMMs (i9-13900K: 89.6 GB/s)."""
    return Link(
        name="host memory bus",
        bandwidth=bandwidth,
        latency=0.2e-6,
        efficiency=0.85,
    )


@dataclasses.dataclass(frozen=True)
class HostCPU:
    """Host processor used for scheduling and (in Hermes-host) cold compute.

    The CPU GEMV is bandwidth-bound: its effective FP16 throughput is far
    above what the memory bus can feed, so cold-neuron compute time on the
    CPU is ``bytes / memory_bus.effective_bandwidth`` — which is precisely
    why the paper replaces the host CPU with NDP-DIMMs.
    """

    name: str = "Intel i9-13900K"
    memory_bus: Link = dataclasses.field(default_factory=host_memory_bus)
    fp16_gflops: float = 1100.0  # AVX-512/AMX-class peak, effectively unused
    #: achieved fraction of the memory bus on *scattered* sparse GEMV —
    #: gathering non-contiguous neuron rows defeats the prefetchers;
    #: PowerInfer-class CPU kernels measure ~1/3 of STREAM bandwidth.
    scatter_efficiency: float = 0.35

    def gemv_time(
        self, weight_bytes: float, batch: int = 1, *, scattered: bool = True
    ) -> float:
        """Sparse GEMV over ``weight_bytes`` of cold neurons, on the CPU."""
        if weight_bytes < 0:
            raise ValueError("weight_bytes must be non-negative")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if weight_bytes == 0:
            return 0.0
        bandwidth = self.memory_bus.effective_bandwidth
        if scattered:
            bandwidth *= self.scatter_efficiency
        t_memory = weight_bytes / bandwidth
        t_compute = weight_bytes * batch / (self.fp16_gflops * 1e9)
        return max(t_memory, t_compute)
