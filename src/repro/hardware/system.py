"""Whole-machine configuration: GPU + host + NDP-DIMM pool + links.

``Machine`` is the hardware substrate every simulated inference system runs
on.  The default matches the paper's evaluation platform (§V-A1): one RTX
4090, eight 32 GB NDP-DIMMs, PCIe 4.0 x16, an i9-13900K host.  The cost
model backs the paper's headline "~5 % of the budget" comparison against a
5x A100 TensorRT-LLM server (§V-F).
"""

from __future__ import annotations

import dataclasses

from .dimm import NDPDIMM, default_dimm
from .gpu import GPUSpec, RTX_4090
from .links import HostCPU, Link, pcie4_x16


@dataclasses.dataclass(frozen=True)
class Machine:
    """A budget inference box: one GPU plus a pool of (NDP-)DIMMs."""

    gpu: GPUSpec = RTX_4090
    dimm: NDPDIMM = dataclasses.field(default_factory=default_dimm)
    num_dimms: int = 8
    pcie: Link = dataclasses.field(default_factory=pcie4_x16)
    host: HostCPU = dataclasses.field(default_factory=HostCPU)
    #: one-shot GPU<->DIMM synchronisation (barrier + doorbell), Eq. 3's Tsync
    sync_latency: float = 15e-6

    def __post_init__(self) -> None:
        if self.num_dimms < 1:
            raise ValueError("num_dimms must be >= 1")
        if self.sync_latency < 0:
            raise ValueError("sync_latency must be non-negative")

    # ------------------------------------------------------------------
    @property
    def dimm_capacity_total(self) -> int:
        return self.dimm.capacity_bytes * self.num_dimms

    @property
    def dimm_bandwidth_total(self) -> float:
        """Aggregate DIMM-internal stream bandwidth across the pool."""
        return self.dimm.internal_bandwidth * self.num_dimms

    @property
    def host_bandwidth(self) -> float:
        """Host-CPU visible DRAM bandwidth (bounded by the memory bus)."""
        return self.host.memory_bus.effective_bandwidth

    def fits_on_dimms(self, num_bytes: int) -> bool:
        return num_bytes <= self.dimm_capacity_total

    def with_dimms(self, num_dimms: int) -> "Machine":
        """Pool-size variant (Fig. 14 sensitivity study)."""
        return dataclasses.replace(self, num_dimms=num_dimms)

    def with_gpu(self, gpu: GPUSpec) -> "Machine":
        """GPU variant (Fig. 15 sensitivity study)."""
        return dataclasses.replace(self, gpu=gpu)

    def with_multipliers(self, multipliers: int) -> "Machine":
        """GEMV-unit variant (Fig. 16 design-space exploration)."""
        return dataclasses.replace(
            self, dimm=self.dimm.with_multipliers(multipliers)
        )


# ----------------------------------------------------------------------
# Cost model (paper §V-F)
# ----------------------------------------------------------------------
#: approximate street prices in USD used by the paper's budget argument
COMPONENT_COST_USD = {
    "RTX 4090": 1600.0,
    "RTX 3090": 800.0,
    "Tesla T4": 700.0,
    "A100-40GB-SXM4": 10000.0,
    "NDP-DIMM-32GB": 100.0,
    "host-platform": 400.0,
}


def machine_cost_usd(machine: Machine) -> float:
    """Estimated bill of materials for a Hermes-style machine."""
    gpu_cost = COMPONENT_COST_USD.get(machine.gpu.name, 1600.0)
    dimm_cost = COMPONENT_COST_USD["NDP-DIMM-32GB"] * machine.num_dimms
    return gpu_cost + dimm_cost + COMPONENT_COST_USD["host-platform"]


def server_cost_usd(num_a100: int = 5) -> float:
    """Estimated cost of the TensorRT-LLM reference server (5x A100)."""
    if num_a100 < 1:
        raise ValueError("num_a100 must be >= 1")
    return COMPONENT_COST_USD["A100-40GB-SXM4"] * num_a100
