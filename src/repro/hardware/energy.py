"""Energy model: joules per token for each simulated system.

An extension beyond the paper's latency evaluation: the same byte/FLOP
accounting that produces the timing also yields energy, using standard
per-bit access energies plus Table II's DIMM-link figure (1.17 pJ/b).
This backs a tokens-per-joule comparison — the budget argument of §V-F
restated for operating cost.

Per-bit transfer energies (pJ/bit):

* DRAM array access (activate+read, amortised): ~2.3 (DDR4 class)
* DDR4 channel interface (I/O + termination): ~7.0
* GDDR6 access at the GPU: ~2.6
* PCIe 4.0 (SerDes + protocol): ~5.5
* DIMM-link: 1.17 (Table II)

Compute energies (pJ/FLOP): GPU tensor-core FP16 ~0.5; bit-serial NDP
MAC ~0.8 (7 nm synthesis class); CPU AVX FP16 ~3.0.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # avoid a circular import at runtime
    from ..core.result import RunResult
    from ..models import ModelSpec


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy coefficients (picojoules)."""

    dram_array_pj_per_bit: float = 2.3
    dram_channel_pj_per_bit: float = 7.0
    gddr_pj_per_bit: float = 2.6
    pcie_pj_per_bit: float = 5.5
    dimm_link_pj_per_bit: float = 1.17  # Table II
    gpu_pj_per_flop: float = 0.5
    ndp_pj_per_flop: float = 0.8
    cpu_pj_per_flop: float = 3.0
    #: idle/static power of the whole box, charged over wall time
    static_watts: float = 60.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) <= 0:
                raise ValueError(f"{field.name} must be positive")

    # ------------------------------------------------------------------
    def transfer_energy(self, num_bytes: float, pj_per_bit: float) -> float:
        """Joules to move ``num_bytes`` at ``pj_per_bit``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * 8 * pj_per_bit * 1e-12

    def compute_energy(self, flops: float, pj_per_flop: float) -> float:
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops * pj_per_flop * 1e-12


def decode_energy_per_token(
    result: RunResult,
    model: ModelSpec,
    machine,
    *,
    energy: EnergyModel | None = None,
) -> float:
    """Estimated joules per generated token for a simulated run.

    Reconstructs byte/FLOP counts from the run's latency breakdown and the
    devices' effective rates: each breakdown category was produced by a
    known device, so ``seconds x bytes-per-second x pJ/bit`` recovers the
    traffic energy without re-simulating.
    """
    energy = energy or EnergyModel()
    breakdown = result.breakdown
    n = result.n_decode_tokens

    def rate_bytes(key: str, bandwidth: float) -> float:
        return breakdown.get(key, 0.0) * bandwidth

    joules = 0.0
    if result.system in ("Hermes", "Hermes-base"):
        # FC traffic splits between GDDR (GPU share) and the DIMM arrays
        fc_bytes = rate_bytes("fc", machine.gpu.effective_bandwidth * 0.5)
        fc_bytes += rate_bytes("fc", machine.dimm_bandwidth_total * 0.5)
        joules += energy.transfer_energy(fc_bytes / 2, energy.gddr_pj_per_bit)
        joules += energy.transfer_energy(
            fc_bytes / 2, energy.dram_array_pj_per_bit
        )
        attn_bytes = rate_bytes("attention", machine.dimm_bandwidth_total)
        joules += energy.transfer_energy(
            attn_bytes, energy.dram_array_pj_per_bit
        )
    else:
        # offloading systems: FC reads GDDR, communication crosses PCIe
        fc_bytes = rate_bytes("fc", machine.gpu.effective_bandwidth)
        joules += energy.transfer_energy(fc_bytes, energy.gddr_pj_per_bit)
        attn_bytes = rate_bytes("attention", machine.gpu.effective_bandwidth)
        joules += energy.transfer_energy(attn_bytes, energy.gddr_pj_per_bit)
    comm_bytes = rate_bytes("communication", machine.pcie.effective_bandwidth)
    joules += energy.transfer_energy(
        comm_bytes, energy.pcie_pj_per_bit + energy.dram_channel_pj_per_bit
    )

    # compute energy: weights touched imply FLOPs (1 FLOP per weight byte
    # per batch element)
    active_bytes = model.total_weight_bytes * model.activation_density
    flops_per_token = active_bytes * result.batch
    joules += energy.compute_energy(
        flops_per_token * n * 0.8, energy.gpu_pj_per_flop
    )
    joules += energy.compute_energy(
        flops_per_token * n * 0.2, energy.ndp_pj_per_flop
    )

    joules += energy.static_watts * result.decode_time
    return joules / (n * result.batch)


def tokens_per_joule(
    result: RunResult,
    model: ModelSpec,
    machine,
    *,
    energy: EnergyModel | None = None,
) -> float:
    """Energy efficiency of a simulated run (decode stage)."""
    per_token = decode_energy_per_token(result, model, machine, energy=energy)
    return 1.0 / per_token
