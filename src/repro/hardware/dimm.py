"""NDP-DIMM device: DDR4 DIMM + NDP core + DIMM-link endpoint.

Composes the DRAM timing substrate (:mod:`repro.dram`) with the NDP core
model (:mod:`repro.ndp`) into the per-DIMM device the system simulations
schedule work onto.  The default configuration is exactly Table II:
32 GB DDR4-3200, 4 ranks x 2 bank groups x 4 banks, one NDP core with a
256-multiplier GEMV unit, and a 25 GB/s DIMM-link.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from ..dram import (
    DDR4Timing,
    DIMMGeometry,
    channel_stream_bandwidth,
    internal_stream_bandwidth,
    scattered_access_efficiency,
)
from ..ndp import NDPCore
from .links import Link, dimm_link


@dataclasses.dataclass(frozen=True)
class NDPDIMM:
    """One NDP-enhanced DIMM module."""

    geometry: DIMMGeometry = dataclasses.field(default_factory=DIMMGeometry)
    timing: DDR4Timing = dataclasses.field(default_factory=DDR4Timing)
    core: NDPCore = dataclasses.field(default_factory=NDPCore)
    link: Link = dataclasses.field(default_factory=dimm_link)

    @property
    def capacity_bytes(self) -> int:
        return self.geometry.capacity_bytes

    @functools.cached_property
    def internal_bandwidth(self) -> float:
        """Sustained bandwidth the NDP core sees (all lanes in parallel).

        Cached: the geometry/timing fields are frozen, and the decode hot
        path queries this once per GEMV.
        """
        return internal_stream_bandwidth(self.geometry, self.timing)

    @functools.cached_property
    def channel_bandwidth(self) -> float:
        """Sustained bandwidth of the external channel interface."""
        return channel_stream_bandwidth(self.geometry, self.timing)

    # ------------------------------------------------------------------
    def effective_stream_bandwidth(self, run_bytes: float) -> float:
        """Internal bandwidth adjusted for contiguous-run length.

        Cold neurons are scattered, but each neuron's weights are a multi-KB
        contiguous run, so the derating is mild; see
        :func:`repro.dram.scattered_access_efficiency`.
        """
        eff = scattered_access_efficiency(
            self.geometry, self.timing, run_bytes
        )
        return self.internal_bandwidth * eff

    def gemv_time(
        self,
        weight_bytes: float,
        batch: int = 1,
        *,
        run_bytes: float | None = None,
    ) -> float:
        """Sparse GEMV over ``weight_bytes`` of resident cold neurons."""
        bandwidth = (self.internal_bandwidth if run_bytes is None
                     else self.effective_stream_bandwidth(run_bytes))
        return self.core.gemv_time(weight_bytes, bandwidth, batch)

    def gemv_time_batch(
        self,
        weight_bytes: np.ndarray,
        batch: int = 1,
        *,
        run_bytes: float | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`gemv_time` over an array of byte counts.

        The decode fast path calls this once per FC block with the per-DIMM
        byte loads instead of looping ``gemv_time`` over the pool; every
        element equals the scalar result bit-for-bit.
        """
        bandwidth = (self.internal_bandwidth if run_bytes is None
                     else self.effective_stream_bandwidth(run_bytes))
        return self.core.gemv_time_batch(weight_bytes, bandwidth, batch)

    def attention_time(
        self, kv_bytes: float, context_len: int, num_heads: int, batch: int = 1
    ) -> float:
        """Decode attention over this DIMM's KV shard."""
        return self.core.attention_time(
            kv_bytes, self.internal_bandwidth, context_len, num_heads, batch
        )

    def attention_time_span(
        self, kv_bytes, context_len, num_heads: int, batch: int = 1
    ):
        """Vectorized :meth:`attention_time` over a span of decode steps."""
        return self.core.attention_time_span(
            kv_bytes, self.internal_bandwidth, context_len, num_heads, batch
        )

    def migration_time(self, num_bytes: float) -> float:
        """Cold-neuron remap to a neighbouring DIMM over the DIMM-link."""
        return self.link.transfer_time(num_bytes)

    def with_multipliers(self, multipliers: int) -> "NDPDIMM":
        """DIMM variant for the Fig. 16 design-space exploration."""
        return dataclasses.replace(
            self, core=self.core.with_multipliers(multipliers)
        )


def default_dimm() -> NDPDIMM:
    """The Table II NDP-DIMM."""
    return NDPDIMM()
