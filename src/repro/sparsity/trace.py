"""Activation traces: which neuron groups fire for each (token, layer).

An :class:`ActivationTrace` is the ground truth every simulated system
consumes.  The paper drives its evaluation with activations recorded from
real models on ChatGPT-prompts/Alpaca; here the trace comes from the
calibrated synthetic generator in :mod:`repro.sparsity.generator` (see
DESIGN.md for the substitution argument).  The trace also records the true
layer-correlation structure used to generate it, which plays the role of the
paper's offline-profiled neuron correlation table.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .layout import NeuronLayout


@dataclasses.dataclass
class ActivationTrace:
    """Boolean activation record for a full generation run.

    ``layers[l]`` has shape ``[n_tokens, groups_per_layer]``; token index
    ``t < prompt_len`` rows describe prefill positions, the rest are decode
    steps.  ``parents[l]`` holds the top-2 correlated predecessor groups in
    layer ``l-1`` for each group of layer ``l`` (``parents[0]`` is unused
    and stays None).
    """

    layout: NeuronLayout
    layers: list[np.ndarray]
    parents: list[np.ndarray | None]
    prompt_len: int
    seed: int

    def __post_init__(self) -> None:
        if len(self.layers) != self.layout.model.num_layers:
            raise ValueError("one activation matrix per layer required")
        expected = None
        for l, matrix in enumerate(self.layers):
            if matrix.dtype != bool:
                raise ValueError(f"layer {l}: activation matrix must be bool")
            if matrix.shape[1] != self.layout.groups_per_layer:
                raise ValueError(
                    f"layer {l}: {matrix.shape[1]} groups != layout "
                    f"{self.layout.groups_per_layer}")
            if expected is None:
                expected = matrix.shape[0]
            elif matrix.shape[0] != expected:
                raise ValueError("all layers must cover the same tokens")
        if expected is None or expected <= 0:
            raise ValueError("trace must contain at least one token")
        if not 0 <= self.prompt_len <= expected:
            raise ValueError("prompt_len out of range")

    # ------------------------------------------------------------------
    @property
    def n_tokens(self) -> int:
        return self.layers[0].shape[0]

    @property
    def n_decode_tokens(self) -> int:
        return self.n_tokens - self.prompt_len

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def active(self, layer: int, token: int) -> np.ndarray:
        """Boolean activation vector of one (layer, token)."""
        return self.layers[layer][token]

    def _ensure_stacked(self) -> np.ndarray:
        """Lazily-built (num_layers, tokens, groups) activation stack.

        The trace is treated as immutable once stacked.
        """
        stacked = getattr(self, "_stacked", None)
        if stacked is None:
            stacked = np.stack(self.layers)
            self._stacked = stacked
        return stacked

    def active_matrix(self, token: int) -> np.ndarray:
        """(num_layers, groups) activation matrix of one token.

        Row ``l`` equals ``active(l, token)``; the matrix is one slice of
        the lazy stack, so the decode fast path reads a whole token at
        once instead of re-indexing per layer.
        """
        return self._ensure_stacked()[:, token]

    def active_span(self, tokens: "list[int] | slice") -> np.ndarray:
        """(len(tokens), num_layers, groups) activation stack of a span.

        Element ``[i]`` equals ``active_matrix(tokens[i])``; the fused
        decode path reads a whole run of consecutive tokens in one
        gather instead of re-slicing the stack per step.  A ``slice``
        (the common non-wrapping case) yields a copy-free view.
        """
        return self._ensure_stacked()[:, tokens].swapaxes(0, 1)

    def density(self) -> float:
        """Overall fraction of active (group, token) pairs."""
        total = sum(m.sum() for m in self.layers)
        cells = sum(m.size for m in self.layers)
        return float(total / cells)

    def frequencies(
        self, layer: int, *, tokens: slice | None = None
    ) -> np.ndarray:
        """Empirical activation frequency per group over a token range."""
        matrix = self.layers[layer] if tokens is None \
            else self.layers[layer][tokens]
        if matrix.shape[0] == 0:
            raise ValueError("token range selects no tokens")
        return matrix.mean(axis=0)

    def prefill_frequencies(self, layer: int) -> np.ndarray:
        """Activation frequency during the prompting stage, which Hermes
        uses to initialise the neuron state table (§IV-C1)."""
        if self.prompt_len == 0:
            raise ValueError("trace has no prefill tokens")
        return self.frequencies(layer, tokens=slice(0, self.prompt_len))

    def decode_tokens(self) -> range:
        """Token indices belonging to the generation stage."""
        return range(self.prompt_len, self.n_tokens)
