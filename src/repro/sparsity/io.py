"""Trace serialisation: save and reload activation traces as ``.npz``.

Long experiments reuse the same traces; 70B-scale generation takes seconds
while loading takes milliseconds, and a serialised trace pins the exact
activations a result was produced from (reproducibility across machines
without replaying the generator's RNG).
"""

from __future__ import annotations

import pathlib

import numpy as np

from ..models import get_model
from .layout import NeuronLayout
from .trace import ActivationTrace

_FORMAT_VERSION = 1


def save_trace(trace: ActivationTrace, path: str | pathlib.Path) -> None:
    """Serialise ``trace`` to a compressed ``.npz`` archive."""
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "prompt_len": np.array([trace.prompt_len]),
        "seed": np.array([trace.seed]),
        "granularity": np.array([trace.layout.granularity]),
        "model_name": np.array([trace.layout.model.name]),
    }
    for l, matrix in enumerate(trace.layers):
        arrays[f"layer_{l}"] = np.packbits(matrix, axis=1)
        arrays[f"layer_{l}_cols"] = np.array([matrix.shape[1]])
    for l, parents in enumerate(trace.parents):
        if parents is not None:
            arrays[f"parents_{l}"] = parents
    np.savez_compressed(path, **arrays)


def load_trace(path: str | pathlib.Path) -> ActivationTrace:
    """Reload a trace saved by :func:`save_trace`."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        model = get_model(str(data["model_name"][0]))
        granularity = int(data["granularity"][0])
        layout = NeuronLayout.build(model, granularity)
        layers = []
        parents: list[np.ndarray | None] = []
        for l in range(model.num_layers):
            packed = data[f"layer_{l}"]
            cols = int(data[f"layer_{l}_cols"][0])
            layers.append(np.unpackbits(packed, axis=1)[:, :cols].astype(bool))
            key = f"parents_{l}"
            parents.append(data[key] if key in data else None)
        return ActivationTrace(
            layout=layout,
            layers=layers,
            parents=parents,
            prompt_len=int(data["prompt_len"][0]),
            seed=int(data["seed"][0]),
        )
