"""Power-law neuron activation frequencies.

The paper's central observation (§I, §III-A) is that activation sparsity
follows a power law: about 20 % of neurons ("hot") carry about 80 % of the
computation, the other 80 % ("cold") carry about 20 %.  This module produces
per-neuron activation probabilities with exactly that mass concentration.

For a continuous power law ``p(rank) ~ rank^-a`` the activation mass held by
the top fraction ``f`` of neurons is ``f^(1-a)``; solving ``f^(1-a) = share``
gives the exponent analytically, so the generated distribution hits the
requested hot-fraction/hot-share pair by construction (up to clipping).
"""

from __future__ import annotations

import math

import numpy as np


def power_law_exponent(
    hot_fraction: float = 0.2, hot_share: float = 0.8
) -> float:
    """Exponent ``a`` such that the top ``hot_fraction`` of ranks holds
    ``hot_share`` of the total mass."""
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError("hot_fraction must lie in (0, 1)")
    if not 0.0 < hot_share < 1.0:
        raise ValueError("hot_share must lie in (0, 1)")
    if hot_share < hot_fraction:
        raise ValueError("hot_share below hot_fraction is not a power law "
                         "concentration (mass must concentrate in the head)")
    return 1.0 - math.log(hot_share) / math.log(hot_fraction)


def _exponential_segment(
    length: int, start: float, target_mass: float
) -> np.ndarray:
    """Monotone segment ``start * exp(-b * i)`` whose sum is
    ``target_mass``, with ``b`` solved by bisection.

    If even a flat segment at ``start`` cannot reach the mass (the target
    exceeds ``length * start``), the segment is lifted to the constant
    value that does.
    """
    if length <= 0:
        return np.zeros(0)
    if target_mass <= 0:
        return np.zeros(length)
    if target_mass >= length * start:
        return np.full(length, target_mass / length)
    # a geometric segment's sum is bounded below by its first element, so
    # degenerately small targets lower the starting value instead
    start = min(start, target_mass)
    idx = np.arange(length, dtype=np.float64)

    def mass(b: float) -> float:
        return float((start * np.exp(-b * idx)).sum())

    lo, hi = 0.0, 1.0
    while mass(hi) > target_mass:
        hi *= 2.0
        if hi > 1e6:  # pragma: no cover - numerically unreachable
            break
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if mass(mid) > target_mass:
            lo = mid
        else:
            hi = mid
    return start * np.exp(-0.5 * (lo + hi) * idx)


def power_law_frequencies(
    n: int,
    density: float,
    *,
    hot_fraction: float = 0.2,
    hot_share: float = 0.8,
    p_max: float = 0.99,
    p_min: float = 1e-4,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
) -> np.ndarray:
    """Per-neuron activation probabilities with mean ``density``.

    The rank distribution is built from two monotone exponential segments:
    a *head* of the top ``hot_fraction`` of neurons starting saturated at
    ``p_max`` and carrying exactly ``hot_share`` of the total activation
    mass, and a *tail* carrying the remainder.  This hits the paper's
    20 %/80 % statistic by construction, keeps the head saturated (real
    ReLU LLMs have a band of near-always-on channels, which is what gives
    adjacent tokens their high activated-set overlap, Fig. 4a), and leaves
    genuine mass in the cold tail.  ``shuffle=True`` randomises which
    *index* gets which rank, since physical neuron order carries no
    frequency information.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 < density < 1.0:
        raise ValueError("density must lie in (0, 1)")
    if not 0.0 < p_min < p_max <= 1.0:
        raise ValueError("need 0 < p_min < p_max <= 1")
    # validates the (hot_fraction, hot_share) pair
    power_law_exponent(hot_fraction, hot_share)
    total_mass = density * n
    k = max(1, int(round(hot_fraction * n)))
    head_mass = min(hot_share * total_mass, k * p_max)
    head = _exponential_segment(k, p_max, head_mass)
    tail_start = min(p_max, float(head[-1])) if k else p_max
    tail = _exponential_segment(
        n - k, tail_start, total_mass - float(head.sum())
    )
    probs = np.clip(np.concatenate([head, tail]), p_min, p_max)
    if shuffle:
        rng = np.random.default_rng() if rng is None else rng
        rng.shuffle(probs)
    return probs


def compute_share(frequencies: np.ndarray, fraction: float) -> float:
    """Fraction of total activation mass held by the most-active
    ``fraction`` of neurons (the paper's 20 %/80 % statistic)."""
    if frequencies.ndim != 1 or frequencies.size == 0:
        raise ValueError("frequencies must be a non-empty 1-D array")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    k = max(1, int(round(fraction * frequencies.size)))
    top = np.sort(frequencies)[::-1][:k]
    return float(top.sum() / frequencies.sum())
