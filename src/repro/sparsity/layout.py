"""Neuron-group layout: mapping tracked groups to weight bytes and FLOPs.

The simulator tracks neurons in bundles of ``granularity`` contiguous
neurons (``granularity=1`` is per-neuron tracking, exactly the paper; larger
bundles keep 70B-scale simulations tractable).  Within each layer, groups
are ordered ``[attention groups | MLP groups]``; attention and MLP neurons
have different per-neuron weight footprints, so the layout precomputes the
byte weight of every group once and every consumer (partitioner, predictor
accounting, timing) indexes into it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..models import ModelSpec, neuron_groups


@dataclasses.dataclass(frozen=True)
class NeuronLayout:
    """Per-layer group layout for one model at one tracking granularity."""

    model: ModelSpec
    granularity: int
    attn_groups: int
    mlp_groups: int
    #: weight bytes of each group in one layer, shape [groups_per_layer]
    group_bytes: np.ndarray
    #: neuron count of each group (the tail group may be partial)
    group_neurons: np.ndarray
    #: boolean mask, True where the group belongs to the MLP block
    is_mlp: np.ndarray

    @classmethod
    def build(cls, model: ModelSpec, granularity: int = 32) -> "NeuronLayout":
        attn_groups, mlp_groups = neuron_groups(model, granularity)
        counts = []
        byte_weights = []
        for total, per_neuron, n_groups in (
            (model.attn_neurons_per_layer, model.attn_neuron_bytes,
             attn_groups),
            (model.mlp_neurons_per_layer, model.mlp_neuron_bytes,
             mlp_groups),
        ):
            sizes = np.full(n_groups, granularity, dtype=np.int64)
            remainder = total - granularity * (n_groups - 1)
            sizes[-1] = remainder
            counts.append(sizes)
            byte_weights.append(sizes * per_neuron)
        group_neurons = np.concatenate(counts)
        group_bytes = np.concatenate(byte_weights)
        is_mlp = np.zeros(attn_groups + mlp_groups, dtype=bool)
        is_mlp[attn_groups:] = True
        return cls(
            model=model,
            granularity=granularity,
            attn_groups=attn_groups,
            mlp_groups=mlp_groups,
            group_bytes=group_bytes,
            group_neurons=group_neurons,
            is_mlp=is_mlp,
        )

    # ------------------------------------------------------------------
    @property
    def groups_per_layer(self) -> int:
        return self.attn_groups + self.mlp_groups

    @property
    def total_groups(self) -> int:
        return self.groups_per_layer * self.model.num_layers

    @property
    def attn_slice(self) -> slice:
        return slice(0, self.attn_groups)

    @property
    def mlp_slice(self) -> slice:
        return slice(self.attn_groups, self.groups_per_layer)

    def bytes_of(self, mask: np.ndarray) -> int:
        """Total weight bytes of the groups selected by a boolean mask."""
        if mask.shape != (self.groups_per_layer,):
            raise ValueError(
                f"mask shape {mask.shape} != ({self.groups_per_layer},)"
            )
        return int(self.group_bytes[mask].sum())

    def sparse_bytes_per_layer(self) -> int:
        return int(self.group_bytes.sum())
