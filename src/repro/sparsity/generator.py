"""Calibrated synthetic activation-trace generator.

The generator reproduces the three measured statistics the paper's
mechanisms exploit, so that every Hermes component exercises the same code
path it would against recorded activations:

1. **Power-law frequency** (§III-A): per-group activation probabilities from
   :func:`repro.sparsity.frequencies.power_law_frequencies` — 20 % of
   neurons carry ~80 % of activations.
2. **Token-wise similarity** (Fig. 4a): a per-neuron Markov chain keeps the
   previous token's state with probability ``kappa`` and resamples from the
   base frequency otherwise, giving similarity that decays geometrically
   with token distance and plateaus at the stationary overlap — the same
   shape as Fig. 4a.
3. **Layer-wise correlation** (Fig. 4b): each group in layer ``l`` copies
   its rank-matched parent in layer ``l-1`` with probability ``gamma``,
   making P(child | parent) = gamma + (1-gamma)·p — the >90 % conditional
   probabilities of Fig. 4b.

Two non-stationarities make the *online* machinery earn its keep, matching
the paper's measurements:

* ``phase_shift`` — at the prefill/decode boundary a fraction of neurons
  swap activation probabilities with a partner, reproducing the finding
  that ~52 % of offline-initialised hot neurons change activity during
  inference (§III-B).
* ``drift_rate`` — during decode a small fraction of neurons swap
  probabilities every token, so the hot set keeps evolving and a fixed
  partition decays over time (the 1.63x oracle gap of §III-B).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..models import ModelSpec
from .frequencies import power_law_frequencies
from .layout import NeuronLayout
from .trace import ActivationTrace


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic activation process."""

    prompt_len: int = 128
    decode_len: int = 128
    granularity: int = 32
    #: probability a neuron keeps its previous-token state
    kappa: float = 0.96
    #: probability a group copies its layer-(l-1) parent
    gamma: float = 0.15
    #: fraction of neurons whose frequency is swapped at the decode boundary
    phase_shift: float = 0.25
    #: per-token fraction of neurons whose frequency swaps during decode
    drift_rate: float = 0.0015
    hot_fraction: float = 0.2
    hot_share: float = 0.8
    #: overrides the model's activation_density when set
    density: float | None = None

    def __post_init__(self) -> None:
        if self.prompt_len < 1 or self.decode_len < 1:
            raise ValueError("prompt_len and decode_len must be >= 1")
        if self.granularity < 1:
            raise ValueError("granularity must be >= 1")
        for name in ("kappa", "gamma", "phase_shift", "drift_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.density is not None and not 0.0 < self.density < 1.0:
            raise ValueError("density must lie in (0, 1)")

    @property
    def n_tokens(self) -> int:
        return self.prompt_len + self.decode_len


def _rank_matched_parents(
    p_prev: np.ndarray, p_cur: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Top-2 parent groups in the previous layer for each current group.

    Parents are rank-matched (the i-th most active child maps to the i-th
    and (i+1)-th most active parents) so copying a parent preserves the
    marginal frequency while creating strong conditional correlation.
    """
    order_prev = np.argsort(p_prev)[::-1]
    order_cur = np.argsort(p_cur)[::-1]
    n_prev, n_cur = p_prev.size, p_cur.size
    parents = np.empty((n_cur, 2), dtype=np.int64)
    scale = n_prev / n_cur
    for rank_cur, child in enumerate(order_cur):
        rank_prev = min(int(rank_cur * scale), n_prev - 1)
        parents[child, 0] = order_prev[rank_prev]
        parents[child, 1] = order_prev[(rank_prev + 1) % n_prev]
    return parents


def _swap_identities(
    position: np.ndarray, fraction: float, rng: np.random.Generator
) -> None:
    """Swap the *physical position* of a random ``fraction`` of logical
    neurons with disjoint random partners, in place.

    The underlying logical activation process is stationary; context
    switches and drift only permute which physical neuron plays which
    logical role.  This preserves the frequency distribution and — because
    layer correlation lives in logical space — the parent-child structure,
    while making the physical hot set move, which is exactly the
    non-stationarity Hermes' online machinery must track (and exactly why
    the offline-sampled correlation table slowly goes stale, §V-C).
    """
    n = position.size
    k = int(round(fraction * n))
    if k == 0:
        return
    k = min(k, n // 2)
    chosen = rng.choice(n, size=2 * k, replace=False)
    movers, partners = chosen[:k], chosen[k:]
    position[movers], position[partners] = (
        position[partners].copy(), position[movers].copy()
    )


def generate_trace(
    model: ModelSpec, config: TraceConfig | None = None, *, seed: int = 0
) -> ActivationTrace:
    """Generate a full prefill+decode activation trace for ``model``."""
    config = config or TraceConfig()
    rng = np.random.default_rng(seed)
    layout = NeuronLayout.build(model, config.granularity)
    density = config.density or model.activation_density
    n_groups = layout.groups_per_layer
    n_tokens = config.n_tokens

    base_freqs = [
        power_law_frequencies(
            n_groups, density, hot_fraction=config.hot_fraction,
            hot_share=config.hot_share, rng=rng)
        for _ in range(model.num_layers)
    ]
    logical_parents: list[np.ndarray | None] = [None]
    for l in range(1, model.num_layers):
        logical_parents.append(
            _rank_matched_parents(base_freqs[l - 1], base_freqs[l], rng)
        )

    layers = [np.zeros((n_tokens, n_groups), dtype=bool)
              for _ in range(model.num_layers)]
    # physical position of each logical neuron, permuted by context
    # switches (phase_shift) and slow drift; logical dynamics stay
    # stationary
    positions = [np.arange(n_groups) for _ in range(model.num_layers)]
    logical_rows = [
        np.zeros(n_groups, dtype=bool) for _ in range(model.num_layers)
    ]

    # record the *initial* physical parent table — what an offline
    # profiler would sample before inference starts
    parents: list[np.ndarray | None] = [None]
    for l in range(1, model.num_layers):
        phys = np.empty((n_groups, 2), dtype=np.int64)
        phys[positions[l]] = positions[l - 1][logical_parents[l]]
        parents.append(phys)

    for t in range(n_tokens):
        if t == config.prompt_len:
            for pos in positions:
                _swap_identities(pos, config.phase_shift, rng)
        elif t > config.prompt_len and config.drift_rate > 0:
            for pos in positions:
                _swap_identities(pos, config.drift_rate, rng)
        prev_logical: np.ndarray | None = None
        for l in range(model.num_layers):
            p = base_freqs[l]
            fresh = rng.random(n_groups) < p
            if t == 0:
                own = fresh
            else:
                keep = rng.random(n_groups) < config.kappa
                own = np.where(keep, logical_rows[l], fresh)
            if l > 0 and config.gamma > 0 and prev_logical is not None:
                copy_mask = rng.random(n_groups) < config.gamma
                row = np.where(
                    copy_mask, prev_logical[logical_parents[l][:, 0]], own
                )
            else:
                row = own
            logical_rows[l] = row
            layers[l][t][positions[l]] = row
            prev_logical = row

    return ActivationTrace(
        layout=layout,
        layers=layers,
        parents=parents,
        prompt_len=config.prompt_len,
        seed=seed,
    )
