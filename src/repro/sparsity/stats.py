"""Trace statistics: the measurements behind the paper's Figures 4 and the
motivation numbers of §III.

These functions operate on :class:`~repro.sparsity.trace.ActivationTrace`
objects and regenerate, from the synthetic substrate, the distribution
patterns the paper measured on real models:

* token-wise similarity vs token distance (Fig. 4a),
* layer-wise conditional activation probability (Fig. 4b),
* the 20 %/80 % hot/cold computation shares (§I),
* hot-set churn between prefill and decode (the "~52 % of initialised hot
  neurons vary" statistic, §III-B),
* per-DIMM load imbalance under a fixed placement (§III-C).
"""

from __future__ import annotations

import numpy as np

from .trace import ActivationTrace


def jaccard_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two boolean activation vectors."""
    if a.shape != b.shape:
        raise ValueError("activation vectors must have equal shape")
    union = np.logical_or(a, b).sum()
    if union == 0:
        return 1.0
    return float(np.logical_and(a, b).sum() / union)


def token_similarity_curve(
    trace: ActivationTrace, max_distance: int = 50, *, layer_stride: int = 1
) -> np.ndarray:
    """Mean activation-state similarity as a function of token distance.

    Similarity is the Jaccard overlap of the activated sets, averaged over
    decode-token pairs and layers; with the bimodal always-on head of the
    calibrated frequency distribution this reproduces Fig. 4a's >90 %
    adjacent similarity decaying to a ~70 % plateau.
    """
    if max_distance < 1:
        raise ValueError("max_distance must be >= 1")
    start = trace.prompt_len
    n = trace.n_tokens
    if n - start < 2:
        raise ValueError("trace too short for similarity analysis")
    curve = np.zeros(max_distance + 1)
    curve[0] = 1.0
    for d in range(1, max_distance + 1):
        sims = []
        for l in range(0, trace.num_layers, layer_stride):
            matrix = trace.layers[l][start:]
            if matrix.shape[0] <= d:
                continue
            a, b = matrix[:-d], matrix[d:]
            inter = np.logical_and(a, b).sum(axis=1)
            union = np.logical_or(a, b).sum(axis=1)
            valid = union > 0
            if valid.any():
                sims.append(float((inter[valid] / union[valid]).mean()))
        curve[d] = float(np.mean(sims)) if sims else np.nan
    return curve


def layer_correlation(trace: ActivationTrace, layer: int) -> np.ndarray:
    """P(group g active in ``layer`` | its top parent active in layer-1).

    Uses the trace's recorded parent structure; reproduces the >90 %
    conditional probabilities of Fig. 4b.
    """
    if layer <= 0 or layer >= trace.num_layers:
        raise ValueError("layer must be an inner layer (>= 1)")
    parents = trace.parents[layer]
    if parents is None:
        raise ValueError("trace lacks parent structure for this layer")
    child = trace.layers[layer]
    parent_active = trace.layers[layer - 1][:, parents[:, 0]]
    counts = parent_active.sum(axis=0)
    joint = np.logical_and(child, parent_active).sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        cond = np.where(counts > 0, joint / np.maximum(counts, 1), np.nan)
    return cond


def hot_cold_computation_share(
    trace: ActivationTrace,
    hot_fraction: float = 0.2,
    *,
    tokens: slice | None = None,
) -> float:
    """Share of total activations carried by the hottest ``hot_fraction``
    of groups (averaged over layers) — the 20 %/80 % statistic.

    Measured over the prefill window by default: the statistic describes
    the *instantaneous* frequency distribution, and measuring across the
    whole trace would smear it through the drift non-stationarity.
    """
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must lie in (0, 1]")
    if tokens is None:
        tokens = slice(0, max(1, trace.prompt_len))
    shares = []
    for l in range(trace.num_layers):
        freq = trace.frequencies(l, tokens=tokens)
        k = max(1, int(round(hot_fraction * freq.size)))
        top = np.sort(freq)[::-1][:k]
        total = freq.sum()
        if total > 0:
            shares.append(float(top.sum() / total))
    return float(np.mean(shares))


def hot_set_churn(trace: ActivationTrace, hot_fraction: float = 0.2) -> float:
    """Fraction of prefill-hot groups that change activity rank in decode.

    A group counts as "varied" when it leaves the hot set between the
    prefill-profiled ranking and the decode-measured ranking; the paper
    reports ~52 % for LLaMA2-70B (§III-B).
    """
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError("hot_fraction must lie in (0, 1)")
    churned = []
    # Compare against the *final* stretch of decode: churn accumulates
    # through the phase shift and the per-token drift, and the paper's
    # statistic asks whether an initialised-hot neuron ever varies, not
    # whether it varies on average.
    tail = max(8, (trace.n_tokens - trace.prompt_len) // 4)
    decode = slice(trace.n_tokens - tail, trace.n_tokens)
    for l in range(trace.num_layers):
        pre = trace.prefill_frequencies(l)
        post = trace.frequencies(l, tokens=decode)
        k = max(1, int(round(hot_fraction * pre.size)))
        hot_pre = set(np.argsort(pre)[::-1][:k].tolist())
        hot_post = set(np.argsort(post)[::-1][:k].tolist())
        churned.append(len(hot_pre - hot_post) / k)
    return float(np.mean(churned))


def dimm_load_imbalance(
    trace: ActivationTrace,
    placement: np.ndarray,
    layer: int,
    *,
    window: int | None = None,
) -> float:
    """Max/mean activated-group load ratio across DIMMs for one layer.

    ``placement`` assigns each group of ``layer`` to a DIMM id (or -1 for
    GPU-resident groups, which are excluded).  With a fixed placement the
    paper measures the busiest DIMM at 1.2-2.5x the others (§III-C).
    """
    matrix = trace.layers[layer][trace.prompt_len:]
    if window is not None:
        if window < 1:
            raise ValueError("window must be >= 1")
        matrix = matrix[:window]
    if placement.shape != (trace.layout.groups_per_layer,):
        raise ValueError("placement must cover every group of the layer")
    n_dimms = int(placement.max()) + 1
    if n_dimms < 1:
        raise ValueError("placement assigns no groups to DIMMs")
    loads = np.zeros(n_dimms)
    for d in range(n_dimms):
        mask = placement == d
        loads[d] = matrix[:, mask].sum()
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)
