"""Activation-sparsity substrate: frequencies, traces, statistics."""

from .frequencies import (
    compute_share,
    power_law_exponent,
    power_law_frequencies,
)
from .layout import NeuronLayout
from .trace import ActivationTrace
from .generator import TraceConfig, generate_trace
from .io import load_trace, save_trace
from .stats import (
    dimm_load_imbalance,
    hot_cold_computation_share,
    hot_set_churn,
    jaccard_similarity,
    layer_correlation,
    token_similarity_curve,
)

__all__ = [
    "power_law_frequencies",
    "power_law_exponent",
    "compute_share",
    "NeuronLayout",
    "ActivationTrace",
    "TraceConfig",
    "generate_trace",
    "save_trace",
    "load_trace",
    "jaccard_similarity",
    "token_similarity_curve",
    "layer_correlation",
    "hot_cold_computation_share",
    "hot_set_churn",
    "dimm_load_imbalance",
]
