"""Tail a telemetry JSONL stream and render a live serving dashboard.

``python -m repro.experiments watch run.jsonl`` follows the stream
(``--once`` renders the current state and exits).  Rendering is driven
entirely by the stream's retained discovery messages: topics announce
their fields and a ``meta.group``, the watcher lays out one table per
group with one row per topic — it needs no knowledge of the scenario
that produced the stream.

Formatting rules are name/kind based: ``slo_*`` attainment gauges print
with three decimals (matching how reports are quoted), counters print as
integers, missing values (``null`` in the stream) print as ``—``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time as _time


class StreamState:
    """Replayed state of one telemetry stream."""

    def __init__(self) -> None:
        self.configs: dict[str, dict] = {}
        self.samples: dict[str, dict] = {}
        self.ended = False
        self.end_time: float | None = None

    def feed_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        message = json.loads(line)
        kind = message.get("type")
        if kind == "config":
            self.configs[message["topic"]] = message
        elif kind == "sample":
            self.samples[message["topic"]] = message
        elif kind == "end":
            self.ended = True
            self.end_time = message.get("time")

    # ------------------------------------------------------------------
    def topics(self, group: str) -> list[str]:
        names = [
            topic
            for topic, config in self.configs.items()
            if config.get("meta", {}).get("group") == group
        ]
        return sorted(names)

    def render(self) -> str:
        lines: list[str] = []
        lines.extend(self._render_header())
        for group in self._groups():
            if group == "cluster":
                continue
            lines.append("")
            lines.extend(self._render_group(group))
        return "\n".join(lines)

    def _groups(self) -> list[str]:
        seen: list[str] = []
        for config in self.configs.values():
            group = config.get("meta", {}).get("group", "other")
            if group not in seen:
                seen.append(group)
        return seen

    def _render_header(self) -> list[str]:
        config = self.configs.get("cluster")
        sample = self.samples.get("cluster")
        if config is None:
            return ["(waiting for stream discovery...)"]
        meta = config.get("meta", {})
        bits = []
        if meta.get("source"):
            bits.append(str(meta["source"]))
        bits.append(f"model={meta.get('model')}")
        bits.append(f"policy={meta.get('policy')}")
        if meta.get("router"):
            bits.append(f"router={meta.get('router')}")
        bits.append(f"machines={meta.get('num_machines')}")
        if meta.get("preemptive"):
            bits.append("preemptive")
        status = "ended" if self.ended else "live"
        at = sample["time"] if sample else 0.0
        lines = [f"run: {'  '.join(bits)}  [{status} t={at:.4f}s]"]
        if sample:
            fields = [f["name"] for f in config.get("fields", [])]
            kinds = {
                f["name"]: f.get("kind", "gauge")
                for f in config.get("fields", [])
            }
            cells = [
                f"{name}={format_value(name, kinds[name], v)}"
                for name in fields
                for v in [sample["values"].get(name)]
            ]
            lines.append("cluster  " + "  ".join(cells))
        return lines

    def _render_group(self, group: str) -> list[str]:
        topics = self.topics(group)
        if not topics:
            return []
        first = self.configs[topics[0]]
        fields = [f["name"] for f in first.get("fields", [])]
        kinds = {
            f["name"]: f.get("kind", "gauge")
            for f in first.get("fields", [])
        }
        header = [group] + fields
        rows = [header]
        for topic in topics:
            meta = self.configs[topic].get("meta", {})
            label = str(meta.get("label", topic))
            if group == "machine" and meta.get("backend"):
                label = f"{label} ({meta['backend']})"
            sample = self.samples.get(topic)
            values = sample["values"] if sample else {}
            rows.append(
                [label]
                + [
                    format_value(name, kinds[name], values.get(name))
                    for name in fields
                ]
            )
        widths = [
            max(len(row[i]) for row in rows) for i in range(len(header))
        ]
        out = []
        for row in rows:
            out.append(
                "  ".join(
                    cell.ljust(widths[i]) for i, cell in enumerate(row)
                ).rstrip()
            )
        return out


def format_value(name: str, kind: str, value) -> str:
    if value is None:
        return "—"
    if isinstance(value, str):
        # state fields (e.g. the machine "health" column) pass through
        return value
    if name.startswith("slo_"):
        return f"{value:.3f}"
    if kind == "counter" or name.endswith("_count"):
        return f"{value:g}"
    return f"{value:.4g}"


def watch(
    path: str,
    *,
    once: bool = False,
    interval: float = 0.5,
    out=None,
) -> int:
    """Render ``path``; with ``once=False`` keep tailing until its end
    marker arrives (or interrupt)."""
    out = out if out is not None else sys.stdout
    state = StreamState()
    with open(path) as fh:
        for line in fh:
            state.feed_line(line)
        if once:
            print(state.render(), file=out)
            return 0
        print(state.render(), file=out)
        while not state.ended:
            pos = fh.tell()
            line = fh.readline()
            if line and line.endswith("\n"):
                state.feed_line(line)
                continue
            fh.seek(pos)  # nothing new (or a partial write): wait
            _time.sleep(interval)
            print("\x1b[2J\x1b[H" + state.render(), file=out)
        print("\x1b[2J\x1b[H" + state.render(), file=out)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments watch",
        description="Tail a telemetry JSONL stream as a live dashboard.",
    )
    parser.add_argument("stream", help="path to the .jsonl metric stream")
    parser.add_argument(
        "--once",
        action="store_true",
        help="render the stream's current state and exit",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="poll interval in wall-clock seconds when following",
    )
    args = parser.parse_args(argv)
    try:
        return watch(
            args.stream, once=args.once, interval=args.interval
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
