"""Build concrete tracer sinks from a scenario's telemetry request.

:func:`scenario_sinks` resolves a :class:`~repro.telemetry.config.
TelemetrySpec` plus an optional CLI ``--trace-out`` path into one
:class:`SinkSet`: a single tracer to hand to ``run(workload,
tracer=...)`` and a ``close()`` that finalises files and reports what
was written.  ``--trace-out`` routes by extension — ``.json`` exports a
Chrome trace, anything else (conventionally ``.jsonl``) writes the
self-describing metric stream.
"""

from __future__ import annotations

import os

from .chrome import export_chrome_trace
from .config import TelemetrySpec
from .stream import MetricStreamTracer
from .tracer import MultiTracer, RecordingTracer, Tracer


class SinkSet:
    """A bundle of live telemetry sinks behind one tracer."""

    def __init__(self, spec: TelemetrySpec) -> None:
        self._spec = spec
        self._streams: list[tuple[str, object]] = []
        self._chrome: list[tuple[str, RecordingTracer]] = []
        self._tracers: list[Tracer] = []

    @property
    def active(self) -> bool:
        return bool(self._tracers)

    @property
    def tracer(self) -> Tracer | None:
        """The tracer to pass to ``run()`` (``None`` when no sinks)."""
        if not self._tracers:
            return None
        if len(self._tracers) == 1:
            return self._tracers[0]
        return MultiTracer(*self._tracers)

    # ------------------------------------------------------------------
    def add_stream(self, path: str, *, source: str = "") -> None:
        _ensure_parent(path)
        fh = open(path, "w")
        self._streams.append((path, fh))
        self._tracers.append(
            MetricStreamTracer(
                fh,
                sample_interval=self._spec.sample_interval,
                source=source,
            )
        )

    def add_chrome(self, path: str) -> None:
        _ensure_parent(path)
        recorder = RecordingTracer()
        self._chrome.append((path, recorder))
        self._tracers.append(recorder)

    def close(self) -> list[str]:
        """Finalise every sink; returns the paths written."""
        written: list[str] = []
        for path, fh in self._streams:
            fh.close()
            written.append(path)
        for path, recorder in self._chrome:
            export_chrome_trace(recorder.events, path)
            written.append(path)
        self._streams = []
        self._chrome = []
        return written


def scenario_sinks(
    spec: TelemetrySpec | None,
    *,
    trace_out: str | None = None,
    source: str = "",
) -> SinkSet:
    """Resolve scenario telemetry + CLI override into live sinks."""
    spec = spec if spec is not None else TelemetrySpec()
    sinks = SinkSet(spec)
    if spec.stream:
        sinks.add_stream(spec.stream, source=source)
    if spec.chrome_trace:
        sinks.add_chrome(spec.chrome_trace)
    if trace_out:
        if trace_out.endswith(".json"):
            sinks.add_chrome(trace_out)
        else:
            sinks.add_stream(trace_out, source=source)
    return sinks


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
