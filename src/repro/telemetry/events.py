"""Typed lifecycle events of one serving-simulation run.

The event stream is the single source every telemetry sink consumes:
request lifecycle transitions (admitted -> routed -> prefill -> decode
boundaries -> completion, with preemption round trips), machine busy
intervals (carried on the prefill/decode events), queue-depth change
points, and the engine's per-step swap/residency counters.

Every event is a frozen dataclass with value equality, which is what the
fused-vs-stepped equivalence tests compare: the macro-stepped serving
loop must emit *exactly* this stream — same events, same order,
timestamps bit-equal — as the per-token reference loop.

Events carry simulation timestamps in seconds.  ``DecodeStep.time`` is
the *end* boundary of the iteration (the instant every resident request
gains its token); the slice it occupies on a trace viewer therefore
starts at ``time - seconds``.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True, slots=True)
class ClassInfo:
    """A declared priority class, as carried by :class:`RunStarted`.

    Mirrors :class:`repro.cluster.slo.PriorityClass` without importing
    the cluster layer — sinks reading a stream must not need the
    scenario that produced it.
    """

    name: str
    priority: int = 0
    ttft_slo: float | None = None
    tbt_slo: float | None = None


@dataclasses.dataclass(frozen=True, slots=True)
class RunStarted:
    """First event of every traced run: the run's static configuration."""

    time: float
    model: str
    policy: str
    num_machines: int
    #: per-machine backend names (index = machine id)
    backends: tuple[str, ...]
    #: router name for routed (cluster) runs; ``None`` = shared queue
    router: str | None = None
    #: declared priority classes, highest priority first
    classes: tuple[ClassInfo, ...] = ()
    preemptive: bool = False
    #: declared failure domains as ``(name, member_machines)`` pairs,
    #: in declaration order; empty when the run has no domains
    domains: tuple[tuple[str, tuple[int, ...]], ...] = ()


@dataclasses.dataclass(frozen=True, slots=True)
class RequestAdmitted:
    """A request entered the serving system (moved arrival -> queue)."""

    time: float
    req_id: int
    tenant: str
    class_name: str
    arrival: float
    prompt_len: int
    output_len: int


@dataclasses.dataclass(frozen=True, slots=True)
class RequestRouted:
    """The front door assigned an admitted request to a machine queue."""

    time: float
    req_id: int
    machine: int


@dataclasses.dataclass(frozen=True, slots=True)
class QueueDepth:
    """Total queued requests changed (a change-point sample)."""

    time: float
    depth: int


@dataclasses.dataclass(frozen=True, slots=True)
class PrefillStarted:
    """A machine started charging a request's prefill."""

    time: float
    req_id: int
    machine: int


@dataclasses.dataclass(frozen=True, slots=True)
class PrefillEnded:
    """Prefill finished; the request joins the running batch.

    ``compute`` is the GPU-busy part, ``transfer`` the PCIe KV push —
    together they are the machine's busy interval ``[time - compute -
    transfer, time]``.
    """

    time: float
    req_id: int
    machine: int
    compute: float
    transfer: float


@dataclasses.dataclass(frozen=True, slots=True)
class RequestResumed:
    """A preempted request re-joined a batch (free re-admission)."""

    time: float
    req_id: int
    machine: int


@dataclasses.dataclass(frozen=True, slots=True)
class DecodeStep:
    """One continuous-batching decode iteration ended on a machine.

    Emitted once per token boundary in *both* serving loops — the
    macro-stepped path reconstructs these from its fused span's per-step
    cost arrays, which are bit-equal to the stepped loop's by the
    engine's span contract.
    """

    time: float
    machine: int
    batch: int
    seconds: float
    gpu_busy: float
    dimm_busy: float
    #: engine hot/cold bytes swapped onto the GPU during this step
    swap_bytes: int
    #: GPU-resident sparse-weight bytes at the end of this step
    resident_bytes: int
    #: requests that gained a token at this boundary (batch order)
    req_ids: tuple[int, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class RequestPreempted:
    """A resident request was evicted for a deadline-threatened prefill."""

    time: float
    req_id: int
    machine: int


@dataclasses.dataclass(frozen=True, slots=True)
class RequestCompleted:
    """A request produced its last token and left the system."""

    time: float
    req_id: int
    machine: int
    tokens: int


@dataclasses.dataclass(frozen=True, slots=True)
class MachineDown:
    """A machine crashed (fault injection): in-flight work is evacuated."""

    time: float
    machine: int
    reason: str = "crash"


@dataclasses.dataclass(frozen=True, slots=True)
class MachineUp:
    """A crashed machine finished restarting and is serving again.

    ``warmup`` is the cold-cache warmup charged on top of the restart —
    the machine was down for it; this event marks the end of the outage.
    """

    time: float
    machine: int
    warmup: float = 0.0


@dataclasses.dataclass(frozen=True, slots=True)
class MachineHealth:
    """A machine's health state changed (change-point sample).

    ``state`` is one of ``"ok"``, ``"slow"`` (straggling — ``slowdown``
    carries the cost multiplier), ``"degraded"`` (running with fewer
    DIMMs or a derated link after renegotiation), ``"partitioned"``
    (unreachable from the router but still draining residents), or
    ``"down"``.
    """

    time: float
    machine: int
    state: str
    slowdown: float = 1.0


@dataclasses.dataclass(frozen=True, slots=True)
class MachineDegraded:
    """A machine renegotiated after a partial-degradation fault.

    The machine keeps serving on ``surviving_dimm_fraction`` of its
    original DIMM pool with its PCIe link derated to
    ``bandwidth_factor`` of nominal.  ``evicted`` counts residents whose
    KV no longer fit on the surviving pool and were requeued for a
    fresh prefill.  Fractions are cumulative relative to the pristine
    machine, not to the previous degrade.
    """

    time: float
    machine: int
    surviving_dimm_fraction: float
    bandwidth_factor: float
    evicted: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class RequestMigrated:
    """A request was evacuated off a crashed or degraded machine.

    Generated tokens survive (they were already streamed to the client);
    the KV cache does not, so the destination re-runs prefill over
    ``prompt_len + generated``.  ``to_machine`` is ``-1`` when the run
    uses one shared queue (any machine may pick the request up).  A
    degrade-driven KV eviction keeps ``to_machine == from_machine`` in
    routed mode: the machine renegotiated, it did not die.
    """

    time: float
    req_id: int
    from_machine: int
    to_machine: int = -1
    generated: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class RunEnded:
    """Last event of every traced run."""

    time: float
    makespan: float


Event = typing.Union[
    RunStarted,
    RequestAdmitted,
    RequestRouted,
    QueueDepth,
    PrefillStarted,
    PrefillEnded,
    RequestResumed,
    DecodeStep,
    RequestPreempted,
    RequestCompleted,
    MachineDown,
    MachineUp,
    MachineHealth,
    MachineDegraded,
    RequestMigrated,
    RunEnded,
]
