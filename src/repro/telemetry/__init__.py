"""Telemetry: request-level tracing and live metric streams.

The serving simulators emit a typed lifecycle event stream (see
:mod:`repro.telemetry.events`) through a :class:`Tracer`.  The default
:data:`NULL_TRACER` is zero-overhead; enabled tracers can record events
in memory (:class:`RecordingTracer`), render them as a self-describing
JSONL metric stream (:class:`MetricStreamTracer`, watchable live via
``python -m repro.experiments watch``), or — post hoc — export a
Chrome/Perfetto trace (:func:`export_chrome_trace`).

Telemetry observes, it never steers: with any tracer attached the
simulation produces bit-identical results, and the macro-stepped fused
serving loop emits the exact event stream of the per-token reference
loop (pinned by the equivalence tests).
"""

from .chrome import chrome_trace, export_chrome_trace
from .config import TelemetrySpec
from .events import (
    ClassInfo,
    DecodeStep,
    Event,
    MachineDegraded,
    MachineDown,
    MachineHealth,
    MachineUp,
    PrefillEnded,
    PrefillStarted,
    QueueDepth,
    RequestAdmitted,
    RequestCompleted,
    RequestMigrated,
    RequestPreempted,
    RequestResumed,
    RequestRouted,
    RunEnded,
    RunStarted,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricSpec,
    MetricsRegistry,
)
from .sinks import SinkSet, scenario_sinks
from .stream import MetricStreamTracer, TopicStream
from .tracer import (
    NULL_TRACER,
    MultiTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
)

__all__ = [
    "ClassInfo",
    "Counter",
    "DecodeStep",
    "Event",
    "Gauge",
    "Histogram",
    "MachineDegraded",
    "MachineDown",
    "MachineHealth",
    "MachineUp",
    "MetricSpec",
    "MetricsRegistry",
    "MetricStreamTracer",
    "MultiTracer",
    "NULL_TRACER",
    "NullTracer",
    "PrefillEnded",
    "PrefillStarted",
    "QueueDepth",
    "RecordingTracer",
    "RequestAdmitted",
    "RequestCompleted",
    "RequestMigrated",
    "RequestPreempted",
    "RequestResumed",
    "RequestRouted",
    "RunEnded",
    "RunStarted",
    "SinkSet",
    "TelemetrySpec",
    "TopicStream",
    "Tracer",
    "chrome_trace",
    "export_chrome_trace",
    "scenario_sinks",
]
