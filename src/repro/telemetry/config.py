"""Declarative telemetry configuration (the scenario ``telemetry:`` key).

Example scenario fragment::

    "telemetry": {
        "sample_interval": 0.005,
        "stream": "out/run.jsonl",
        "chrome_trace": "out/run.trace.json"
    }

``stream`` and ``chrome_trace`` are output paths (created on demand);
either may be omitted.  A CLI ``--trace-out`` argument overrides/extends
these at run time — see :func:`repro.telemetry.sinks.scenario_sinks`.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class TelemetrySpec:
    """Scenario-level telemetry request."""

    #: simulated seconds between metric-stream samples
    sample_interval: float = 0.01
    #: JSONL metric-stream output path (``None`` = no stream sink)
    stream: str | None = None
    #: Chrome/Perfetto trace-event JSON output path
    chrome_trace: str | None = None

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ValueError("telemetry sample_interval must be positive")

    @property
    def wants_output(self) -> bool:
        return self.stream is not None or self.chrome_trace is not None
