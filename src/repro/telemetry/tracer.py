"""The :class:`Tracer` protocol and its bundled implementations.

The serving simulators accept any tracer and guard every emission site
with ``tracer.enabled`` — with the default :class:`NullTracer` the whole
telemetry subsystem costs one attribute read per guarded block, which is
what keeps the disabled path inside the serving benchmark gates.

Tracing **observes** a run, it never steers one: a tracer must not
mutate simulator state, and the simulators never read anything back from
it.  The fused-vs-stepped equivalence tests pin that the emitted stream
is identical either way, so a tracer cannot even tell which loop ran.
"""

from __future__ import annotations

import typing

from .events import Event


@typing.runtime_checkable
class Tracer(typing.Protocol):
    """Anything that consumes the lifecycle event stream."""

    #: emission sites are skipped entirely when this is ``False``
    enabled: bool

    def emit(self, event: Event) -> None:
        """Consume one event (must not raise on any event type)."""
        ...  # pragma: no cover - protocol


class NullTracer:
    """The zero-overhead default: nothing is ever emitted."""

    enabled = False

    def emit(self, event: Event) -> None:  # pragma: no cover - guarded out
        return None


#: shared default instance (stateless, so one is enough)
NULL_TRACER = NullTracer()


class RecordingTracer:
    """Append every event to an in-memory list (tests, exporters)."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()


class MultiTracer:
    """Fan one event stream out to several sinks."""

    enabled = True

    def __init__(self, *tracers: Tracer) -> None:
        self.tracers = tuple(t for t in tracers if t.enabled)
        if not self.tracers:
            raise ValueError("MultiTracer needs at least one enabled tracer")

    def emit(self, event: Event) -> None:
        for tracer in self.tracers:
            tracer.emit(event)
