"""Self-describing JSONL metric topics: the live serving surface.

The stream is a sequence of JSON lines in two shapes, modelled on the
MQTT auto-discovery pattern: every topic first emits a **retained
discovery message** describing its fields (name, kind, unit) and static
metadata, then periodic **samples** carry only values::

    {"type": "config", "topic": "class/interactive", "retain": true,
     "fields": [{"name": "completed", "kind": "counter", ...}, ...],
     "meta": {"group": "class", "label": "interactive", ...}}
    {"type": "sample", "topic": "class/interactive", "time": 0.02,
     "values": {"completed": 12, "slo_joint": 1.0, ...}}

A consumer (``python -m repro.experiments watch``) therefore needs *no*
knowledge of the scenario: it subscribes to whatever topics announce
themselves.  Lines are strict JSON — ``nan`` values are serialised as
``null``.

:class:`MetricStreamTracer` turns the lifecycle event stream into these
topics live, flushing one sample per topic every ``sample_interval``
simulated seconds plus a final sample at run end.  Attainment gauges use
exactly the report's comparisons, so the last sample of a stream agrees
with the post-hoc :class:`~repro.cluster.ClusterReport`.
"""

from __future__ import annotations

import json
import math
import typing

from . import events as ev
from .registry import MetricsRegistry

MIB = 2.0**20


def jsonable(value):
    """``value`` with every non-finite float replaced by ``None``."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


class TopicStream:
    """JSONL writer enforcing the announce-before-publish discipline."""

    def __init__(self, out: typing.TextIO) -> None:
        self._out = out
        self._announced: set[str] = set()

    def announce(
        self, topic: str, fields: list[dict], meta: dict | None = None
    ) -> None:
        """Emit ``topic``'s retained discovery/config message."""
        self._write({
            "type": "config",
            "topic": topic,
            "retain": True,
            "fields": fields,
            "meta": meta or {},
        })
        self._announced.add(topic)

    def publish(
        self, topic: str, time: float, values: dict[str, float]
    ) -> None:
        if topic not in self._announced:
            raise RuntimeError(
                f"topic {topic!r} published before its discovery message"
            )
        self._write({
            "type": "sample",
            "topic": topic,
            "time": time,
            "values": values,
        })

    def end(self, time: float) -> None:
        """Mark the stream complete (lets followers stop tailing)."""
        self._write({"type": "end", "time": time})

    def _write(self, message: dict) -> None:
        self._out.write(
            json.dumps(
                jsonable(message),
                separators=(",", ":"),
                allow_nan=False,
            )
            + "\n"
        )

    def flush(self) -> None:
        self._out.flush()


class _RequestState:
    """Per-in-flight-request tracking for live SLO attainment."""

    __slots__ = ("class_name", "arrival", "first", "last", "tbt_ok",
                 "resident")

    def __init__(self, class_name: str, arrival: float) -> None:
        self.class_name = class_name
        self.arrival = arrival
        self.first: float | None = None
        self.last: float | None = None
        self.tbt_ok = True
        #: currently in some machine's running batch — migration off a
        #: crashed machine returns it to queued, not active
        self.resident = False


class _ClassState:
    """Cumulative attainment tallies for one declared class."""

    __slots__ = ("info", "completed", "ttft_ok", "tbt_ok", "joint_ok")

    def __init__(self, info: ev.ClassInfo) -> None:
        self.info = info
        self.completed = 0
        self.ttft_ok = 0
        self.tbt_ok = 0
        self.joint_ok = 0


class MetricStreamTracer:
    """Render the lifecycle event stream as live JSONL metric topics.

    Topics: ``cluster`` (queue depth, in-flight batch, throughput,
    completions, preemptions, crash migrations, machines up),
    ``machine/<i>`` (windowed GPU/DIMM busy fractions, batch, engine
    swap rate and residency, plus a string-valued ``health`` state under
    fault injection), and ``class/<name>`` (completions, cumulative
    TTFT/TBT/joint SLO attainment, windowed latency percentiles) per
    declared class.
    """

    enabled = True

    def __init__(
        self,
        out: typing.TextIO,
        *,
        sample_interval: float = 0.01,
        source: str = "",
        percentiles: typing.Sequence[float] = (50.0, 99.0),
    ) -> None:
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self._stream = TopicStream(out)
        self._interval = float(sample_interval)
        self._source = source
        self._percentiles = tuple(percentiles)
        self._started = False

    # ------------------------------------------------------------------
    def emit(self, event: ev.Event) -> None:
        if isinstance(event, ev.RunStarted):
            self._start(event)
            return
        if not self._started:
            raise RuntimeError(
                "metric stream needs a RunStarted event first"
            )
        if isinstance(event, ev.RunEnded):
            self._flush(event.time)
            self._stream.end(event.time)
            self._stream.flush()
            return
        self._maybe_flush(event.time)
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(self, event)

    # ------------------------------------------------------------------
    def _start(self, event: ev.RunStarted) -> None:
        self._registries: dict[str, MetricsRegistry] = {}
        self._window_start = event.time
        self._next_flush = event.time + self._interval
        self._requests: dict[int, _RequestState] = {}
        self._classes: dict[str, _ClassState] = {
            c.name: _ClassState(c) for c in event.classes
        }
        self._active = 0
        self._cluster_tokens = 0
        num = event.num_machines
        self._m_gpu = [0.0] * num
        self._m_dimm = [0.0] * num
        self._m_swap = [0] * num
        self._m_resident = [math.nan] * num
        self._m_batch = [0.0] * num
        #: fault-injection health labels; stays "ok" everywhere on
        #: fault-free runs (no MachineHealth events are emitted)
        self._m_health = ["ok"] * num
        self._machines_up = num
        #: machine -> failure-domain name; the per-machine topics only
        #: grow the extra "domain" column when the run declared domains,
        #: so domain-free runs keep their exact pre-domain schema
        self._m_domain: dict[int, str] = {
            m: name for name, members in event.domains for m in members
        }
        self._has_domains = bool(event.domains)

        cluster = MetricsRegistry(self._percentiles)
        cluster.gauge("queue_depth", help="requests waiting for admission")
        cluster.gauge("active", help="requests resident in running batches")
        cluster.gauge("tokens_per_sec", unit="tok/s",
                      help="decode throughput over the sample window")
        cluster.gauge("machines_up", help="machines currently serving "
                      "(fleet size minus crashed machines)")
        cluster.counter("completed", help="requests finished")
        cluster.counter("preempted", help="preemptive evictions")
        cluster.counter("migrations", help="KV-losing evacuations "
                        "(crashes and degrade evictions)")
        self._registries["cluster"] = cluster
        self._stream.announce("cluster", cluster.describe(), meta={
            "group": "cluster",
            "source": self._source,
            "model": event.model,
            "policy": event.policy,
            "router": event.router,
            "num_machines": event.num_machines,
            "preemptive": event.preemptive,
            "sample_interval": self._interval,
        })

        for m in range(num):
            registry = MetricsRegistry(self._percentiles)
            registry.gauge("gpu_util", help="GPU busy fraction (window)")
            registry.gauge("dimm_util",
                           help="NDP-DIMM busy fraction (window)")
            registry.gauge("batch", help="resident batch at last boundary")
            registry.gauge("resident_mib", unit="MiB",
                           help="engine GPU-resident hot-set bytes")
            registry.gauge("swap_mib_per_s", unit="MiB/s",
                           help="engine hot/cold swap traffic (window)")
            registry.counter("tokens", help="decode tokens produced")
            topic = f"machine/{m}"
            self._registries[topic] = registry
            # "health" is a string-valued state field, injected outside
            # the (numeric-only) registry at publish time
            fields = registry.describe() + [{
                "name": "health",
                "kind": "state",
                "unit": "",
                "help": "fault-injection health (ok/slow/degraded/"
                        "partitioned/down)",
            }]
            meta = {
                "group": "machine",
                "label": str(m),
                "backend": event.backends[m],
            }
            if self._has_domains:
                fields.append({
                    "name": "domain",
                    "kind": "state",
                    "unit": "",
                    "help": "declared failure domain of this machine",
                })
                meta["domain"] = self._m_domain.get(m, "")
            self._stream.announce(topic, fields, meta=meta)

        for name, state in self._classes.items():
            registry = MetricsRegistry(self._percentiles)
            registry.counter("completed", help="class requests finished")
            registry.gauge("slo_ttft",
                           help="cumulative TTFT attainment fraction")
            registry.gauge("slo_tbt",
                           help="cumulative TBT attainment fraction")
            registry.gauge("slo_joint",
                           help="cumulative joint attainment fraction")
            registry.histogram("ttft_ms", unit="ms",
                               help="TTFT of completions in the window")
            registry.histogram("tbt_ms", unit="ms",
                               help="inter-token gaps in the window")
            topic = f"class/{name}"
            self._registries[topic] = registry
            self._stream.announce(topic, registry.describe(), meta={
                "group": "class",
                "label": name,
                "priority": state.info.priority,
                "ttft_slo": state.info.ttft_slo,
                "tbt_slo": state.info.tbt_slo,
            })
        self._started = True

    # ------------------------------------------------------------------
    def _maybe_flush(self, t: float) -> None:
        if t <= self._next_flush:
            return
        # flush once, labelled at the last elapsed boundary — idle gaps
        # produce one catch-up sample, not one per empty window
        steps = math.floor((t - self._next_flush) / self._interval)
        boundary = self._next_flush + steps * self._interval
        self._flush(boundary)
        self._next_flush = boundary + self._interval

    def _flush(self, at_time: float) -> None:
        width = at_time - self._window_start
        rate = (1.0 / width) if width > 0 else math.nan
        cluster = self._registries["cluster"]
        cluster.gauge("active").set(self._active)
        cluster.gauge("tokens_per_sec").set(self._cluster_tokens * rate)
        cluster.gauge("machines_up").set(self._machines_up)
        for m in range(len(self._m_gpu)):
            registry = self._registries[f"machine/{m}"]
            registry.gauge("gpu_util").set(self._m_gpu[m] * rate)
            registry.gauge("dimm_util").set(self._m_dimm[m] * rate)
            registry.gauge("batch").set(self._m_batch[m])
            registry.gauge("resident_mib").set(self._m_resident[m] / MIB)
            registry.gauge("swap_mib_per_s").set(
                self._m_swap[m] / MIB * rate
            )
        for name, state in self._classes.items():
            registry = self._registries[f"class/{name}"]
            done = state.completed
            frac = (1.0 / done) if done else math.nan
            registry.gauge("slo_ttft").set(state.ttft_ok * frac)
            registry.gauge("slo_tbt").set(state.tbt_ok * frac)
            registry.gauge("slo_joint").set(state.joint_ok * frac)
        for topic, registry in self._registries.items():
            values = registry.collect()
            if topic.startswith("machine/"):
                m = int(topic[8:])
                values["health"] = self._m_health[m]
                if self._has_domains:
                    values["domain"] = self._m_domain.get(m, "")
            self._stream.publish(topic, at_time, values)
        # reset the window accumulators (cumulative metrics persist)
        self._cluster_tokens = 0
        self._m_gpu = [0.0] * len(self._m_gpu)
        self._m_dimm = [0.0] * len(self._m_dimm)
        self._m_swap = [0] * len(self._m_swap)
        self._window_start = at_time

    # ------------------------------------------------------------------
    def _on_admitted(self, event: ev.RequestAdmitted) -> None:
        self._requests[event.req_id] = _RequestState(
            event.class_name, event.arrival
        )

    def _on_queue_depth(self, event: ev.QueueDepth) -> None:
        self._registries["cluster"].gauge("queue_depth").set(event.depth)

    def _on_prefill_ended(self, event: ev.PrefillEnded) -> None:
        self._m_gpu[event.machine] += event.compute
        self._active += 1
        request = self._requests.get(event.req_id)
        if request is not None:
            request.resident = True

    def _on_resumed(self, event: ev.RequestResumed) -> None:
        self._active += 1
        request = self._requests.get(event.req_id)
        if request is not None:
            request.resident = True

    def _on_preempted(self, event: ev.RequestPreempted) -> None:
        self._registries["cluster"].counter("preempted").inc()
        self._active -= 1
        request = self._requests.get(event.req_id)
        if request is not None:
            request.resident = False

    def _on_migrated(self, event: ev.RequestMigrated) -> None:
        self._registries["cluster"].counter("migrations").inc()
        request = self._requests.get(event.req_id)
        if request is not None and request.resident:
            # evacuated out of a running batch, back to queued
            request.resident = False
            self._active -= 1

    def _on_machine_down(self, event: ev.MachineDown) -> None:
        self._machines_up -= 1

    def _on_machine_up(self, event: ev.MachineUp) -> None:
        self._machines_up += 1

    def _on_health(self, event: ev.MachineHealth) -> None:
        self._m_health[event.machine] = event.state

    def _on_decode_step(self, event: ev.DecodeStep) -> None:
        m = event.machine
        self._m_gpu[m] += event.gpu_busy
        self._m_dimm[m] += event.dimm_busy
        self._m_swap[m] += event.swap_bytes
        self._m_resident[m] = float(event.resident_bytes)
        self._m_batch[m] = float(event.batch)
        self._cluster_tokens += event.batch
        self._registries[f"machine/{m}"].counter("tokens").inc(event.batch)
        for rid in event.req_ids:
            request = self._requests.get(rid)
            if request is None:
                continue
            if request.first is None:
                request.first = event.time
            else:
                gap = event.time - request.last
                cls = self._classes.get(request.class_name)
                if cls is not None:
                    self._registries[
                        f"class/{request.class_name}"
                    ].histogram("tbt_ms").observe(gap * 1e3)
                    slo = cls.info.tbt_slo
                    if slo is not None and not gap <= slo:
                        request.tbt_ok = False
            request.last = event.time

    def _on_completed(self, event: ev.RequestCompleted) -> None:
        self._active -= 1
        self._registries["cluster"].counter("completed").inc()
        request = self._requests.pop(event.req_id, None)
        if request is None:
            return
        cls = self._classes.get(request.class_name)
        if cls is None:
            return
        registry = self._registries[f"class/{request.class_name}"]
        registry.counter("completed").inc()
        ttft = request.first - request.arrival
        registry.histogram("ttft_ms").observe(ttft * 1e3)
        # exactly the report's attainment comparisons (nan-safe spelling)
        slo = cls.info
        ttft_ok = slo.ttft_slo is None or ttft <= slo.ttft_slo
        tbt_ok = request.tbt_ok
        cls.completed += 1
        cls.ttft_ok += 1 if ttft_ok else 0
        cls.tbt_ok += 1 if tbt_ok else 0
        cls.joint_ok += 1 if (ttft_ok and tbt_ok) else 0

    _handlers: dict[type, typing.Callable] = {
        ev.RequestAdmitted: _on_admitted,
        ev.QueueDepth: _on_queue_depth,
        ev.PrefillEnded: _on_prefill_ended,
        ev.RequestResumed: _on_resumed,
        ev.RequestPreempted: _on_preempted,
        ev.RequestMigrated: _on_migrated,
        ev.MachineDown: _on_machine_down,
        ev.MachineUp: _on_machine_up,
        ev.MachineHealth: _on_health,
        ev.DecodeStep: _on_decode_step,
        ev.RequestCompleted: _on_completed,
    }
