"""Export a recorded event stream as Chrome/Perfetto trace-event JSON.

Open the result at https://ui.perfetto.dev (or ``chrome://tracing``).
The layout gives every machine its own lane (thread) inside one
"serving" process, with a "front door" lane for routing decisions:

* prefill and decode iterations are duration (``X``) slices on the
  machine that ran them;
* each request is a **flow**: arrows follow it from its routing
  decision through prefill, across preemption/resume hops (possibly to
  another machine), to its completion anchor;
* total queued requests is a counter (``C``) track;
* preemptions additionally show as instant (``i``) markers;
* under fault injection, crashes and health transitions are instant
  markers, each outage renders as a ``down`` slice on the machine's
  lane (closed at restart, or at run end when the machine never comes
  back), and migrations are front-door hops in the request's flow.

The exporter is strict-JSON (``allow_nan=False``) and every event
carries the ``name``/``ph``/``ts``/``pid``/``tid`` fields the trace
viewers require; CI parses an exported trace and checks exactly that.
"""

from __future__ import annotations

import json
import typing

from . import events as ev

PID = 1
#: tid of the routing / run-scope lane; machines are ``tid = machine+1``
FRONT_TID = 0


def _us(t: float) -> float:
    return t * 1e6


class _Exporter:
    def __init__(self) -> None:
        self.out: list[dict] = []
        self._flow_started: set[int] = set()
        #: machine -> crash instant of the outage currently open; the
        #: "down" slice is emitted when the machine comes back (or at
        #: run end, for machines that never restart)
        self._down_since: dict[int, float] = {}

    # -- helpers -------------------------------------------------------
    def _slice(
        self,
        name: str,
        start: float,
        dur: float,
        tid: int,
        args: dict | None = None,
    ) -> None:
        event = {
            "name": name,
            "ph": "X",
            "ts": _us(start),
            "dur": _us(dur),
            "pid": PID,
            "tid": tid,
            "cat": "serving",
        }
        if args:
            event["args"] = args
        self.out.append(event)

    def _flow(self, req_id: int, t: float, tid: int, end: bool = False) -> None:
        """One hop of request ``req_id``'s flow arrow at ``(t, tid)``."""
        if end:
            ph = "f"
        elif req_id in self._flow_started:
            ph = "t"
        else:
            ph = "s"
            self._flow_started.add(req_id)
        event = {
            "name": f"req {req_id}",
            "ph": ph,
            "id": req_id,
            "ts": _us(t),
            "pid": PID,
            "tid": tid,
            "cat": "request",
        }
        if end:
            event["bp"] = "e"
        self.out.append(event)

    def _meta(self, name: str, tid: int, args: dict) -> None:
        self.out.append({
            "name": name,
            "ph": "M",
            "ts": 0,
            "pid": PID,
            "tid": tid,
            "args": args,
        })

    # -- event handlers ------------------------------------------------
    def _on_run_started(self, event: ev.RunStarted) -> None:
        self._meta("process_name", FRONT_TID, {"name": "serving"})
        self._meta("thread_name", FRONT_TID, {"name": "front door"})
        self._meta("thread_sort_index", FRONT_TID, {"sort_index": -1})
        for m in range(event.num_machines):
            self._meta(
                "thread_name",
                m + 1,
                {"name": f"machine {m} ({event.backends[m]})"},
            )
            self._meta("thread_sort_index", m + 1, {"sort_index": m})

    def _on_admitted(self, event: ev.RequestAdmitted) -> None:
        self._slice(
            f"admit req {event.req_id}",
            event.time,
            0.0,
            FRONT_TID,
            args={
                "tenant": event.tenant,
                "class": event.class_name,
                "prompt_len": event.prompt_len,
                "output_len": event.output_len,
            },
        )

    def _on_routed(self, event: ev.RequestRouted) -> None:
        self._slice(
            f"route req {event.req_id} -> m{event.machine}",
            event.time,
            0.0,
            FRONT_TID,
            args={"machine": event.machine},
        )
        self._flow(event.req_id, event.time, FRONT_TID)

    def _on_queue_depth(self, event: ev.QueueDepth) -> None:
        self.out.append({
            "name": "queue depth",
            "ph": "C",
            "ts": _us(event.time),
            "pid": PID,
            "tid": FRONT_TID,
            "args": {"queued": event.depth},
        })

    def _on_prefill_ended(self, event: ev.PrefillEnded) -> None:
        dur = event.compute + event.transfer
        tid = event.machine + 1
        self._slice(
            f"prefill req {event.req_id}",
            event.time - dur,
            dur,
            tid,
            args={
                "req_id": event.req_id,
                "compute": event.compute,
                "transfer": event.transfer,
            },
        )
        self._flow(event.req_id, event.time - dur, tid)

    def _on_resumed(self, event: ev.RequestResumed) -> None:
        tid = event.machine + 1
        self._slice(f"resume req {event.req_id}", event.time, 0.0, tid)
        self._flow(event.req_id, event.time, tid)

    def _on_decode_step(self, event: ev.DecodeStep) -> None:
        self._slice(
            f"decode x{event.batch}",
            event.time - event.seconds,
            event.seconds,
            event.machine + 1,
            args={
                "batch": event.batch,
                "gpu_busy": event.gpu_busy,
                "dimm_busy": event.dimm_busy,
                "swap_bytes": event.swap_bytes,
                "resident_bytes": event.resident_bytes,
            },
        )

    def _on_preempted(self, event: ev.RequestPreempted) -> None:
        tid = event.machine + 1
        self._slice(f"preempt req {event.req_id}", event.time, 0.0, tid)
        self._flow(event.req_id, event.time, tid)
        self.out.append({
            "name": "preemption",
            "ph": "i",
            "s": "t",
            "ts": _us(event.time),
            "pid": PID,
            "tid": tid,
            "cat": "serving",
            "args": {"req_id": event.req_id},
        })

    def _on_completed(self, event: ev.RequestCompleted) -> None:
        tid = event.machine + 1
        self._slice(
            f"finish req {event.req_id}",
            event.time,
            0.0,
            tid,
            args={"tokens": event.tokens},
        )
        self._flow(event.req_id, event.time, tid, end=True)

    def _on_machine_down(self, event: ev.MachineDown) -> None:
        tid = event.machine + 1
        self._down_since[event.machine] = event.time
        self.out.append({
            "name": "crash",
            "ph": "i",
            "s": "t",
            "ts": _us(event.time),
            "pid": PID,
            "tid": tid,
            "cat": "fault",
            "args": {"reason": event.reason},
        })

    def _on_machine_up(self, event: ev.MachineUp) -> None:
        start = self._down_since.pop(event.machine, None)
        if start is not None:
            self._slice(
                "down",
                start,
                event.time - start,
                event.machine + 1,
                args={"warmup": event.warmup},
            )

    def _on_migrated(self, event: ev.RequestMigrated) -> None:
        to = ("shared queue" if event.to_machine < 0
              else f"m{event.to_machine}")
        self._slice(
            f"migrate req {event.req_id} -> {to}",
            event.time,
            0.0,
            FRONT_TID,
            args={
                "from_machine": event.from_machine,
                "to_machine": event.to_machine,
                "generated": event.generated,
            },
        )
        self._flow(event.req_id, event.time, FRONT_TID)

    def _on_degraded(self, event: ev.MachineDegraded) -> None:
        self.out.append({
            "name": "degrade",
            "ph": "i",
            "s": "t",
            "ts": _us(event.time),
            "pid": PID,
            "tid": event.machine + 1,
            "cat": "fault",
            "args": {
                "surviving_dimm_fraction": event.surviving_dimm_fraction,
                "bandwidth_factor": event.bandwidth_factor,
                "evicted": event.evicted,
            },
        })

    def _on_health(self, event: ev.MachineHealth) -> None:
        self.out.append({
            "name": f"health: {event.state}",
            "ph": "i",
            "s": "t",
            "ts": _us(event.time),
            "pid": PID,
            "tid": event.machine + 1,
            "cat": "fault",
            "args": {"state": event.state, "slowdown": event.slowdown},
        })

    def _on_run_ended(self, event: ev.RunEnded) -> None:
        # close outages that never recovered so the lane shows the
        # machine as down through the end of the run
        for machine, start in sorted(self._down_since.items()):
            self._slice(
                "down (no restart)",
                start,
                max(0.0, event.makespan - start),
                machine + 1,
            )
        self._down_since.clear()

    _handlers: dict[type, typing.Callable] = {
        ev.RunStarted: _on_run_started,
        ev.RequestAdmitted: _on_admitted,
        ev.RequestRouted: _on_routed,
        ev.QueueDepth: _on_queue_depth,
        ev.PrefillEnded: _on_prefill_ended,
        ev.RequestResumed: _on_resumed,
        ev.DecodeStep: _on_decode_step,
        ev.RequestPreempted: _on_preempted,
        ev.RequestCompleted: _on_completed,
        ev.MachineDown: _on_machine_down,
        ev.MachineUp: _on_machine_up,
        ev.MachineDegraded: _on_degraded,
        ev.MachineHealth: _on_health,
        ev.RequestMigrated: _on_migrated,
        ev.RunEnded: _on_run_ended,
    }

    def feed(self, event: ev.Event) -> None:
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(self, event)


def chrome_trace(events: typing.Iterable[ev.Event]) -> dict:
    """Build the trace-event document for a recorded event stream."""
    exporter = _Exporter()
    for event in events:
        exporter.feed(event)
    return {"traceEvents": exporter.out, "displayTimeUnit": "ms"}


def export_chrome_trace(
    events: typing.Iterable[ev.Event], path: str
) -> None:
    """Write ``events`` as strict trace-event JSON to ``path``."""
    document = chrome_trace(events)
    with open(path, "w") as fh:
        json.dump(document, fh, allow_nan=False)
        fh.write("\n")
