"""A small metrics registry: counters, gauges, windowed histograms.

One registry backs one stream topic: its :meth:`MetricsRegistry.describe`
output becomes the topic's retained discovery message (field names,
kinds, units), and :meth:`MetricsRegistry.collect` produces the flat
``values`` mapping of each sample.  Histograms aggregate over the
*window* between two collects — the stream's configurable sample
interval — reporting windowed percentiles plus a cumulative count;
an empty window reports ``nan`` percentiles (rendered as "—").

Percentiles reuse :func:`repro.serving.metrics.percentile`, so a
streamed latency percentile and the post-hoc report's agree exactly.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from ..serving.metrics import percentile


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """Identity and documentation of one registered metric."""

    name: str
    kind: str
    unit: str = ""
    help: str = ""


class Counter:
    """A monotonically non-decreasing cumulative value."""

    kind = "counter"

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.spec.name!r} cannot decrease "
                f"(inc by {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Windowed sample distribution with cumulative count.

    ``observe`` appends to the current window; ``collect`` reports the
    window's percentiles and maximum, then (by default) resets it — the
    registry owner's collect cadence *is* the sample interval.
    """

    kind = "histogram"

    def __init__(
        self, spec: MetricSpec, percentiles: tuple[float, ...]
    ) -> None:
        self.spec = spec
        self.percentiles = percentiles
        self.count = 0
        self._window: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self._window.append(float(value))

    def field_names(self) -> list[str]:
        names = [f"{self.spec.name}_count"]
        names.extend(
            f"{self.spec.name}_p{p:g}" for p in self.percentiles
        )
        names.append(f"{self.spec.name}_max")
        return names

    def snapshot(self, reset: bool = True) -> dict[str, float]:
        window = self._window
        values = {f"{self.spec.name}_count": float(self.count)}
        for p in self.percentiles:
            values[f"{self.spec.name}_p{p:g}"] = (
                percentile(window, p) if window else math.nan
            )
        values[f"{self.spec.name}_max"] = (
            max(window) if window else math.nan
        )
        if reset:
            self._window = []
        return values


class MetricsRegistry:
    """Get-or-create registry of one topic's metrics.

    Re-registering a name with the same kind returns the existing
    metric; a kind mismatch raises (one name, one meaning).
    """

    def __init__(
        self, percentiles: typing.Sequence[float] = (50.0, 99.0)
    ) -> None:
        for p in percentiles:
            if not 0.0 <= p <= 100.0:
                raise ValueError("percentiles must lie in [0, 100]")
        self.percentiles = tuple(float(p) for p in percentiles)
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, factory, name: str, unit: str, help: str):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, factory):
                raise ValueError(
                    f"metric {name!r} is a {metric.kind}, not a "
                    f"{factory.kind}"
                )
            return metric
        spec = MetricSpec(
            name=name, kind=factory.kind, unit=unit, help=help
        )
        if factory is Histogram:
            metric = Histogram(spec, self.percentiles)
        else:
            metric = factory(spec)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, unit: str = "", help: str = "") -> Counter:
        return self._get_or_create(Counter, name, unit, help)

    def gauge(self, name: str, unit: str = "", help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, unit, help)

    def histogram(
        self, name: str, unit: str = "", help: str = ""
    ) -> Histogram:
        return self._get_or_create(Histogram, name, unit, help)

    # ------------------------------------------------------------------
    def describe(self) -> list[dict]:
        """Flat field descriptors — a topic's discovery payload."""
        fields: list[dict] = []
        for metric in self._metrics.values():
            spec = metric.spec
            if isinstance(metric, Histogram):
                for field in metric.field_names():
                    kind = "counter" if field.endswith("_count") else "gauge"
                    fields.append({
                        "name": field,
                        "kind": kind,
                        "unit": "" if field.endswith("_count") else spec.unit,
                        "help": spec.help,
                    })
            else:
                fields.append({
                    "name": spec.name,
                    "kind": spec.kind,
                    "unit": spec.unit,
                    "help": spec.help,
                })
        return fields

    def collect(self, reset_windows: bool = True) -> dict[str, float]:
        """The flat ``values`` mapping of one sample (resets windows)."""
        values: dict[str, float] = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                values.update(metric.snapshot(reset=reset_windows))
            else:
                values[metric.spec.name] = metric.value
        return values
