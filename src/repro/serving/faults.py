"""Deterministic fault injection for serving fleets.

A :class:`FaultSchedule` is pure data fixed before the run starts: a
seeded, validated list of machine **crashes** (with optional restart),
**stragglers** (multiplicative slowdown windows applied to every cost
the machine's backend produces), **router-side partitions** (machines
unroutable but still draining what they already hold), **failure
domains** (named machine groups — racks, power zones — whose members
crash together via :class:`DomainCrashSpec` or domain-scoped
sampling), and **degrades** (a machine loses a fraction of its DIMMs
or link bandwidth at an instant and renegotiates instead of dying).
Because the schedule is immutable and known a priori, every consumer —
the stepped serving loop, the fused macro-stepped loop, health-aware
routers, the telemetry timeline — reads the *same* timeline, which is
what makes fused==stepped equivalence and cross-process determinism
(``--jobs 1`` vs ``--jobs 2``) hold bit-for-bit under chaos.

Semantics, shared by both serving loops:

* a machine is **down** for ``t`` in ``[at, at + restart_after +
  restart_warmup)`` — the warmup models the cold-cache penalty of a
  restart (weights re-staged, partitions re-planned) as extended
  unavailability; ``restart_after=None`` means the machine never comes
  back.  A decode step or prefill whose completion lands at or past the
  crash instant is aborted: no token granted, no busy time charged.
  Killed residents and queued requests are *migrated* — re-queued (and
  re-routed, in cluster mode) with ``RequestRecord.migrations``
  incremented; their generated tokens survive (they were already
  streamed), but the KV cache does not, so re-admission re-runs prefill
  over ``prompt_len + generated`` tokens.  Restart resets backend
  sequence state (:meth:`~repro.serving.backends.ServingBackend.reset`).
* a **straggler** window multiplies step/prefill costs by ``slowdown``
  for ``t`` in ``[start, end)``; overlapping windows compound.  A step
  *started* before a boundary completes at the cost quoted at its start,
  exactly like a step that straddles an arrival.
* a **partition** makes the machine unroutable for ``t`` in
  ``[start, end)``: the router cannot deliver new work to it (delivery
  falls over to the next reachable machine), but the machine keeps
  serving its queue and residents.
* a **domain crash** is sugar that expands (via
  :attr:`FaultSchedule.expanded_crashes`) to one :class:`CrashSpec`
  per member of the named domain, all at the same instant — the
  correlated-failure mode of a shared rack PDU or cooling loop.  Every
  query method and both serving loops consume the *expanded* timeline,
  so a domain crash behaves exactly like the equivalent hand-written
  per-machine crashes.
* a **degrade** permanently removes ``dimm_fraction`` of a machine's
  DIMMs and/or derates its PCIe link to ``bandwidth_factor`` at
  ``t >= at`` (closed on the left, like a crash); multiple degrades on
  one machine compound multiplicatively.  The machine does *not* go
  down: its executor rebuilds the model partition over the surviving
  hardware, evicting (re-queue + re-prefill on the same machine) only
  the residents whose KV no longer fits.

With no ``faults:`` section every consumer short-circuits on
``faults is None`` — the fault-free path is bit-identical to a build
without this module (pinned by the goldens).

:func:`dump_fault_trace` / :func:`load_fault_trace` serialise a
schedule to a JSONL failure log (one event per line, ``kind``
discriminated) so real multi-day failure traces can be replayed via
the scenario key ``faults.trace`` — and so a sampled schedule can be
exported once and replayed bit-identically forever.
"""

from __future__ import annotations

import bisect
import dataclasses
import difflib
import functools
import json
import math
import random
import typing


def _check_time(value: float, label: str) -> float:
    value = float(value)
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{label} must be a finite non-negative time, "
                         f"got {value!r}")
    return value


@dataclasses.dataclass(frozen=True, slots=True)
class CrashSpec:
    """One machine crash: down at ``at``, back ``restart_after`` later.

    ``restart_after=None`` means the machine never restarts.  The
    schedule-level ``restart_warmup`` extends every restart.
    """

    machine: int
    at: float
    restart_after: float | None = None

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ValueError("crash machine index must be >= 0")
        _check_time(self.at, "crash time 'at'")
        if self.restart_after is not None:
            after = float(self.restart_after)
            if not math.isfinite(after) or after <= 0:
                raise ValueError("restart_after must be a positive time "
                                 "(or null for no restart)")


@dataclasses.dataclass(frozen=True, slots=True)
class StragglerSpec:
    """A slowdown window: costs on ``machine`` scale by ``slowdown``."""

    machine: int
    start: float
    end: float | None
    slowdown: float

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ValueError("straggler machine index must be >= 0")
        _check_time(self.start, "straggler start")
        if self.end is not None and float(self.end) <= self.start:
            raise ValueError("straggler end must be after start")
        if not self.slowdown >= 1.0:
            raise ValueError("slowdown must be >= 1 (a straggler cannot "
                             "speed a machine up)")


@dataclasses.dataclass(frozen=True, slots=True)
class PartitionSpec:
    """A router partition window: ``machine`` unroutable in [start, end)."""

    machine: int
    start: float
    end: float | None

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ValueError("partition machine index must be >= 0")
        _check_time(self.start, "partition start")
        if self.end is not None and float(self.end) <= self.start:
            raise ValueError("partition end must be after start")


@dataclasses.dataclass(frozen=True, slots=True)
class DomainSpec:
    """A named failure domain: machines sharing a rack/PDU/cooling loop.

    Domains must be pairwise disjoint (one PDU per machine) and their
    names unique — validated by :class:`FaultSchedule`.
    """

    name: str
    machines: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("domain name must be non-empty")
        object.__setattr__(self, "machines", tuple(self.machines))
        if not self.machines:
            raise ValueError(f"domain {self.name!r} has no machines")
        if len(set(self.machines)) != len(self.machines):
            raise ValueError(f"domain {self.name!r} lists a machine twice")
        if any(m < 0 for m in self.machines):
            raise ValueError(f"domain {self.name!r} machine indices "
                             f"must be >= 0")


@dataclasses.dataclass(frozen=True, slots=True)
class DomainCrashSpec:
    """A correlated crash: every member of ``domain`` goes down at
    ``at``, back ``restart_after`` later (None: never)."""

    domain: str
    at: float
    restart_after: float | None = None

    def __post_init__(self) -> None:
        if not self.domain:
            raise ValueError("domain crash must name a domain")
        _check_time(self.at, "domain crash time 'at'")
        if self.restart_after is not None:
            after = float(self.restart_after)
            if not math.isfinite(after) or after <= 0:
                raise ValueError("restart_after must be a positive time "
                                 "(or null for no restart)")


@dataclasses.dataclass(frozen=True, slots=True)
class DegradeSpec:
    """Partial failure at an instant: ``machine`` loses
    ``dimm_fraction`` of its DIMMs and its PCIe link is derated to
    ``bandwidth_factor`` of nominal, permanently from ``at``.

    At least one axis must actually degrade; multiple degrades on the
    same machine compound multiplicatively
    (:meth:`FaultSchedule.degrade_state`).  A degrade never takes a
    machine down — at least one DIMM always survives.
    """

    machine: int
    at: float
    dimm_fraction: float = 0.0
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ValueError("degrade machine index must be >= 0")
        _check_time(self.at, "degrade time 'at'")
        if not 0.0 <= self.dimm_fraction < 1.0:
            raise ValueError("dimm_fraction must lie in [0, 1) — a "
                             "machine losing every DIMM is a crash, "
                             "not a degrade")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must lie in (0, 1]")
        if self.dimm_fraction == 0.0 and self.bandwidth_factor == 1.0:
            raise ValueError("degrade must remove DIMMs or derate "
                             "bandwidth (it currently does neither)")


@dataclasses.dataclass(frozen=True, slots=True)
class SampleSpec:
    """Seeded random chaos: expected per-machine fault counts over a
    horizon, turned into concrete events by :func:`sample_faults`."""

    horizon: float
    crashes_per_machine: float = 0.0
    crashes_per_domain: float = 0.0
    mean_downtime: float = 0.0
    restart_fraction: float = 1.0
    stragglers_per_machine: float = 0.0
    mean_straggle: float = 0.0
    slowdown: float = 4.0
    partitions_per_machine: float = 0.0
    mean_partition: float = 0.0

    def __post_init__(self) -> None:
        horizon = _check_time(self.horizon, "sample horizon")
        if horizon <= 0:
            raise ValueError("sample horizon must be positive")
        for label in ("crashes_per_machine", "crashes_per_domain",
                      "mean_downtime",
                      "stragglers_per_machine", "mean_straggle",
                      "partitions_per_machine", "mean_partition"):
            _check_time(getattr(self, label), label)
        if not 0.0 <= self.restart_fraction <= 1.0:
            raise ValueError("restart_fraction must lie in [0, 1]")
        if not self.slowdown >= 1.0:
            raise ValueError("sampled slowdown must be >= 1")


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """The immutable fault timeline one run executes against.

    Query methods take half-open interval semantics (see the module
    docstring).  Down intervals *include* the restart warmup; per
    machine they must not overlap.  All derived timelines are cached —
    the schedule is shared read-only by every machine process, the
    router, and the telemetry timeline emitter.
    """

    crashes: tuple[CrashSpec, ...] = ()
    stragglers: tuple[StragglerSpec, ...] = ()
    partitions: tuple[PartitionSpec, ...] = ()
    seed: int = 0
    restart_warmup: float = 0.0
    domains: tuple[DomainSpec, ...] = ()
    domain_crashes: tuple[DomainCrashSpec, ...] = ()
    degrades: tuple[DegradeSpec, ...] = ()

    def __post_init__(self) -> None:
        _check_time(self.restart_warmup, "restart_warmup")
        names = [d.name for d in self.domains]
        if len(set(names)) != len(names):
            dup = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate domain names: {dup}")
        owner: dict[int, str] = {}
        for domain in self.domains:
            for m in domain.machines:
                if m in owner:
                    raise ValueError(
                        f"machine {m} belongs to domains {owner[m]!r} "
                        f"and {domain.name!r}; failure domains must be "
                        f"disjoint"
                    )
                owner[m] = domain.name
        for crash in self.domain_crashes:
            if crash.domain not in names:
                hint = difflib.get_close_matches(crash.domain, names, n=1)
                suggest = f" — did you mean {hint[0]!r}?" if hint else ""
                raise ValueError(
                    f"faults.domain_crashes names unknown domain "
                    f"{crash.domain!r}; declared domains: "
                    f"{sorted(names) if names else 'none'}{suggest}"
                )
        for machine, intervals in self._down_by_machine().items():
            for (s0, e0), (s1, _) in zip(intervals, intervals[1:]):
                if e0 is None or s1 < e0:
                    raise ValueError(
                        f"machine {machine} crash intervals overlap "
                        f"(a machine cannot crash while already down)"
                    )

    # ------------------------------------------------------------------
    @functools.cached_property
    def expanded_crashes(self) -> tuple[CrashSpec, ...]:
        """The per-machine crash timeline both serving loops execute:
        explicit crashes plus every domain crash expanded to one
        :class:`CrashSpec` per member.  With no domain crashes this is
        ``crashes`` verbatim (same tuple object), so schedules that
        predate domains behave bit-identically."""
        if not self.domain_crashes:
            return self.crashes
        members = {d.name: d.machines for d in self.domains}
        out = list(self.crashes)
        for crash in self.domain_crashes:
            out.extend(
                CrashSpec(m, crash.at, crash.restart_after)
                for m in members[crash.domain]
            )
        return tuple(sorted(out, key=lambda c: (c.at, c.machine)))

    def domain_of(self, machine: int) -> str | None:
        """The declared domain ``machine`` belongs to (None: none)."""
        for domain in self.domains:
            if machine in domain.machines:
                return domain.name
        return None

    @property
    def machines(self) -> frozenset[int]:
        """Every machine index named by any fault or domain."""
        named = {
            spec.machine
            for group in (self.crashes, self.stragglers,
                          self.partitions, self.degrades)
            for spec in group
        }
        named.update(m for d in self.domains for m in d.machines)
        return frozenset(named)

    def validate_fleet(self, num_machines: int) -> None:
        """Raise when a fault names a machine outside the fleet.

        The message names the offending scenario key and the valid
        index range, so a fat-fingered spec is a one-glance fix.
        """
        sources: list[tuple[str, typing.Iterable[int]]] = [
            ("faults.crashes", (c.machine for c in self.crashes)),
            ("faults.stragglers", (s.machine for s in self.stragglers)),
            ("faults.partitions", (p.machine for p in self.partitions)),
            ("faults.degrades", (d.machine for d in self.degrades)),
        ]
        sources.extend(
            (f"faults.domains[{d.name!r}]", d.machines)
            for d in self.domains
        )
        for key, machines in sources:
            for m in machines:
                if m >= num_machines:
                    raise ValueError(
                        f"{key} names machine {m} but the fleet has "
                        f"{num_machines} machines (valid indices: "
                        f"0..{num_machines - 1})"
                    )

    # ------------------------------------------------------------------
    @functools.cached_property
    def _down(self) -> dict[int, list[tuple[float, float | None]]]:
        return self._down_by_machine()

    def _down_by_machine(self) -> dict[int, list[tuple[float, float | None]]]:
        out: dict[int, list[tuple[float, float | None]]] = {}
        for crash in self.expanded_crashes:
            if crash.restart_after is None:
                end: float | None = None
            else:
                end = crash.at + crash.restart_after + self.restart_warmup
            out.setdefault(crash.machine, []).append((crash.at, end))
        for intervals in out.values():
            intervals.sort()
        return out

    @functools.cached_property
    def _slow(self) -> dict[int, list[StragglerSpec]]:
        out: dict[int, list[StragglerSpec]] = {}
        for spec in sorted(self.stragglers,
                           key=lambda s: (s.start, s.machine)):
            out.setdefault(spec.machine, []).append(spec)
        return out

    @functools.cached_property
    def _part(self) -> dict[int, list[PartitionSpec]]:
        out: dict[int, list[PartitionSpec]] = {}
        for spec in sorted(self.partitions,
                           key=lambda s: (s.start, s.machine)):
            out.setdefault(spec.machine, []).append(spec)
        return out

    @functools.cached_property
    def _degrade(self) -> dict[int, list[DegradeSpec]]:
        out: dict[int, list[DegradeSpec]] = {}
        for spec in sorted(self.degrades,
                           key=lambda s: (s.at, s.machine)):
            out.setdefault(spec.machine, []).append(spec)
        return out

    # ------------------------------------------------------------------
    def is_down(self, machine: int, time: float) -> bool:
        """True while ``machine`` is crashed (restart warmup included)."""
        for start, end in self._down.get(machine, ()):
            if start > time:
                return False
            if end is None or time < end:
                return True
        return False

    def up_time(self, machine: int, time: float) -> float | None:
        """When the outage covering ``time`` ends (None: never)."""
        for start, end in self._down.get(machine, ()):
            if start <= time and (end is None or time < end):
                return end
        raise ValueError(
            f"machine {machine} is not down at t={time}"
        )

    def next_down(self, machine: int, time: float) -> float | None:
        """The next crash instant at or after ``time`` (None: none left).

        A completion landing exactly on the returned instant is aborted
        (down intervals are closed on the left), so serving loops cap
        in-flight waits at this value.
        """
        for start, end in self._down.get(machine, ()):
            if start >= time:
                return start
            if end is None or time < end:
                return start  # already inside the outage
        return None

    def slowdown_at(self, machine: int, time: float) -> float:
        """The compound cost multiplier active on ``machine`` at ``time``."""
        factor = 1.0
        for spec in self._slow.get(machine, ()):
            if spec.start > time:
                break
            if spec.end is None or time < spec.end:
                factor *= spec.slowdown
        return factor

    def is_partitioned(self, machine: int, time: float) -> bool:
        """True while the router cannot reach ``machine``."""
        for spec in self._part.get(machine, ()):
            if spec.start > time:
                return False
            if spec.end is None or time < spec.end:
                return True
        return False

    def degrade_state(self, machine: int, time: float) -> tuple[float, float]:
        """``(surviving_dimm_fraction, bandwidth_factor)`` active on
        ``machine`` at ``time`` — the cumulative product of every
        degrade at or before it; ``(1.0, 1.0)`` when pristine."""
        surviving = 1.0
        bandwidth = 1.0
        for spec in self._degrade.get(machine, ()):
            if spec.at > time:
                break
            surviving *= 1.0 - spec.dimm_fraction
            bandwidth *= spec.bandwidth_factor
        return surviving, bandwidth

    def health_state(self, machine: int, time: float) -> str:
        """The watch-column health label, priority down > partitioned >
        degraded > slow > ok."""
        if self.is_down(machine, time):
            return "down"
        if self.is_partitioned(machine, time):
            return "partitioned"
        if self.degrade_state(machine, time) != (1.0, 1.0):
            return "degraded"
        if self.slowdown_at(machine, time) != 1.0:
            return "slow"
        return "ok"

    # ------------------------------------------------------------------
    @functools.cached_property
    def _exec_transitions(self) -> dict[int, list[float]]:
        """Per machine: sorted instants where execution behaviour changes
        (crash, restart, straggle, degrade boundaries — not partitions,
        which only affect routing)."""
        out: dict[int, set[float]] = {}
        for machine, intervals in self._down.items():
            for start, end in intervals:
                out.setdefault(machine, set()).add(start)
                if end is not None:
                    out.setdefault(machine, set()).add(end)
        for machine, specs in self._slow.items():
            for spec in specs:
                out.setdefault(machine, set()).add(spec.start)
                if spec.end is not None:
                    out.setdefault(machine, set()).add(spec.end)
        for machine, dspecs in self._degrade.items():
            for dspec in dspecs:
                out.setdefault(machine, set()).add(dspec.at)
        return {m: sorted(times) for m, times in out.items()}

    @functools.cached_property
    def _all_transitions(self) -> list[tuple[float, int]]:
        """Fleet-wide sorted (time, machine) execution+routing boundaries."""
        out: set[tuple[float, int]] = set()
        for machine, times in self._exec_transitions.items():
            out.update((t, machine) for t in times)
        for machine, specs in self._part.items():
            for spec in specs:
                out.add((spec.start, machine))
                if spec.end is not None:
                    out.add((spec.end, machine))
        return sorted(out)

    def next_exec_transition(self, machine: int, time: float) -> float | None:
        """First instant strictly after ``time`` where this machine's
        execution behaviour (up/down/slowdown) changes."""
        times = self._exec_transitions.get(machine)
        if not times:
            return None
        i = bisect.bisect_right(times, time)
        return times[i] if i < len(times) else None

    @functools.cached_property
    def _crash_starts(self) -> list[float]:
        return sorted(crash.at for crash in self.expanded_crashes)

    @functools.cached_property
    def _disruption_starts(self) -> list[float]:
        return sorted(
            {crash.at for crash in self.expanded_crashes}
            | {spec.at for spec in self.degrades}
        )

    def next_any_down(
        self, time: float, *, strict: bool = False
    ) -> float | None:
        """First crash instant at (or, with ``strict``, after) ``time``,
        on *any* machine.

        Crashes are the only events that can drop migrated work into a
        healthy machine's queue mid-span, so fused decode spans are
        bounded by this the same way they are bounded by arrivals — the
        stepped loop would see the refugee at its next token boundary,
        and the fused loop must end its span there to match.  Idle
        sleeps use ``strict=True`` (a wake-up *at* a crash instant must
        not re-arm for the same instant).
        """
        starts = self._crash_starts
        i = (bisect.bisect_right if strict else bisect.bisect_left)(
            starts, time
        )
        return starts[i] if i < len(starts) else None

    def next_any_disruption(
        self, time: float, *, strict: bool = False
    ) -> float | None:
        """First crash *or* degrade instant at (or, with ``strict``,
        after) ``time``, on *any* machine.

        This is the fleet-wide span/idle bound under faults: a crash
        migrates refugees into peers' queues and a degrade evicts
        overflow residents back into the (possibly shared) queue, so
        both can hand a healthy machine new work mid-span.  The stepped
        loop would see it at its next token boundary; the fused loop
        must end its span here to match.
        """
        starts = self._disruption_starts
        i = (bisect.bisect_right if strict else bisect.bisect_left)(
            starts, time
        )
        return starts[i] if i < len(starts) else None

    def next_any_transition(self, time: float) -> float | None:
        """First instant strictly after ``time`` where *any* machine's
        fault state changes — bounds idle sleeps so a machine can notice
        work migrated to it by a crashing peer."""
        times = self._all_transitions
        i = bisect.bisect_right(times, (time, math.inf))
        return times[i][0] if i < len(times) else None

    # ------------------------------------------------------------------
    def downtime_within(self, machine: int, horizon: float) -> float:
        """Seconds ``machine`` spends down inside ``[0, horizon)``."""
        total = 0.0
        for start, end in self._down.get(machine, ()):
            if start >= horizon:
                break
            stop = horizon if end is None else min(end, horizon)
            total += stop - start
        return total

    def recoveries_within(self, horizon: float) -> list[float]:
        """Outage durations (crash→serving again, warmup included) of
        every crash that fully recovers inside the run, in crash order."""
        out = []
        for crash in sorted(self.expanded_crashes,
                            key=lambda c: (c.at, c.machine)):
            if crash.restart_after is None:
                continue
            span = crash.restart_after + self.restart_warmup
            if crash.at + span <= horizon:
                out.append(span)
        return out

    def correlated_outage_within(self, horizon: float) -> float:
        """Seconds inside ``[0, horizon)`` during which at least two
        machines of *one* declared domain were simultaneously down —
        the blast-radius metric a per-machine availability number
        hides.  ``nan`` when no domains are declared (rendered "—")."""
        if not self.domains:
            return math.nan
        total = 0.0
        for domain in self.domains:
            deltas: list[tuple[float, int]] = []
            for machine in domain.machines:
                for start, end in self._down.get(machine, ()):
                    if start >= horizon:
                        continue
                    deltas.append((start, 1))
                    deltas.append((horizon if end is None
                                   else min(end, horizon), -1))
            deltas.sort()
            depth = 0
            since = 0.0
            for at, step in deltas:
                if depth >= 2:
                    total += at - since
                depth += step
                since = at
        return total


# ----------------------------------------------------------------------
def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's poisson sampler — tiny means only, which is all we need."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def _draw_crashes(
    rng: random.Random,
    spec: SampleSpec,
    mean: float,
    restart_warmup: float,
) -> list[tuple[float, float | None]]:
    """One Poisson crash-draw sequence: ``[(at, restart_after), ...]``.

    Shared verbatim by per-machine and per-domain sampling, so a
    single-member domain named ``str(m)`` reproduces machine ``m``'s
    crash draws bit-for-bit (pinned by a hypothesis test).  Crashes
    that would overlap the unit's earlier outage are dropped rather
    than shifted — the drop happens *after* the draws, so it never
    perturbs the RNG stream.
    """
    events: list[tuple[float, float | None]] = []
    busy_until = 0.0
    times = sorted(
        rng.uniform(0.0, spec.horizon)
        for _ in range(_poisson(rng, mean))
    )
    for at in times:
        if at < busy_until:
            continue
        restarts = rng.random() < spec.restart_fraction
        downtime = (
            rng.expovariate(1.0 / spec.mean_downtime)
            if spec.mean_downtime > 0 else 0.0
        )
        if restarts and downtime > 0:
            events.append((at, downtime))
            busy_until = at + downtime + restart_warmup
        else:
            events.append((at, None))
            busy_until = math.inf
    return events


def sample_faults(
    spec: SampleSpec,
    num_machines: int,
    *,
    seed: int = 0,
    restart_warmup: float = 0.0,
    domains: typing.Sequence[DomainSpec] = (),
) -> FaultSchedule:
    """Expand a :class:`SampleSpec` into a concrete seeded schedule.

    Per machine the crash/straggler/partition counts are Poisson with
    the spec's expected values, times uniform over the horizon and
    durations exponential around the means.  The RNG is seeded with a
    string (SHA-512 based init), so the same ``(seed, machine)`` pair
    yields the same events in every process — the basis of the
    ``--jobs`` determinism pin.  Crashes that would overlap a machine's
    earlier outage are dropped rather than shifted.

    With ``domains``, ``crashes_per_domain`` additionally samples
    *correlated* crashes per declared domain from an RNG keyed on the
    domain *name* (``faults:{seed}:{name}`` — the same namespace as
    the per-machine streams, so a single-member domain named
    ``str(m)`` draws exactly machine ``m``'s crash sequence).  A
    sampled per-machine crash that would overlap a sampled domain
    outage on that machine is dropped — correlated events win.
    """
    domains = tuple(domains)
    crashes: list[CrashSpec] = []
    stragglers: list[StragglerSpec] = []
    partitions: list[PartitionSpec] = []
    for machine in range(num_machines):
        rng = random.Random(f"faults:{seed}:{machine}")
        for at, after in _draw_crashes(
            rng, spec, spec.crashes_per_machine, restart_warmup
        ):
            crashes.append(CrashSpec(machine, at, after))
        for _ in range(_poisson(rng, spec.stragglers_per_machine)):
            start = rng.uniform(0.0, spec.horizon)
            length = (
                rng.expovariate(1.0 / spec.mean_straggle)
                if spec.mean_straggle > 0 else 0.0
            )
            if length > 0:
                stragglers.append(
                    StragglerSpec(machine, start, start + length,
                                  spec.slowdown)
                )
        for _ in range(_poisson(rng, spec.partitions_per_machine)):
            start = rng.uniform(0.0, spec.horizon)
            length = (
                rng.expovariate(1.0 / spec.mean_partition)
                if spec.mean_partition > 0 else 0.0
            )
            if length > 0:
                partitions.append(
                    PartitionSpec(machine, start, start + length)
                )
    domain_crashes: list[DomainCrashSpec] = []
    for domain in domains:
        rng = random.Random(f"faults:{seed}:{domain.name}")
        for at, after in _draw_crashes(
            rng, spec, spec.crashes_per_domain, restart_warmup
        ):
            domain_crashes.append(DomainCrashSpec(domain.name, at, after))
    if domain_crashes:
        # a per-machine crash landing inside a domain outage on that
        # machine is dropped (correlated events win); the trial
        # construction reuses the schedule's own overlap validation
        kept: list[CrashSpec] = []
        for crash in crashes:
            try:
                FaultSchedule(
                    crashes=tuple(kept) + (crash,),
                    domains=domains,
                    domain_crashes=tuple(domain_crashes),
                    restart_warmup=restart_warmup,
                )
            except ValueError:
                continue
            kept.append(crash)
        crashes = kept
    return FaultSchedule(
        crashes=tuple(crashes),
        stragglers=tuple(stragglers),
        partitions=tuple(partitions),
        seed=seed,
        restart_warmup=restart_warmup,
        domains=domains,
        domain_crashes=tuple(domain_crashes),
    )


def merge_sampled(
    schedule: FaultSchedule, spec: SampleSpec | None, num_machines: int
) -> FaultSchedule:
    """The schedule a run executes: explicit events plus sampled chaos.

    Explicit crashes win — a sampled crash (per-machine or domain)
    overlapping an explicit outage on the same machine is dropped.
    Sampling inherits the schedule's declared domains, so
    ``crashes_per_domain`` correlates exactly the declared groups.
    """
    if spec is None:
        return schedule

    def fits(crashes: typing.Sequence[CrashSpec],
             domain_crashes: typing.Sequence[DomainCrashSpec]) -> bool:
        try:
            # construction validates per-machine outage overlap over
            # the *expanded* (domain crashes included) timeline
            FaultSchedule(
                crashes=tuple(crashes),
                domains=schedule.domains,
                domain_crashes=tuple(domain_crashes),
                restart_warmup=schedule.restart_warmup,
            )
        except ValueError:
            return False
        return True

    sampled = sample_faults(
        spec,
        num_machines,
        seed=schedule.seed,
        restart_warmup=schedule.restart_warmup,
        domains=schedule.domains,
    )
    crashes = list(schedule.crashes)
    domain_crashes = list(schedule.domain_crashes)
    for dcrash in sampled.domain_crashes:
        if fits(crashes, domain_crashes + [dcrash]):
            domain_crashes.append(dcrash)
    for crash in sampled.crashes:
        if fits(crashes + [crash], domain_crashes):
            crashes.append(crash)
    return dataclasses.replace(
        schedule,
        crashes=tuple(sorted(crashes, key=lambda c: (c.at, c.machine))),
        domain_crashes=tuple(
            sorted(domain_crashes, key=lambda c: (c.at, c.domain))
        ),
        stragglers=tuple(
            sorted(schedule.stragglers + sampled.stragglers,
                   key=lambda s: (s.start, s.machine))
        ),
        partitions=tuple(
            sorted(schedule.partitions + sampled.partitions,
                   key=lambda s: (s.start, s.machine))
        ),
    )


# ----------------------------------------------------------------------
# Failure-trace replay: a schedule as a JSONL log, one event per line.
#
#   {"kind": "schedule", "seed": 42, "restart_warmup": 0.001}
#   {"kind": "domain", "name": "rack0", "machines": [0, 1]}
#   {"kind": "crash", "machine": 0, "at": 0.004, "restart_after": 0.006}
#   {"kind": "domain-crash", "domain": "rack0", "at": 0.01,
#    "restart_after": 0.005}
#   {"kind": "straggler", "machine": 1, "start": 0.002, "end": 0.03,
#    "slowdown": 8.0}
#   {"kind": "partition", "machine": 2, "start": 0.001, "end": 0.004}
#   {"kind": "degrade", "machine": 3, "at": 0.01, "dimm_fraction": 0.5,
#    "bandwidth_factor": 1.0}
#
# ``restart_after``/``end`` may be null (never restarts / never ends);
# the optional "schedule" header restores seed + warmup so that
# dump -> load round-trips a sampled schedule to an *equal* object
# (replay == sampled, pinned by tests).

_TRACE_KEYS: dict[str, tuple[str, ...]] = {
    "schedule": ("seed", "restart_warmup"),
    "domain": ("name", "machines"),
    "crash": ("machine", "at", "restart_after"),
    "domain-crash": ("domain", "at", "restart_after"),
    "straggler": ("machine", "start", "end", "slowdown"),
    "partition": ("machine", "start", "end"),
    "degrade": ("machine", "at", "dimm_fraction", "bandwidth_factor"),
}


def dump_fault_trace(schedule: FaultSchedule, path) -> None:
    """Write ``schedule`` as a JSONL failure log (strict JSON lines)."""
    lines: list[dict] = [{
        "kind": "schedule",
        "seed": schedule.seed,
        "restart_warmup": schedule.restart_warmup,
    }]
    for d in schedule.domains:
        lines.append({"kind": "domain", "name": d.name,
                      "machines": list(d.machines)})
    for c in schedule.crashes:
        lines.append({"kind": "crash", "machine": c.machine, "at": c.at,
                      "restart_after": c.restart_after})
    for dc in schedule.domain_crashes:
        lines.append({"kind": "domain-crash", "domain": dc.domain,
                      "at": dc.at, "restart_after": dc.restart_after})
    for s in schedule.stragglers:
        lines.append({"kind": "straggler", "machine": s.machine,
                      "start": s.start, "end": s.end,
                      "slowdown": s.slowdown})
    for p in schedule.partitions:
        lines.append({"kind": "partition", "machine": p.machine,
                      "start": p.start, "end": p.end})
    for g in schedule.degrades:
        lines.append({"kind": "degrade", "machine": g.machine,
                      "at": g.at, "dimm_fraction": g.dimm_fraction,
                      "bandwidth_factor": g.bandwidth_factor})
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(json.dumps(line, allow_nan=False) + "\n")


def load_fault_trace(path) -> FaultSchedule:
    """Load a JSONL failure log back into a :class:`FaultSchedule`.

    Every line must be a strict-JSON object whose ``kind`` is one of
    the documented event kinds; unknown kinds and malformed lines
    raise naming the offending ``path:line``.  Spec-level validation
    (times, overlaps, domain names) is the same as for hand-written
    schedules — a trace is not a backdoor around it.
    """
    seed = 0
    restart_warmup = 0.0
    domains: list[DomainSpec] = []
    crashes: list[CrashSpec] = []
    domain_crashes: list[DomainCrashSpec] = []
    stragglers: list[StragglerSpec] = []
    partitions: list[PartitionSpec] = []
    degrades: list[DegradeSpec] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            where = f"{path}:{lineno}"
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"fault trace {where}: malformed JSON ({exc})"
                ) from None
            if not isinstance(data, dict) or "kind" not in data:
                raise ValueError(
                    f"fault trace {where}: every line must be an "
                    f"object with a 'kind' field"
                )
            kind = data.pop("kind")
            allowed = _TRACE_KEYS.get(kind)
            if allowed is None:
                raise ValueError(
                    f"fault trace {where}: unknown event kind "
                    f"{kind!r} (expected one of "
                    f"{sorted(_TRACE_KEYS)})"
                )
            unknown = sorted(set(data) - set(allowed))
            if unknown:
                raise ValueError(
                    f"fault trace {where}: unknown {kind} fields "
                    f"{unknown} (allowed: {list(allowed)})"
                )
            try:
                if kind == "schedule":
                    seed = int(data.get("seed", seed))
                    restart_warmup = float(
                        data.get("restart_warmup", restart_warmup)
                    )
                elif kind == "domain":
                    domains.append(DomainSpec(
                        data["name"], tuple(data["machines"])
                    ))
                elif kind == "crash":
                    crashes.append(CrashSpec(
                        data["machine"], data["at"],
                        data.get("restart_after"),
                    ))
                elif kind == "domain-crash":
                    domain_crashes.append(DomainCrashSpec(
                        data["domain"], data["at"],
                        data.get("restart_after"),
                    ))
                elif kind == "straggler":
                    stragglers.append(StragglerSpec(
                        data["machine"], data["start"], data["end"],
                        data["slowdown"],
                    ))
                elif kind == "partition":
                    partitions.append(PartitionSpec(
                        data["machine"], data["start"], data["end"],
                    ))
                else:  # degrade
                    degrades.append(DegradeSpec(
                        data["machine"], data["at"],
                        data.get("dimm_fraction", 0.0),
                        data.get("bandwidth_factor", 1.0),
                    ))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"fault trace {where}: bad {kind} event: {exc}"
                ) from None
    return FaultSchedule(
        crashes=tuple(crashes),
        stragglers=tuple(stragglers),
        partitions=tuple(partitions),
        seed=seed,
        restart_warmup=restart_warmup,
        domains=tuple(domains),
        domain_crashes=tuple(domain_crashes),
        degrades=tuple(degrades),
    )


__all__: typing.Sequence[str] = [
    "CrashSpec",
    "StragglerSpec",
    "PartitionSpec",
    "DomainSpec",
    "DomainCrashSpec",
    "DegradeSpec",
    "SampleSpec",
    "FaultSchedule",
    "sample_faults",
    "merge_sampled",
    "dump_fault_trace",
    "load_fault_trace",
]
