"""Deterministic fault injection for serving fleets.

A :class:`FaultSchedule` is pure data fixed before the run starts: a
seeded, validated list of machine **crashes** (with optional restart),
**stragglers** (multiplicative slowdown windows applied to every cost
the machine's backend produces), and **router-side partitions**
(machines unroutable but still draining what they already hold).
Because the schedule is immutable and known a priori, every consumer —
the stepped serving loop, the fused macro-stepped loop, health-aware
routers, the telemetry timeline — reads the *same* timeline, which is
what makes fused==stepped equivalence and cross-process determinism
(``--jobs 1`` vs ``--jobs 2``) hold bit-for-bit under chaos.

Semantics, shared by both serving loops:

* a machine is **down** for ``t`` in ``[at, at + restart_after +
  restart_warmup)`` — the warmup models the cold-cache penalty of a
  restart (weights re-staged, partitions re-planned) as extended
  unavailability; ``restart_after=None`` means the machine never comes
  back.  A decode step or prefill whose completion lands at or past the
  crash instant is aborted: no token granted, no busy time charged.
  Killed residents and queued requests are *migrated* — re-queued (and
  re-routed, in cluster mode) with ``RequestRecord.migrations``
  incremented; their generated tokens survive (they were already
  streamed), but the KV cache does not, so re-admission re-runs prefill
  over ``prompt_len + generated`` tokens.  Restart resets backend
  sequence state (:meth:`~repro.serving.backends.ServingBackend.reset`).
* a **straggler** window multiplies step/prefill costs by ``slowdown``
  for ``t`` in ``[start, end)``; overlapping windows compound.  A step
  *started* before a boundary completes at the cost quoted at its start,
  exactly like a step that straddles an arrival.
* a **partition** makes the machine unroutable for ``t`` in
  ``[start, end)``: the router cannot deliver new work to it (delivery
  falls over to the next reachable machine), but the machine keeps
  serving its queue and residents.

With no ``faults:`` section every consumer short-circuits on
``faults is None`` — the fault-free path is bit-identical to a build
without this module (pinned by the goldens).
"""

from __future__ import annotations

import bisect
import dataclasses
import functools
import math
import random
import typing


def _check_time(value: float, label: str) -> float:
    value = float(value)
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{label} must be a finite non-negative time, "
                         f"got {value!r}")
    return value


@dataclasses.dataclass(frozen=True)
class CrashSpec:
    """One machine crash: down at ``at``, back ``restart_after`` later.

    ``restart_after=None`` means the machine never restarts.  The
    schedule-level ``restart_warmup`` extends every restart.
    """

    machine: int
    at: float
    restart_after: float | None = None

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ValueError("crash machine index must be >= 0")
        _check_time(self.at, "crash time 'at'")
        if self.restart_after is not None:
            after = float(self.restart_after)
            if not math.isfinite(after) or after <= 0:
                raise ValueError("restart_after must be a positive time "
                                 "(or null for no restart)")


@dataclasses.dataclass(frozen=True)
class StragglerSpec:
    """A slowdown window: costs on ``machine`` scale by ``slowdown``."""

    machine: int
    start: float
    end: float | None
    slowdown: float

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ValueError("straggler machine index must be >= 0")
        _check_time(self.start, "straggler start")
        if self.end is not None and float(self.end) <= self.start:
            raise ValueError("straggler end must be after start")
        if not self.slowdown >= 1.0:
            raise ValueError("slowdown must be >= 1 (a straggler cannot "
                             "speed a machine up)")


@dataclasses.dataclass(frozen=True)
class PartitionSpec:
    """A router partition window: ``machine`` unroutable in [start, end)."""

    machine: int
    start: float
    end: float | None

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ValueError("partition machine index must be >= 0")
        _check_time(self.start, "partition start")
        if self.end is not None and float(self.end) <= self.start:
            raise ValueError("partition end must be after start")


@dataclasses.dataclass(frozen=True)
class SampleSpec:
    """Seeded random chaos: expected per-machine fault counts over a
    horizon, turned into concrete events by :func:`sample_faults`."""

    horizon: float
    crashes_per_machine: float = 0.0
    mean_downtime: float = 0.0
    restart_fraction: float = 1.0
    stragglers_per_machine: float = 0.0
    mean_straggle: float = 0.0
    slowdown: float = 4.0
    partitions_per_machine: float = 0.0
    mean_partition: float = 0.0

    def __post_init__(self) -> None:
        horizon = _check_time(self.horizon, "sample horizon")
        if horizon <= 0:
            raise ValueError("sample horizon must be positive")
        for label in ("crashes_per_machine", "mean_downtime",
                      "stragglers_per_machine", "mean_straggle",
                      "partitions_per_machine", "mean_partition"):
            _check_time(getattr(self, label), label)
        if not 0.0 <= self.restart_fraction <= 1.0:
            raise ValueError("restart_fraction must lie in [0, 1]")
        if not self.slowdown >= 1.0:
            raise ValueError("sampled slowdown must be >= 1")


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """The immutable fault timeline one run executes against.

    Query methods take half-open interval semantics (see the module
    docstring).  Down intervals *include* the restart warmup; per
    machine they must not overlap.  All derived timelines are cached —
    the schedule is shared read-only by every machine process, the
    router, and the telemetry timeline emitter.
    """

    crashes: tuple[CrashSpec, ...] = ()
    stragglers: tuple[StragglerSpec, ...] = ()
    partitions: tuple[PartitionSpec, ...] = ()
    seed: int = 0
    restart_warmup: float = 0.0

    def __post_init__(self) -> None:
        _check_time(self.restart_warmup, "restart_warmup")
        for machine, intervals in self._down_by_machine().items():
            for (s0, e0), (s1, _) in zip(intervals, intervals[1:]):
                if e0 is None or s1 < e0:
                    raise ValueError(
                        f"machine {machine} crash intervals overlap "
                        f"(a machine cannot crash while already down)"
                    )

    # ------------------------------------------------------------------
    @property
    def machines(self) -> frozenset[int]:
        """Every machine index named by any fault."""
        return frozenset(
            spec.machine
            for group in (self.crashes, self.stragglers, self.partitions)
            for spec in group
        )

    def validate_fleet(self, num_machines: int) -> None:
        """Raise when a fault names a machine outside the fleet."""
        for m in self.machines:
            if m >= num_machines:
                raise ValueError(
                    f"fault schedule names machine {m} but the fleet has "
                    f"{num_machines} machines"
                )

    # ------------------------------------------------------------------
    @functools.cached_property
    def _down(self) -> dict[int, list[tuple[float, float | None]]]:
        return self._down_by_machine()

    def _down_by_machine(self) -> dict[int, list[tuple[float, float | None]]]:
        out: dict[int, list[tuple[float, float | None]]] = {}
        for crash in self.crashes:
            if crash.restart_after is None:
                end: float | None = None
            else:
                end = crash.at + crash.restart_after + self.restart_warmup
            out.setdefault(crash.machine, []).append((crash.at, end))
        for intervals in out.values():
            intervals.sort()
        return out

    @functools.cached_property
    def _slow(self) -> dict[int, list[StragglerSpec]]:
        out: dict[int, list[StragglerSpec]] = {}
        for spec in sorted(self.stragglers,
                           key=lambda s: (s.start, s.machine)):
            out.setdefault(spec.machine, []).append(spec)
        return out

    @functools.cached_property
    def _part(self) -> dict[int, list[PartitionSpec]]:
        out: dict[int, list[PartitionSpec]] = {}
        for spec in sorted(self.partitions,
                           key=lambda s: (s.start, s.machine)):
            out.setdefault(spec.machine, []).append(spec)
        return out

    # ------------------------------------------------------------------
    def is_down(self, machine: int, time: float) -> bool:
        """True while ``machine`` is crashed (restart warmup included)."""
        for start, end in self._down.get(machine, ()):
            if start > time:
                return False
            if end is None or time < end:
                return True
        return False

    def up_time(self, machine: int, time: float) -> float | None:
        """When the outage covering ``time`` ends (None: never)."""
        for start, end in self._down.get(machine, ()):
            if start <= time and (end is None or time < end):
                return end
        raise ValueError(
            f"machine {machine} is not down at t={time}"
        )

    def next_down(self, machine: int, time: float) -> float | None:
        """The next crash instant at or after ``time`` (None: none left).

        A completion landing exactly on the returned instant is aborted
        (down intervals are closed on the left), so serving loops cap
        in-flight waits at this value.
        """
        for start, end in self._down.get(machine, ()):
            if start >= time:
                return start
            if end is None or time < end:
                return start  # already inside the outage
        return None

    def slowdown_at(self, machine: int, time: float) -> float:
        """The compound cost multiplier active on ``machine`` at ``time``."""
        factor = 1.0
        for spec in self._slow.get(machine, ()):
            if spec.start > time:
                break
            if spec.end is None or time < spec.end:
                factor *= spec.slowdown
        return factor

    def is_partitioned(self, machine: int, time: float) -> bool:
        """True while the router cannot reach ``machine``."""
        for spec in self._part.get(machine, ()):
            if spec.start > time:
                return False
            if spec.end is None or time < spec.end:
                return True
        return False

    def health_state(self, machine: int, time: float) -> str:
        """The watch-column health label, priority down > partitioned >
        slow > ok."""
        if self.is_down(machine, time):
            return "down"
        if self.is_partitioned(machine, time):
            return "partitioned"
        if self.slowdown_at(machine, time) != 1.0:
            return "slow"
        return "ok"

    # ------------------------------------------------------------------
    @functools.cached_property
    def _exec_transitions(self) -> dict[int, list[float]]:
        """Per machine: sorted instants where execution behaviour changes
        (crash, restart, straggle boundaries — not partitions, which only
        affect routing)."""
        out: dict[int, set[float]] = {}
        for machine, intervals in self._down.items():
            for start, end in intervals:
                out.setdefault(machine, set()).add(start)
                if end is not None:
                    out.setdefault(machine, set()).add(end)
        for machine, specs in self._slow.items():
            for spec in specs:
                out.setdefault(machine, set()).add(spec.start)
                if spec.end is not None:
                    out.setdefault(machine, set()).add(spec.end)
        return {m: sorted(times) for m, times in out.items()}

    @functools.cached_property
    def _all_transitions(self) -> list[tuple[float, int]]:
        """Fleet-wide sorted (time, machine) execution+routing boundaries."""
        out: set[tuple[float, int]] = set()
        for machine, times in self._exec_transitions.items():
            out.update((t, machine) for t in times)
        for machine, specs in self._part.items():
            for spec in specs:
                out.add((spec.start, machine))
                if spec.end is not None:
                    out.add((spec.end, machine))
        return sorted(out)

    def next_exec_transition(self, machine: int, time: float) -> float | None:
        """First instant strictly after ``time`` where this machine's
        execution behaviour (up/down/slowdown) changes."""
        times = self._exec_transitions.get(machine)
        if not times:
            return None
        i = bisect.bisect_right(times, time)
        return times[i] if i < len(times) else None

    @functools.cached_property
    def _crash_starts(self) -> list[float]:
        return sorted(crash.at for crash in self.crashes)

    def next_any_down(
        self, time: float, *, strict: bool = False
    ) -> float | None:
        """First crash instant at (or, with ``strict``, after) ``time``,
        on *any* machine.

        Crashes are the only events that can drop migrated work into a
        healthy machine's queue mid-span, so fused decode spans are
        bounded by this the same way they are bounded by arrivals — the
        stepped loop would see the refugee at its next token boundary,
        and the fused loop must end its span there to match.  Idle
        sleeps use ``strict=True`` (a wake-up *at* a crash instant must
        not re-arm for the same instant).
        """
        starts = self._crash_starts
        i = (bisect.bisect_right if strict else bisect.bisect_left)(
            starts, time
        )
        return starts[i] if i < len(starts) else None

    def next_any_transition(self, time: float) -> float | None:
        """First instant strictly after ``time`` where *any* machine's
        fault state changes — bounds idle sleeps so a machine can notice
        work migrated to it by a crashing peer."""
        times = self._all_transitions
        i = bisect.bisect_right(times, (time, math.inf))
        return times[i][0] if i < len(times) else None

    # ------------------------------------------------------------------
    def downtime_within(self, machine: int, horizon: float) -> float:
        """Seconds ``machine`` spends down inside ``[0, horizon)``."""
        total = 0.0
        for start, end in self._down.get(machine, ()):
            if start >= horizon:
                break
            stop = horizon if end is None else min(end, horizon)
            total += stop - start
        return total

    def recoveries_within(self, horizon: float) -> list[float]:
        """Outage durations (crash→serving again, warmup included) of
        every crash that fully recovers inside the run, in crash order."""
        out = []
        for crash in sorted(self.crashes, key=lambda c: (c.at, c.machine)):
            if crash.restart_after is None:
                continue
            span = crash.restart_after + self.restart_warmup
            if crash.at + span <= horizon:
                out.append(span)
        return out


# ----------------------------------------------------------------------
def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's poisson sampler — tiny means only, which is all we need."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def sample_faults(
    spec: SampleSpec,
    num_machines: int,
    *,
    seed: int = 0,
    restart_warmup: float = 0.0,
) -> FaultSchedule:
    """Expand a :class:`SampleSpec` into a concrete seeded schedule.

    Per machine the crash/straggler/partition counts are Poisson with
    the spec's expected values, times uniform over the horizon and
    durations exponential around the means.  The RNG is seeded with a
    string (SHA-512 based init), so the same ``(seed, machine)`` pair
    yields the same events in every process — the basis of the
    ``--jobs`` determinism pin.  Crashes that would overlap a machine's
    earlier outage are dropped rather than shifted.
    """
    crashes: list[CrashSpec] = []
    stragglers: list[StragglerSpec] = []
    partitions: list[PartitionSpec] = []
    for machine in range(num_machines):
        rng = random.Random(f"faults:{seed}:{machine}")
        busy_until = 0.0
        times = sorted(
            rng.uniform(0.0, spec.horizon)
            for _ in range(_poisson(rng, spec.crashes_per_machine))
        )
        for at in times:
            if at < busy_until:
                continue
            restarts = rng.random() < spec.restart_fraction
            downtime = (
                rng.expovariate(1.0 / spec.mean_downtime)
                if spec.mean_downtime > 0 else 0.0
            )
            if restarts and downtime > 0:
                crashes.append(CrashSpec(machine, at, downtime))
                busy_until = at + downtime + restart_warmup
            else:
                crashes.append(CrashSpec(machine, at, None))
                busy_until = math.inf
        for _ in range(_poisson(rng, spec.stragglers_per_machine)):
            start = rng.uniform(0.0, spec.horizon)
            length = (
                rng.expovariate(1.0 / spec.mean_straggle)
                if spec.mean_straggle > 0 else 0.0
            )
            if length > 0:
                stragglers.append(
                    StragglerSpec(machine, start, start + length,
                                  spec.slowdown)
                )
        for _ in range(_poisson(rng, spec.partitions_per_machine)):
            start = rng.uniform(0.0, spec.horizon)
            length = (
                rng.expovariate(1.0 / spec.mean_partition)
                if spec.mean_partition > 0 else 0.0
            )
            if length > 0:
                partitions.append(
                    PartitionSpec(machine, start, start + length)
                )
    return FaultSchedule(
        crashes=tuple(crashes),
        stragglers=tuple(stragglers),
        partitions=tuple(partitions),
        seed=seed,
        restart_warmup=restart_warmup,
    )


def merge_sampled(
    schedule: FaultSchedule, spec: SampleSpec | None, num_machines: int
) -> FaultSchedule:
    """The schedule a run executes: explicit events plus sampled chaos.

    Explicit crashes win — a sampled crash overlapping an explicit
    outage on the same machine is dropped.
    """
    if spec is None:
        return schedule
    sampled = sample_faults(
        spec,
        num_machines,
        seed=schedule.seed,
        restart_warmup=schedule.restart_warmup,
    )
    crashes = list(schedule.crashes)
    for crash in sampled.crashes:
        try:
            # construction validates per-machine outage overlap
            FaultSchedule(
                crashes=tuple(crashes) + (crash,),
                restart_warmup=schedule.restart_warmup,
            )
        except ValueError:
            continue
        crashes.append(crash)
    return dataclasses.replace(
        schedule,
        crashes=tuple(sorted(crashes, key=lambda c: (c.at, c.machine))),
        stragglers=tuple(
            sorted(schedule.stragglers + sampled.stragglers,
                   key=lambda s: (s.start, s.machine))
        ),
        partitions=tuple(
            sorted(schedule.partitions + sampled.partitions,
                   key=lambda s: (s.start, s.machine))
        ),
    )


__all__: typing.Sequence[str] = [
    "CrashSpec",
    "StragglerSpec",
    "PartitionSpec",
    "SampleSpec",
    "FaultSchedule",
    "sample_faults",
    "merge_sampled",
]
