"""Pluggable continuous-batching admission policies.

A policy decides two things each scheduling round: the *order* in which
queued requests are considered for admission, and the *effective batch
cap* for the machine.  The simulator admits requests in policy order while
the running batch stays under ``min(max_batch, policy.batch_limit(...))``.

Shipped policies:

* ``fcfs`` — first-come-first-served continuous batching;
* ``fcfs-nobatch`` — FCFS with batching disabled (batch cap 1), the
  request-at-a-time baseline continuous batching is measured against;
* ``sjf`` — shortest-output-first (SJF on the decode phase), which trades
  fairness for lower mean latency under load;
* ``hermes-union`` — Hermes-aware batching: caps the batch so the
  activation-union inflation of batched sparse GEMV
  (:func:`repro.core.batch_union_factor`) stays under ``union_cap``.
  Batching amortises weight traffic, but every extra sequence unions more
  neuron groups into the active set; past the cap the per-step latency
  (hence every resident request's TBT) degrades faster than throughput
  improves.
"""

from __future__ import annotations

import typing

from .workload import Request

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backends import ServingBackend


class BatchingPolicy:
    """Base policy: FCFS order, no extra batch cap.

    Contract: admission priority is a *deterministic total order* defined
    by :meth:`key` (ties broken down to ``req_id``, which is unique).
    ``order`` sorts a whole queue by it and must accept an empty queue;
    ``select`` returns the index of the single next request to admit in
    one O(n) pass — the hot-path form the simulator uses, since admitting
    one request at a time never needs the full sort.  A subclass that
    overrides ``order`` directly (instead of ``key``) must keep ``select``
    consistent with ``order(queue)[0]``.  ``batch_limit`` must return at
    least 1 — the simulator additionally clamps it so a buggy policy
    cannot wedge a machine at batch 0 — and is treated as fixed while the
    running batch's composition is unchanged (true for every shipped
    policy, whose caps depend only on immutable trace statistics); the
    macro-stepped serving loop re-evaluates it at batch-composition
    boundaries.
    """

    name = "fcfs"

    def key(self, request: Request):
        """Sort key of one request — lowest key admits first."""
        return (request.arrival, request.req_id)

    def order(self, queue: list[Request]) -> list[Request]:
        """Queued requests in admission-priority order (highest first)."""
        return sorted(queue, key=self.key)

    def select(self, queue: list[Request]) -> int:
        """Index of the next request to admit (== ``order(queue)[0]``).

        Single pass, no sort and no scan-based removal: the simulator
        pops the returned index directly.
        """
        key = self.key
        return min(range(len(queue)), key=lambda i: key(queue[i]))

    def batch_limit(self, executor: "ServingBackend", max_batch: int) -> int:
        """Largest batch this policy lets the machine run (>= 1)."""
        return max_batch

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class FCFSPolicy(BatchingPolicy):
    """First-come-first-served continuous batching."""

    name = "fcfs"


class NoBatchPolicy(BatchingPolicy):
    """FCFS without batching: one request occupies the machine at a time."""

    name = "fcfs-nobatch"

    def batch_limit(self, executor: "ServingBackend", max_batch: int) -> int:
        return 1


class ShortestOutputFirstPolicy(BatchingPolicy):
    """Admit the request with the fewest output tokens first."""

    name = "sjf"

    def key(self, request: Request):
        # equal output lengths fall back to FCFS order, then the unique
        # req_id, so admission is a deterministic total order
        return (request.output_len, request.arrival, request.req_id)


class HermesUnionPolicy(BatchingPolicy):
    """FCFS order with a batch cap derived from the union factor.

    Admits up to the largest batch whose mean per-layer
    ``batch_union_factor`` stays below ``union_cap`` — i.e. the batched
    sparse GEMV may move at most ``union_cap`` times the weight bytes of a
    single sequence, bounding the step-latency inflation batching imposes
    on every resident request.
    """

    name = "hermes-union"

    def __init__(self, union_cap: float = 1.8) -> None:
        if union_cap < 1.0:
            raise ValueError("union_cap must be >= 1")
        self.union_cap = union_cap

    def batch_limit(self, executor: "ServingBackend", max_batch: int) -> int:
        # a cap at (or numerically below) the single-request union factor
        # of exactly 1.0 still admits batch 1: max_union_batch's floor, so
        # the machine always makes progress
        return executor.max_union_batch(self.union_cap, max_batch)


POLICIES: dict[str, typing.Callable[[], BatchingPolicy]] = {
    "fcfs": FCFSPolicy,
    "fcfs-nobatch": NoBatchPolicy,
    "sjf": ShortestOutputFirstPolicy,
    "hermes-union": HermesUnionPolicy,
}


def get_policy(name: str | BatchingPolicy) -> BatchingPolicy:
    """Resolve a policy by name (or pass an instance through)."""
    if isinstance(name, BatchingPolicy):
        return name
    try:
        return POLICIES[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise KeyError(
            f"unknown policy {name!r}; known policies: {known}") from None
