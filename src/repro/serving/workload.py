"""Request workload generation for the online serving simulator.

A workload is a list of :class:`Request` objects — arrival time, prompt
length, output length — that an open-loop client population submits to the
serving cluster.  Two arrival processes are modelled:

* ``poisson`` — memoryless arrivals at a constant mean rate, the standard
  open-loop assumption for aggregate traffic from many independent users;
* ``bursty`` — a two-state modulated Poisson process that alternates quiet
  and burst periods (mean rate is preserved), stressing queueing behaviour
  the way diurnal spikes and retry storms do.

Trace-driven workloads (replaying measured arrival timestamps) come in
through :func:`workload_from_arrivals`.  Everything is driven by a seeded
``numpy`` generator, so a (config, seed) pair is fully reproducible.
"""

from __future__ import annotations

import dataclasses

import numpy as np

#: supported prompt/output length distributions
LENGTH_KINDS = ("fixed", "uniform", "lognormal")


@dataclasses.dataclass(frozen=True, slots=True)
class Request:
    """One inference request as submitted by a client.

    ``tenant`` identifies the submitting workload stream (used by
    session-affinity routing and fairness accounting); ``class_name``
    names the request's priority/SLO class — both default to
    ``"default"`` so single-tenant workloads need not set them.  The
    cluster layer (:mod:`repro.cluster`) resolves ``class_name`` against
    its configured :class:`~repro.cluster.PriorityClass` table; the
    single-machine simulator ignores both fields.
    """

    req_id: int
    arrival: float  # seconds since simulation start
    prompt_len: int
    output_len: int
    tenant: str = "default"
    class_name: str = "default"

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        if self.prompt_len < 1 or self.output_len < 1:
            raise ValueError("prompt_len and output_len must be >= 1")


@dataclasses.dataclass(frozen=True)
class LengthDistribution:
    """Token-count distribution for prompts or outputs.

    ``fixed`` always returns ``mean``; ``uniform`` draws from
    ``[low, high]``; ``lognormal`` draws a heavy-tailed length with the
    requested mean and log-space ``sigma`` (the shape real prompt-length
    datasets such as ShareGPT exhibit).  Samples are clamped to
    ``[low, high]`` when bounds are given, and are always >= 1.
    """

    kind: str = "fixed"
    mean: float = 128.0
    low: int | None = None
    high: int | None = None
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in LENGTH_KINDS:
            raise ValueError(f"unknown length distribution {self.kind!r}; "
                             f"choose from {', '.join(LENGTH_KINDS)}")
        if self.mean < 1:
            raise ValueError("mean length must be >= 1")
        if self.kind == "uniform" and (self.low is None or self.high is None):
            raise ValueError("uniform distribution needs low and high")
        if (self.low is not None and self.high is not None
                and self.low > self.high):
            raise ValueError("low must not exceed high")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def sample(self, rng: np.random.Generator) -> int:
        if self.kind == "fixed":
            value = self.mean
        elif self.kind == "uniform":
            value = rng.integers(self.low, self.high + 1)
        else:  # lognormal with E[X] = mean
            mu = np.log(self.mean) - 0.5 * self.sigma**2
            value = rng.lognormal(mu, self.sigma)
        if self.low is not None:
            value = max(value, self.low)
        if self.high is not None:
            value = min(value, self.high)
        return max(1, int(round(float(value))))


@dataclasses.dataclass(frozen=True)
class WorkloadConfig:
    """Open-loop traffic description."""

    arrival: str = "poisson"  # 'poisson' | 'bursty'
    rate: float = 4.0  # mean requests per second
    num_requests: int = 64
    prompt_lens: LengthDistribution = LengthDistribution(mean=128)
    output_lens: LengthDistribution = LengthDistribution(mean=128)
    #: bursty only — peak-to-mean rate ratio inside a burst
    burst_factor: float = 4.0
    #: bursty only — long-run fraction of time spent in the burst state
    burst_fraction: float = 0.2
    #: bursty only — mean burst period length in seconds
    burst_period: float = 2.0

    def __post_init__(self) -> None:
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.arrival == "bursty":
            if self.burst_factor <= 1.0:
                raise ValueError("burst_factor must exceed 1")
            if not 0.0 < self.burst_fraction < 1.0:
                raise ValueError("burst_fraction must lie in (0, 1)")
            if self.burst_factor * self.burst_fraction >= 1.0:
                raise ValueError(
                    "burst_factor * burst_fraction must stay below 1 so the "
                    "quiet-state rate remains positive")
            if self.burst_period <= 0:
                raise ValueError("burst_period must be positive")


def _poisson_arrivals(
    config: WorkloadConfig, rng: np.random.Generator
) -> np.ndarray:
    gaps = rng.exponential(1.0 / config.rate, size=config.num_requests)
    return np.cumsum(gaps)


def _bursty_arrivals(
    config: WorkloadConfig, rng: np.random.Generator
) -> np.ndarray:
    """Two-state MMPP: exponential quiet/burst dwell times, Poisson within.

    The quiet rate is solved so the long-run mean equals ``config.rate``:
    ``rate = f * rate_burst + (1 - f) * rate_quiet``.
    """
    f = config.burst_fraction
    rate_burst = config.rate * config.burst_factor
    rate_quiet = config.rate * (1.0 - f * config.burst_factor) / (1.0 - f)
    quiet_period = config.burst_period * (1.0 - f) / f
    arrivals: list[float] = []
    now = 0.0
    in_burst = False
    while len(arrivals) < config.num_requests:
        mean_dwell = config.burst_period if in_burst else quiet_period
        dwell = rng.exponential(mean_dwell)
        rate = rate_burst if in_burst else rate_quiet
        t = now
        while len(arrivals) < config.num_requests:
            t += rng.exponential(1.0 / rate)
            if t > now + dwell:
                break
            arrivals.append(t)
        now += dwell
        in_burst = not in_burst
    return np.asarray(arrivals[:config.num_requests])


def generate_workload(
    config: WorkloadConfig,
    seed: int = 0,
    *,
    tenant: str = "default",
    class_name: str = "default",
) -> list[Request]:
    """Sample a full open-loop workload; deterministic in (config, seed).

    ``tenant``/``class_name`` tag every request of the stream (used by
    cluster routing, SLO classes, and fairness accounting); the sampled
    arrivals and lengths do not depend on them.
    """
    rng = np.random.default_rng(seed)
    if config.arrival == "poisson":
        arrivals = _poisson_arrivals(config, rng)
    else:
        arrivals = _bursty_arrivals(config, rng)
    return [
        Request(req_id=i, arrival=float(t),
                prompt_len=config.prompt_lens.sample(rng),
                output_len=config.output_lens.sample(rng),
                tenant=tenant, class_name=class_name)
        for i, t in enumerate(arrivals)
    ]


def merge_workloads(*streams: list[Request]) -> list[Request]:
    """Interleave tenant streams into one workload with fresh req_ids.

    Requests are ordered by ``(arrival, source order)`` and renumbered so
    the merged workload has unique, dense ids — the form the simulators
    require.  Tenant and class tags are preserved.
    """
    tagged = [(r.arrival, s, i) for s, stream in enumerate(streams)
              for i, r in enumerate(stream)]
    if not tagged:
        raise ValueError("merge_workloads needs at least one request")
    tagged.sort()
    return [dataclasses.replace(streams[s][i], req_id=new_id)
            for new_id, (_, s, i) in enumerate(tagged)]


def workload_from_arrivals(
    arrivals: list[float],
    prompt_lens: list[int] | int,
    output_lens: list[int] | int,
) -> list[Request]:
    """Trace-driven workload from measured arrival timestamps.

    ``prompt_lens``/``output_lens`` may be scalars (applied to every
    request) or per-request lists aligned with ``arrivals``.
    """
    n = len(arrivals)
    if n == 0:
        raise ValueError("arrivals must be non-empty")
    if sorted(arrivals) != list(arrivals):
        raise ValueError("arrivals must be non-decreasing")
    prompts = [prompt_lens] * n if isinstance(prompt_lens, int) \
        else list(prompt_lens)
    outputs = [output_lens] * n if isinstance(output_lens, int) \
        else list(output_lens)
    if len(prompts) != n or len(outputs) != n:
        raise ValueError("length lists must match arrivals")
    return [Request(req_id=i, arrival=float(t), prompt_len=p, output_len=o)
            for i, (t, p, o) in enumerate(zip(arrivals, prompts, outputs))]
