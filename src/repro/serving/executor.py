"""Per-machine execution: drives the Hermes engine in stepped mode.

A :class:`MachineExecutor` owns one :class:`~repro.core.HermesSystem` and a
long-lived :class:`~repro.core.HermesSession` opened with ``wrap=True``, so
the serving simulator can charge *per-request prefill* and *per-token
decode* costs with a batch size that changes whenever a request joins or
leaves — the engine's control-plane state (predictor table, hot/cold
residency, window scheduler) evolves continuously across requests, exactly
as it would on a machine that never goes idle between users.

Activation ground truth comes from one shared trace per model.  The engine
models a batch as one activation stream plus the batch-union inflation
factor (paper §V-C), so a single trace faithfully stands in for the
concurrent sequences; the cursor cycles over the decode region.
"""

from __future__ import annotations

import numpy as np

from ..core import HermesConfig, HermesSystem, OfflinePartition, StepCost
from ..hardware import Machine
from ..models import ModelSpec
from ..sparsity import ActivationTrace, TraceConfig, generate_trace

#: default shared-trace shape for executors created without a trace
DEFAULT_TRACE_PROMPT = 64
DEFAULT_TRACE_DECODE = 64


def default_serving_trace(model: ModelSpec, *, granularity: int = 64,
                          seed: int = 7) -> ActivationTrace:
    """A compact activation trace sized for long serving runs."""
    config = TraceConfig(prompt_len=DEFAULT_TRACE_PROMPT,
                         decode_len=DEFAULT_TRACE_DECODE,
                         granularity=granularity)
    return generate_trace(model, config, seed=seed)


class MachineExecutor:
    """One Hermes machine serving a stream of requests."""

    def __init__(self, machine: Machine, model: ModelSpec,
                 config: HermesConfig | None = None, *,
                 trace: ActivationTrace | None = None,
                 nominal_batch: int = 8,
                 partition: OfflinePartition | None = None,
                 granularity: int = 64, seed: int = 7) -> None:
        if nominal_batch < 1:
            raise ValueError("nominal_batch must be >= 1")
        self.machine = machine
        self.model = model
        self.system = HermesSystem(machine, model, config)
        if trace is None:
            trace = default_serving_trace(model, granularity=granularity,
                                          seed=seed)
        self.trace = trace
        #: the offline partition is solved for this expected batch size
        self.nominal_batch = nominal_batch
        self.session = self.system.session(trace, nominal_batch, wrap=True,
                                           partition=partition)
        self._union_batch_cache: dict[tuple[float, int], int] = {}

    # ------------------------------------------------------------------
    def prefill_cost(self, prompt_len: int,
                     batch: int = 1) -> tuple[float, float]:
        """(GPU compute, PCIe transfer) seconds to prefill one request.

        The hot set stays GPU-resident between requests on a serving
        machine, so this charges prompt compute plus the KV-cache push
        only (``reload_hot=False``).
        """
        if prompt_len < 1:
            raise ValueError("prompt_len must be >= 1")
        return self.session.prefill_cost(prompt_len, batch,
                                         reload_hot=False)

    def prefill_seconds(self, prompt_len: int, batch: int = 1) -> float:
        """Total latency of prefilling one joining request."""
        if prompt_len < 1:
            raise ValueError("prompt_len must be >= 1")
        return self.session.prefill_seconds(prompt_len, batch,
                                            reload_hot=False)

    def decode_step(self, batch: int, context: int) -> StepCost:
        """One continuous-batching decode iteration over ``batch`` seqs."""
        return self.session.decode_step(batch=batch, context=context)

    # ------------------------------------------------------------------
    def mean_union(self, batch: int) -> float:
        """Mean per-layer batch-union inflation at ``batch`` sequences."""
        layers = self.model.num_layers
        return float(np.mean([self.session.union_factor(l, batch)
                              for l in range(layers)]))

    def max_union_batch(self, union_cap: float, limit: int) -> int:
        """Largest batch whose mean union factor stays under ``union_cap``.

        The union factor is monotone in the batch size and depends only on
        the immutable trace frequencies, so the answer is memoised per
        (cap, limit); at least batch 1 is always admitted.
        """
        if limit < 1:
            raise ValueError("limit must be >= 1")
        key = (union_cap, limit)
        if key not in self._union_batch_cache:
            best = 1
            for b in range(2, limit + 1):
                if self.mean_union(b) > union_cap:
                    break
                best = b
            self._union_batch_cache[key] = best
        return self._union_batch_cache[key]
