"""Per-machine execution: drives the Hermes engine in stepped mode.

A :class:`MachineExecutor` owns one :class:`~repro.core.HermesSystem` and a
long-lived :class:`~repro.core.HermesSession` opened with ``wrap=True``, so
the serving simulator can charge *per-request prefill* and *per-token
decode* costs with a batch size that changes whenever a request joins or
leaves — the engine's control-plane state (predictor table, hot/cold
residency, window scheduler) evolves continuously across requests, exactly
as it would on a machine that never goes idle between users.

Activation ground truth comes from one shared trace per model.  The engine
models a batch as one activation stream plus the batch-union inflation
factor (paper §V-C), so a single trace faithfully stands in for the
concurrent sequences; the cursor cycles over the decode region.
"""

from __future__ import annotations

import dataclasses
import functools
import typing

from ..core import (
    HermesConfig,
    HermesSystem,
    OfflinePartition,
    SpanCost,
    StepCost,
)
from ..hardware import Machine
from ..models import ModelSpec
from ..sparsity import ActivationTrace, TraceConfig, generate_trace

#: default shared-trace shape for executors created without a trace
DEFAULT_TRACE_PROMPT = 64
DEFAULT_TRACE_DECODE = 64


@functools.lru_cache(maxsize=8)
def _default_trace_cached(
    model: ModelSpec, granularity: int, seed: int
) -> ActivationTrace:
    config = TraceConfig(
        prompt_len=DEFAULT_TRACE_PROMPT,
        decode_len=DEFAULT_TRACE_DECODE,
        granularity=granularity,
    )
    return generate_trace(model, config, seed=seed)


def default_serving_trace(
    model: ModelSpec, *, granularity: int = 64, seed: int = 7
) -> ActivationTrace:
    """A compact activation trace sized for long serving runs.

    Memoised per (model, granularity, seed): trace generation is fully
    deterministic and the engine treats traces as immutable, so repeated
    simulator constructions (benchmark loops, sweep grids) share one
    instance instead of re-sampling it every run.
    """
    return _default_trace_cached(model, granularity, seed)


def max_union_batch_under_cap(
    mean_union: typing.Callable[[int], float],
    union_cap: float,
    limit: int,
    cache: dict[tuple[float, int], int],
) -> int:
    """Largest batch whose ``mean_union`` stays under ``union_cap``.

    The one spelling of the batching-cap search every backend shares:
    the union factor is monotone in the batch size and depends only on
    immutable trace frequencies, so the answer is memoised per
    (cap, limit) in the caller-owned ``cache``; at least batch 1 is
    always admitted.
    """
    if limit < 1:
        raise ValueError("limit must be >= 1")
    key = (union_cap, limit)
    if key not in cache:
        best = 1
        for b in range(2, limit + 1):
            if mean_union(b) > union_cap:
                break
            best = b
        cache[key] = best
    return cache[key]


def _clone_partition(partition: OfflinePartition) -> OfflinePartition:
    """A private mutable copy of a solved partition.

    Window scheduling remaps ``dimm_of`` in place, so cached pristine
    solutions must be cloned per serving run — the machines *within* one
    run keep sharing a single copy, as before.
    """
    return OfflinePartition(
        hot_masks=[mask.copy() for mask in partition.hot_masks],
        dimm_of=[row.copy() for row in partition.dimm_of],
        strategy=partition.strategy,
    )


def _partition_cache(trace: ActivationTrace) -> dict:
    """Per-trace memo of solved offline partitions.

    Stored on the trace object itself (like its lazy ``_stacked`` view)
    so the cache's lifetime — and the identity component of the key —
    is exactly the trace.  The partition is otherwise deterministic in
    (machine, model, config, batch), which forms the key.
    """
    cache = getattr(trace, "_partition_cache", None)
    if cache is None:
        cache = {}
        trace._partition_cache = cache
    return cache


def _span_probe_store(trace: ActivationTrace) -> dict:
    """Per-trace memo of fast-fidelity span cost probes.

    Same lifetime discipline as :func:`_partition_cache`.  A point's
    value is the live-engine step cost at its *first* probe and is
    shared by every machine with identical (machine, model, config,
    nominal_batch) for the trace's lifetime, so a 1000-machine
    homogeneous fleet pays each point's ~half-millisecond engine step
    once instead of once per machine.  Repeated identical runs see the
    same values (the first run also used them from first store), which
    is what keeps fast mode deterministic run-to-run.
    """
    store = getattr(trace, "_span_probe_store", None)
    if store is None:
        store = {}
        trace._span_probe_store = store
    return store


class MachineExecutor:
    """One Hermes machine serving a stream of requests.

    The ``hermes`` entry of the serving-backend registry
    (:mod:`repro.serving.backends`): the reference implementation of the
    :class:`~repro.serving.backends.ServingBackend` surface, backed by a
    long-lived :class:`~repro.core.HermesSession` whose control plane
    (predictor table, hot/cold residency, window scheduler) evolves
    across requests.
    """

    name = "hermes"
    #: preempted requests keep their KV state resident — re-admission is
    #: free, exactly what the deadline preemptor assumes
    supports_preemption = True
    #: batched sparse GEMV moves the *union* of the batch's activations,
    #: so union-capped batching meaningfully bounds the step latency
    supports_union_batching = True

    def __init__(
        self,
        machine: Machine,
        model: ModelSpec,
        config: HermesConfig | None = None,
        *,
        trace: ActivationTrace | None = None,
        nominal_batch: int = 8,
        partition: OfflinePartition | None = None,
        granularity: int = 64,
        seed: int = 7,
    ) -> None:
        if nominal_batch < 1:
            raise ValueError("nominal_batch must be >= 1")
        self.machine = machine
        #: the pristine hardware — degrades always derate from this, so
        #: cumulative degrade state stays idempotent to re-apply
        self._base_machine = machine
        self.model = model
        self.system = HermesSystem(machine, model, config)
        if trace is None:
            trace = default_serving_trace(
                model, granularity=granularity, seed=seed
            )
        self.trace = trace
        #: the offline partition is solved for this expected batch size
        self.nominal_batch = nominal_batch
        if partition is None:
            # reuse (a clone of) an already-solved partition for this
            # exact (trace, machine, model, config, batch) — repeated
            # runs over one trace skip the solver entirely
            cache = _partition_cache(trace)
            key = (machine, model.name, self.system.config, nominal_batch)
            pristine = cache.get(key)
            if pristine is not None:
                partition = _clone_partition(pristine)
            self.session = self.system.session(
                trace, nominal_batch, wrap=True, partition=partition
            )
            if pristine is None:
                cache[key] = _clone_partition(self.session.partition)
        else:
            self.session = self.system.session(
                trace, nominal_batch, wrap=True, partition=partition
            )
        self._union_batch_cache: dict[tuple[float, int], int] = {}
        self._prefill_cache: dict[tuple[int, int], tuple[float, float]] = {}
        self._span_probe_cache: dict[
            tuple[int, int], tuple[float, float, float]
        ] = {}
        self._estimated_step: float | None = None

    # ------------------------------------------------------------------
    def prefill_cost(self, prompt_len: int,
                     batch: int = 1) -> tuple[float, float]:
        """(GPU compute, PCIe transfer) seconds to prefill one request.

        The hot set stays GPU-resident between requests on a serving
        machine, so this charges prompt compute plus the KV-cache push
        only (``reload_hot=False``).  Pure cost query, deterministic in
        (prompt_len, batch) for the session's lifetime, so it is
        memoised — admission and deadline checks hit the same prompt
        lengths over and over.
        """
        if prompt_len < 1:
            raise ValueError("prompt_len must be >= 1")
        key = (prompt_len, batch)
        cost = self._prefill_cache.get(key)
        if cost is None:
            cost = self.session.prefill_cost(
                prompt_len, batch, reload_hot=False
            )
            self._prefill_cache[key] = cost
        return cost

    def prefill_seconds(self, prompt_len: int, batch: int = 1) -> float:
        """Total latency of prefilling one joining request."""
        compute, transfer = self.prefill_cost(prompt_len, batch)
        return compute + transfer

    def decode_step(self, batch: int, context: int) -> StepCost:
        """One continuous-batching decode iteration over ``batch`` seqs."""
        return self.session.decode_step(batch=batch, context=context)

    def decode_span(
        self,
        batch: int,
        contexts: typing.Sequence[int],
        *,
        start_time: float = 0.0,
        until: float | None = None,
    ) -> SpanCost:
        """A fused run of consecutive decode iterations at fixed batch.

        Thin pass-through to
        :meth:`~repro.core.HermesSession.decode_steps` — see there for
        the ``until`` truncation semantics the macro-stepped scheduling
        loop relies on.
        """
        return self.session.decode_steps(
            batch, contexts, start_time=start_time, until=until
        )

    def _span_probe(
        self, batch: int, context: int
    ) -> tuple[float, float, float]:
        """One memoised ``decode_step`` cost probe for ``span_estimate``.

        The live engine's step cost at a (batch, context) point drifts
        slightly as predictor/window state evolves; fast fidelity
        freezes each point at its first probe so a megafleet run pays
        the ~half-millisecond engine step once per distinct point
        instead of twice per span.  Part of fast mode's documented
        approximation; the degrade path clears the memo because a
        renegotiated machine quotes genuinely different costs.
        """
        key = (batch, context)
        hit = self._span_probe_cache.get(key)
        if hit is None:
            store = _span_probe_store(self.trace)
            skey = (
                self.machine, self.model.name, self.system.config,
                self.nominal_batch, batch, context,
            )
            hit = store.get(skey)
            if hit is None:
                cost = self.decode_step(batch, context)
                hit = (cost.seconds, cost.gpu_busy, cost.dimm_busy)
                store[skey] = hit
            self._span_probe_cache[key] = hit
        return hit

    def span_estimate(
        self, batch: int, start_context: float, steps: int
    ) -> tuple[float, float, float]:
        """Trapezoid span aggregation for ``fidelity: fast``.

        Probes the session at the context ramp's two ends and charges
        ``steps * mean`` — the Hermes step cost is monotone and
        near-affine in the context, so the trapezoid is tight.  Probes
        are memoised per (batch, context) point (see
        :meth:`_span_probe`); that engine-state freezing is part of
        fast fidelity's documented approximation.
        """
        first = self._span_probe(batch, max(1, round(start_context)))
        if steps == 1:
            return first
        last = self._span_probe(
            batch, max(1, round(start_context + steps - 1))
        )
        half = steps / 2.0
        return (
            (first[0] + last[0]) * half,
            (first[1] + last[1]) * half,
            (first[2] + last[2]) * half,
        )

    @property
    def last_step_seconds(self) -> float:
        """Most recent decode-iteration latency (a span-sizing hint)."""
        return self.session.last_step_seconds

    def estimated_step_seconds(self) -> float:
        """One decode iteration at the nominal batch, without mutating
        this executor's live engine state.

        Probes a *throwaway* sibling session (same trace, machine and
        config — its partition comes from the per-trace cache, so the
        solver never reruns) and memoises the result.  Deterministic,
        so throughput-normalizing routers stay replayable.
        """
        if self._estimated_step is None:
            probe = MachineExecutor(
                self.machine,
                self.model,
                self.system.config,
                trace=self.trace,
                nominal_batch=self.nominal_batch,
            )
            self._estimated_step = probe.session.decode_step(
                self.nominal_batch).seconds
        return self._estimated_step

    def estimated_tokens_per_second(self) -> float:
        """Pure, deterministic decode-throughput estimate."""
        return self.nominal_batch / self.estimated_step_seconds()

    def reset(self) -> None:
        """Restart the machine cold: fresh session, pristine engine state.

        Fault injection calls this when a crashed machine comes back up.
        The predictor table, hot/cold residency, window-scheduler remaps
        and trace cursor all return to their just-booted values (the
        partition comes from the per-trace cache, so the solver never
        reruns).  This is also what keeps the fused and stepped serving
        loops bit-equal across a crash: a fused span may have advanced
        engine state past the crash instant, but the restart discards
        that state on both paths.  The prefill memo survives — it is
        pure in (prompt_len, batch).
        """
        cache = _partition_cache(self.trace)
        key = (
            self.machine, self.model.name, self.system.config,
            self.nominal_batch,
        )
        pristine = cache.get(key)
        partition = (
            _clone_partition(pristine) if pristine is not None else None
        )
        self.session = self.system.session(
            self.trace, self.nominal_batch, wrap=True, partition=partition
        )
        if pristine is None:
            cache[key] = _clone_partition(self.session.partition)

    # ------------------------------------------------------------------
    def degrade(
        self, surviving_dimm_fraction: float, bandwidth_factor: float
    ) -> None:
        """Renegotiate this machine over partially failed hardware.

        ``surviving_dimm_fraction`` of the *pristine* DIMM pool remains
        (at least one DIMM always survives — total loss is a crash, not
        a degrade) and the PCIe link is derated to ``bandwidth_factor``
        of nominal.  The offline partition is re-planned over the
        surviving DIMMs via the per-trace partition cache (a degraded
        machine is a different cache key, so the first degrade solves
        once and every later run reuses it) and the engine restarts
        over it — discarding accelerator state exactly like a crash
        restart, which is what keeps fused==stepped bit-equal across a
        degrade boundary.  Cost memos are invalidated: a degraded
        machine quotes degraded prefill/step costs from its next
        admission onwards.  If the surviving pool can no longer hold
        the sparse weights, engine construction raises — a scenario
        that shrinks a machine below its model is a spec bug, reported
        loudly rather than served slowly.
        """
        base = self._base_machine
        dimms = max(1, int(base.num_dimms * surviving_dimm_fraction))
        pcie = dataclasses.replace(
            base.pcie, bandwidth=base.pcie.bandwidth * bandwidth_factor
        )
        machine = dataclasses.replace(base, num_dimms=dimms, pcie=pcie)
        if machine == self.machine:
            return
        self.machine = machine
        self.system = HermesSystem(machine, self.model, self.system.config)
        self._prefill_cache.clear()
        self._union_batch_cache.clear()
        self._span_probe_cache.clear()
        self._estimated_step = None
        self.reset()

    def kv_capacity_tokens(self) -> float:
        """Resident KV tokens the DIMM pool can hold beside the sparse
        weights.

        Hermes stripes the KV cache across the NDP-DIMM pool (attention
        runs near-memory), so capacity is whatever the pool has left
        after the sparse weights — the quantity a DIMM degrade shrinks.
        The serving loop uses this to decide which residents must be
        evicted (re-queued with a re-prefill) after a degrade.
        """
        weights = self.model.total_weight_bytes - self.model.embedding_bytes
        free = self.machine.dimm_capacity_total - weights
        return max(0.0, free / self.model.kv_bytes_total(1, 1))

    # ------------------------------------------------------------------
    def mean_union(self, batch: int) -> float:
        """Mean per-layer batch-union inflation at ``batch`` sequences.

        One reduction over the session's cached per-layer union column —
        the former per-layer ``union_factor`` loop, vectorized with
        identical float results.
        """
        return float(self.session.union_factors(batch).mean())

    def max_union_batch(self, union_cap: float, limit: int) -> int:
        """Largest batch whose mean union factor stays under the cap
        (see :func:`max_union_batch_under_cap`)."""
        return max_union_batch_under_cap(
            self.mean_union, union_cap, limit, self._union_batch_cache
        )
