"""Request-level discrete-event serving simulator.

Layers continuous batching over the per-token Hermes engine using the
*existing* event calendar (:class:`repro.sim.Simulator` — no second event
loop).  Each machine is one simulation process; it brackets engine work in
Acquire/Release of a per-machine :class:`repro.sim.Resource` that marks the
serialisation point for future intra-machine concurrency (e.g. chunked
prefill as a separate process) — with the single process per machine today
the resource is never contended.  The loop is the canonical
iteration-level scheduler:

1. ingest arrivals into the machine's queue;
2. (cluster only) preemptively evict a low-priority resident request when
   a queued higher-priority prefill would otherwise miss its deadline;
3. admit queued requests in policy order while the effective batch cap
   (``min(max_batch, policy.batch_limit)``) has room, charging each
   admission's prefill on the machine;
4. run one decode iteration for the whole resident batch (every request
   gains one token; the engine sees the batch's mean context length);
5. retire finished requests and repeat — or, when fully idle, sleep until
   the next arrival.

**Macro-stepping** (``ServingConfig.macro_step``, on by default): between
two batch-composition changes the loop above is a straight-line token
run — same batch, context growing by exactly one per step — so instead
of one calendar event + one engine dispatch per token, the machine
computes the *horizon* its composition is provably fixed for (the
earliest deterministic completion via ``max_new_tokens``, the next
arrival, and a conservative preemption-trigger bound from the
preemptor) and runs the whole span as one fused
:meth:`~repro.core.HermesSession.decode_steps` call, then replays the
stepped loop's per-token event pattern at the precomputed boundary
times (simultaneous events resolve by push order, and identical
machines tie on exact boundary times constantly).  Per-token
timestamps are back-filled from the span's sequentially-accumulated
cost array, so records, busy accounting, queue samples and every
scheduling decision are bit-for-bit identical to the step-at-a-time
loop (kept as the ``macro_step=False`` reference path and pinned by
the equivalence tests and golden files).

Prefill blocks decode on the same machine (no chunked prefill), which is
what creates the classic TTFT-vs-TBT tension the policies trade off.

The loop itself is machine-count-agnostic: :class:`ServingSimulator` runs
every machine against one *shared* queue (work-stealing semantics), while
:class:`repro.cluster.ClusterSimulator` subclasses it with per-machine
queues fed by a router, priority-aware admission order, and a preemptor —
all through the small override points this module exposes
(``_build_state`` / ``_admission_policy`` / ``_preemptor`` /
``_make_report``).
"""

from __future__ import annotations

import dataclasses
import math
import typing
import warnings

from ..core import HermesConfig
from ..hardware import Machine
from ..models import ModelSpec, get_model
from ..sim import (
    Acquire,
    Release,
    Resource,
    Signal,
    Simulator,
    Timeout,
    WaitSignal,
    WaitUntil,
)
from ..sparsity import ActivationTrace
from ..telemetry.events import (
    DecodeStep,
    MachineDegraded,
    MachineDown,
    MachineHealth,
    MachineUp,
    PrefillEnded,
    PrefillStarted,
    QueueDepth,
    RequestAdmitted,
    RequestCompleted,
    RequestMigrated,
    RequestPreempted,
    RequestResumed,
    RequestRouted,
    RunEnded,
    RunStarted,
)
from ..telemetry.tracer import NULL_TRACER, Tracer
from .backends import MachineGroup, ServingBackend, make_backend
from .executor import MachineExecutor, default_serving_trace
from .faults import FaultSchedule
from .metrics import RequestRecord, ServingReport
from .policies import BatchingPolicy, get_policy
from .workload import Request


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Cluster-level serving knobs."""

    max_batch: int = 16
    num_machines: int = 1
    #: fuse straight-line token runs into one engine call + one calendar
    #: event (see the module docstring); ``False`` keeps the per-token
    #: reference loop, which the equivalence tests pin against
    macro_step: bool = True
    #: deterministic fault timeline (crashes/stragglers/partitions) the
    #: run executes against; ``None`` keeps every fault branch
    #: short-circuited and the run bit-identical to a fault-free build
    faults: FaultSchedule | None = None
    #: cost model fidelity: ``"exact"`` replays every token boundary
    #: (the reference, pinned bit-for-bit by goldens), ``"fast"``
    #: aggregates whole decode spans through one closed-form
    #: ``span_estimate`` call with uniform token spacing — validated
    #: against exact by distribution-level tolerances, not equality
    fidelity: str = "exact"
    #: number of machine-group shards the cluster event loop is
    #: partitioned into (0 = the single-calendar reference path).
    #: Sharded runs need the routed cluster front door and a
    #: load-oblivious (``shardable``) router; see
    #: :mod:`repro.cluster.sharded`
    shards: int = 0
    #: advance each shard in its own spawned worker process instead of
    #: inline in the coordinator (identical results by construction —
    #: the same shard code runs either way)
    shard_processes: bool = False

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        if self.fidelity not in ("exact", "fast"):
            raise ValueError(
                f"fidelity must be 'exact' or 'fast', got {self.fidelity!r}")
        if self.shards < 0:
            raise ValueError("shards must be >= 0")
        if self.shard_processes and not self.shards:
            raise ValueError("shard_processes requires shards >= 1")


@dataclasses.dataclass(slots=True)
class ActiveEntry:
    """A request resident in some machine's running batch."""

    request: Request
    record: RequestRecord
    #: simulation time this entry (last) joined the batch — preemption
    #: victims are chosen newest-first among the lowest priority class
    admitted_at: float = 0.0

    @property
    def next_context(self) -> int:
        """KV length its next token attends over (prompt + generated + 1)."""
        return self.request.prompt_len + len(self.record.token_times) + 1


class Preemptor(typing.Protocol):
    """Decides whether a resident request must yield its batch slot.

    ``next_trigger`` is the macro-stepping hook: a conservative lower
    bound on the first time ``victim`` could return non-``None`` while
    the queue and resident batch stay unchanged (``None`` = never under
    the current state).  A preemptor without it still works — the
    simulator falls back to checking at every token boundary, i.e. the
    stepped loop.
    """

    def victim(
        self,
        now: float,
        queue: list[Request],
        active: list[ActiveEntry],
        executor: ServingBackend,
    ) -> ActiveEntry | None:
        """The entry to evict so the queue head can admit, or ``None``."""
        ...  # pragma: no cover - protocol

    def next_trigger(
        self,
        now: float,
        queue: list[Request],
        active: list[ActiveEntry],
        executor: ServingBackend,
    ) -> float | None:
        """Earliest time ``victim`` could fire, given unchanged state."""
        ...  # pragma: no cover - protocol


class _FaultHorizon:
    """Memoised per-machine view of the fault timeline's next boundaries.

    Every value a machine's scheduling loop asks of the
    :class:`FaultSchedule` — am I down, my degrade state, my slowdown
    factor, my next crash, my next exec transition, the fleet's next
    disruption — is piecewise-constant between two instants: the
    machine's own next exec transition and the fleet's next disruption
    start.  One refresh at or past ``min`` of those re-derives all six
    with the same calls the loop used to make per span, so the cached
    values are *identical* to direct queries (bit-equality and goldens
    are untouched) while the steady-state cost per span drops from six
    bisects to one float compare.
    """

    __slots__ = ("_faults", "_machine", "_until", "down_now", "degrade",
                 "slowdown", "next_down", "exec_transition",
                 "any_disruption")

    def __init__(self, faults: FaultSchedule, machine: int) -> None:
        self._faults = faults
        self._machine = machine
        self._until = -math.inf

    def at(self, now: float) -> "_FaultHorizon":
        if now >= self._until:
            faults = self._faults
            m = self._machine
            self.down_now = faults.is_down(m, now)
            self.degrade = faults.degrade_state(m, now)
            self.slowdown = faults.slowdown_at(m, now)
            self.next_down = faults.next_down(m, now)
            self.exec_transition = faults.next_exec_transition(m, now)
            self.any_disruption = faults.next_any_disruption(now)
            bounds = [b for b in (self.exec_transition, self.any_disruption)
                      if b is not None]
            self._until = min(bounds) if bounds else math.inf
        return self


class _RunState:
    """Mutable state shared by the machine processes of one run.

    ``num_queues == 1`` is the shared-queue (work-stealing) mode the
    single-cluster :class:`ServingSimulator` uses; with one queue per
    machine, ``assign`` routes each arrival to its machine at ingest time
    (the cluster layer passes a router here).
    """

    def __init__(
        self,
        workload: list[Request],
        num_machines: int = 1,
        *,
        num_queues: int = 1,
        assign: typing.Callable[[Request, float], int] | None = None,
    ) -> None:
        self.workload = sorted(workload, key=lambda r: (r.arrival, r.req_id))
        ids = [r.req_id for r in self.workload]
        if len(set(ids)) != len(ids):
            raise ValueError("workload req_ids must be unique")
        self.records = {
            r.req_id: RequestRecord(request=r) for r in self.workload
        }
        self.next_arrival_idx = 0
        self.queues: list[list[Request]] = [[] for _ in range(num_queues)]
        #: running total of queued requests across every queue — kept
        #: incrementally at each enqueue/dequeue so ``note_queue`` stays
        #: O(1) instead of summing 1000 per-machine queues per sample
        self.queued_count = 0
        self.assign = assign
        #: telemetry sink; every emission site guards on ``.enabled``
        self.tracer: Tracer = NULL_TRACER
        self.total_active = 0
        self.active_counts = [0] * num_machines
        self.queue_samples: list[tuple[float, float]] = []
        self.batch_samples: list[tuple[float, float]] = []
        self.machine_gpu_busy = [0.0] * num_machines
        self.machine_dimm_busy = [0.0] * num_machines
        #: machines whose policy returned a batch limit < 1 (clamped)
        self.batch_limit_clamps = 0
        self._clamp_noted = [False] * num_machines
        #: per-machine interruptible-wait channels: a crashing peer
        #: fires the destination's signal when it migrates work over, so
        #: an idle machine picks the work up immediately instead of
        #: sleeping through it (fault runs only — fault-free idle sleeps
        #: never block on these)
        self.wake_signals = [Signal(f"wake-{i}") for i in range(num_machines)]
        #: the live simulator, bound by ``run()`` (fault migration needs
        #: to fire wake signals at the current simulation time)
        self.sim: Simulator | None = None
        #: set by the sharded coordinator while future windows may still
        #: deliver work (arrivals or crash refugees) from outside this
        #: state's view — a fully idle machine then parks *bounded* by
        #: the next fault boundary instead of unboundedly, exactly like
        #: an unsharded machine that sees the whole fleet's backlog
        self.expect_external = False
        #: target-aware fast-fidelity span bounds: the sharded
        #: coordinator pre-routes every arrival, so it can tell each
        #: machine exactly which arrival instants concern *it* — spans
        #: and idle parks then end only where admission can actually
        #: happen, instead of at every fleet-global arrival (the
        #: unsharded fast loop's conservative bound, which degenerates
        #: to single-step spans at 1000-machine aggregate rates).
        #: ``None`` means "targets unknown, bound globally".
        self.span_bounds: dict[int, list[float]] | None = None
        self._span_bound_idx: dict[int, int] = {}
        #: health-monitor hook ``(machine, step_seconds, batch)`` called
        #: at every decode boundary — identically placed in the stepped
        #: and fused loops — when health-aware routing is on
        self.observe_step: typing.Callable[[int, float, int], None] | None = (
            None
        )
        #: degrade hook ``(machine)`` called right after a machine
        #: renegotiates over partially failed hardware — the cluster
        #: layer rebinds throughput-weighted routers and rebaselines the
        #: health monitor here (identically placed in both loops)
        self.on_degrade: typing.Callable[[int], None] | None = None

    def note_clamp(
        self, m: int, policy: "BatchingPolicy", raw_limit: int
    ) -> None:
        """Record (once per machine) a batch limit clamped up to 1.

        A limit below 1 is a policy bug — the simulator clamps so the
        machine keeps making progress, but silently repairing it would
        hide the bug, so it is surfaced as a warning and counted in the
        report.  The limit is constant while the batch composition is
        unchanged, so one note per machine is exact (and identical
        between the macro-stepped and per-token loops).
        """
        if self._clamp_noted[m]:
            return
        self._clamp_noted[m] = True
        self.batch_limit_clamps += 1
        warnings.warn(
            f"batching policy {policy.name!r} returned batch_limit "
            f"{raw_limit} on machine {m}; clamped to 1 so the machine "
            "keeps serving — fix the policy",
            RuntimeWarning, stacklevel=2)

    # ------------------------------------------------------------------
    def queue_of(self, m: int) -> list[Request]:
        """Machine ``m``'s admission queue (the shared one if only one)."""
        return self.queues[m] if len(self.queues) > 1 else self.queues[0]

    def loads(self) -> list[float]:
        """Per-machine load proxy (queued + resident) routers consult."""
        counts = self.active_counts
        if len(self.queues) == 1:
            # shared queue: the backlog belongs to no machine yet
            return [float(c) for c in counts]
        return [len(q) + c for q, c in zip(self.queues, counts)]

    def queued_total(self) -> int:
        return self.queued_count

    def next_span_bound(self, m: int, now: float) -> float | None:
        """Machine ``m``'s first own-arrival instant strictly past
        ``now`` (fast mode with pre-routed targets).

        Simulation time is nondecreasing across the event loop and each
        machine only probes its own list, so a monotone per-machine
        cursor is exact.
        """
        bounds = self.span_bounds[m]
        i = self._span_bound_idx.get(m, 0)
        while i < len(bounds) and bounds[i] <= now:
            i += 1
        self._span_bound_idx[m] = i
        return bounds[i] if i < len(bounds) else None

    # ------------------------------------------------------------------
    def ingest(self, now: float) -> bool:
        """Move every request with ``arrival <= now`` into its queue.

        Returns whether anything arrived (admission order may change).
        """
        moved = False
        tracer = self.tracer
        while (self.next_arrival_idx < len(self.workload)
               and self.workload[self.next_arrival_idx].arrival <= now):
            request = self.workload[self.next_arrival_idx]
            target = 0 if self.assign is None else self.assign(request, now)
            self.queues[target].append(request)
            self.queued_count += 1
            self.next_arrival_idx += 1
            moved = True
            if tracer.enabled:
                tracer.emit(RequestAdmitted(
                    time=now,
                    req_id=request.req_id,
                    tenant=request.tenant,
                    class_name=request.class_name,
                    arrival=request.arrival,
                    prompt_len=request.prompt_len,
                    output_len=request.output_len,
                ))
                if self.assign is not None:
                    tracer.emit(RequestRouted(
                        time=now, req_id=request.req_id, machine=target
                    ))
        if moved:
            self.note_queue(now)
        return moved

    def requeue(self, m: int, request: Request, now: float) -> None:
        """Return a preempted request to machine ``m``'s queue."""
        self.queue_of(m).append(request)
        self.queued_count += 1
        self.note_queue(now)

    def migrate(self, request: Request, from_machine: int, now: float) -> None:
        """Evacuate ``request`` off a crashed machine.

        Generated tokens survive (they were already streamed to the
        client) but the KV cache does not: the record is flagged for
        re-prefill over ``prompt_len + generated`` on re-admission — the
        honest migration cost.  In routed mode the request is re-routed
        against current loads and health; in shared-queue mode it
        returns to the common backlog.  The destination's wake signal
        fires so an idle machine picks the refugee up immediately.
        """
        record = self.records[request.req_id]
        record.needs_prefill = True
        record.migrations += 1
        routed = len(self.queues) > 1
        if routed and self.assign is not None:
            target = self.assign(request, now)
        else:
            target = 0
        self.queues[target].append(request)
        self.queued_count += 1
        if self.tracer.enabled:
            self.tracer.emit(RequestMigrated(
                time=now,
                req_id=request.req_id,
                from_machine=from_machine,
                to_machine=target if routed else -1,
                generated=len(record.token_times),
            ))
            if routed:
                self.tracer.emit(RequestRouted(
                    time=now, req_id=request.req_id, machine=target
                ))
        self.note_queue(now)
        if self.sim is not None:
            if routed:
                self.sim.fire(self.wake_signals[target])
            else:
                for signal in self.wake_signals:
                    self.sim.fire(signal)

    def next_arrival(self) -> float | None:
        if self.next_arrival_idx >= len(self.workload):
            return None
        return self.workload[self.next_arrival_idx].arrival

    def note_queue(self, now: float) -> None:
        depth = self.queued_total()
        self.queue_samples.append((now, float(depth)))
        if self.tracer.enabled:
            self.tracer.emit(QueueDepth(time=now, depth=depth))

    def note_batch(self, now: float) -> None:
        self.batch_samples.append((now, float(self.total_active)))


class ServingSimulator:
    """A fleet of serving machines behind one request queue.

    Homogeneous by default (``config.num_machines`` identical Hermes
    machines); pass ``fleet=[MachineGroup(...), ...]`` for a
    heterogeneous fleet mixing backends, machine specs, or models —
    ``num_machines`` is then derived from the group counts, and a
    single all-default hermes group reproduces the homogeneous fleet
    exactly.
    """

    #: global index of this simulator's machine 0 — nonzero only inside
    #: a shard worker, whose executors cover a slice of a larger fleet
    #: but whose fault/health queries must use fleet-global machine ids
    _machine_offset = 0

    def __init__(
        self,
        model: ModelSpec | str,
        policy: BatchingPolicy | str = "fcfs",
        config: ServingConfig | None = None,
        *,
        machine: Machine | None = None,
        hermes_config: HermesConfig | None = None,
        trace: ActivationTrace | None = None,
        granularity: int = 64,
        seed: int = 7,
        fleet: typing.Sequence[MachineGroup] | None = None,
    ) -> None:
        self.model = get_model(model) if isinstance(model, str) else model
        self.policy = get_policy(policy)
        self.config = config or ServingConfig()
        machine = machine or Machine()
        if trace is None:
            trace = default_serving_trace(
                self.model, granularity=granularity, seed=seed
            )
        #: ctor inputs retained so a sharded run can rebuild fleet
        #: slices inside worker processes (see :mod:`repro.cluster.sharded`)
        self.base_machine = machine
        self._trace = trace
        self._hermes_config = hermes_config
        self._granularity = granularity
        self._seed = seed
        # Each machine gets its own backend (own online engine state)
        # over the shared activation trace.  For Hermes machines the
        # offline partition is solved once — it is deterministic in
        # (trace, batch, config) — and every machine receives its *own
        # clone* from the per-trace cache: window scheduling remaps
        # ``dimm_of`` in place, and a machine's live DIMM mapping is its
        # own hardware state, not something a sibling's migrations may
        # mutate mid-flight.
        nominal_batch = max(2, self.config.max_batch // 2)
        if fleet is None:
            self.fleet: tuple[MachineGroup, ...] = (
                MachineGroup(count=self.config.num_machines),
            )
            self.executors: list[ServingBackend] = [
                MachineExecutor(
                    machine,
                    self.model,
                    hermes_config,
                    trace=trace,
                    nominal_batch=nominal_batch,
                )
                for _ in range(self.config.num_machines)
            ]
        else:
            if not fleet:
                raise ValueError("fleet needs at least one machine group")
            self.fleet = tuple(fleet)
            self.executors = []
            for group in self.fleet:
                group_model = (
                    get_model(group.model)
                    if group.model is not None
                    else self.model
                )
                # a group serving the simulator's model shares its
                # trace; an overriding group gets the deterministic
                # default trace for its own model
                group_trace = trace if group_model is self.model else None
                backend_name = group.backend.lower()
                group_machine = (
                    group.machine if group.machine is not None else machine
                )
                group_batch = (
                    group.nominal_batch
                    if group.nominal_batch is not None
                    else nominal_batch
                )
                self.executors.extend(
                    make_backend(
                        backend_name,
                        group_machine,
                        group_model,
                        hermes_config=(
                            hermes_config
                            if backend_name == "hermes"
                            else None
                        ),
                        trace=group_trace,
                        nominal_batch=group_batch,
                        granularity=granularity,
                        seed=seed,
                    )
                    for _ in range(group.count)
                )
            self.config = dataclasses.replace(
                self.config, num_machines=len(self.executors)
            )

    @property
    def machine_backends(self) -> list[str]:
        """Per-machine backend names (index = machine id)."""
        return [getattr(e, "name", "hermes") for e in self.executors]

    # ---- override points for the cluster layer -----------------------
    def _build_state(self, workload: list[Request]) -> _RunState:
        """Run state: one shared queue every machine admits from."""
        return _RunState(workload, self.config.num_machines)

    def _admission_policy(self) -> BatchingPolicy:
        """The policy whose ``order`` ranks admission each round."""
        return self.policy

    def _preemptor(self) -> Preemptor | None:
        """Preemptive-admission hook; the base simulator has none."""
        return None

    def _run_started_event(self) -> RunStarted:
        """The run-configuration event an enabled tracer sees first."""
        return RunStarted(
            time=0.0,
            model=self.model.name,
            policy=self.policy.name,
            num_machines=self.config.num_machines,
            backends=tuple(self.machine_backends),
            domains=self._declared_domains(),
        )

    def _declared_domains(self) -> tuple[tuple[str, tuple[int, ...]], ...]:
        """``(name, members)`` pairs of the fault schedule's domains."""
        faults = self.config.faults
        if faults is None or not faults.domains:
            return ()
        return tuple((d.name, d.machines) for d in faults.domains)

    def _fault_fields(self, makespan: float) -> dict:
        """Downtime/recovery report fields derived from the schedule."""
        faults = self.config.faults
        if faults is None:
            return {}
        return {
            "machine_downtime": [
                faults.downtime_within(m, makespan)
                for m in range(self.config.num_machines)
            ],
            "recoveries": faults.recoveries_within(makespan),
        }

    def _make_report(self, state: _RunState, makespan: float) -> ServingReport:
        return ServingReport(
            policy=self.policy.name,
            num_machines=self.config.num_machines,
            records=list(state.records.values()),
            makespan=makespan,
            queue_samples=state.queue_samples,
            batch_samples=state.batch_samples,
            machine_gpu_busy=state.machine_gpu_busy,
            machine_dimm_busy=state.machine_dimm_busy,
            batch_limit_clamps=state.batch_limit_clamps,
            **self._fault_fields(makespan),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        workload: list[Request],
        *,
        tracer: Tracer | None = None,
    ) -> ServingReport:
        """Serve ``workload`` to completion; returns the metrics report.

        ``tracer`` receives the run's lifecycle event stream (see
        :mod:`repro.telemetry`); the default :data:`NULL_TRACER` makes
        every emission site a single attribute check.  Tracing never
        perturbs the simulation: the report (and the stream itself) is
        identical for any tracer, and identical between the macro-step
        and per-token loops.
        """
        if not workload:
            raise ValueError("workload must be non-empty")
        if self.config.shards:
            raise ValueError(
                "shards require the routed cluster front door; use "
                "repro.cluster.ClusterSimulator")
        if self.config.faults is not None:
            self.config.faults.validate_fleet(self.config.num_machines)
        sim = Simulator()
        state = self._build_state(workload)
        state.sim = sim
        state.tracer = tracer if tracer is not None else NULL_TRACER
        if state.tracer.enabled:
            state.tracer.emit(self._run_started_event())
        for m, executor in enumerate(self.executors):
            resource = Resource(f"machine-{m}")
            sim.process(
                self._machine_proc(sim, state, m, executor, resource),
                name=f"machine-{m}",
            )
        makespan = sim.run()
        if state.tracer.enabled:
            state.tracer.emit(RunEnded(time=makespan, makespan=makespan))
        return self._make_report(state, makespan)

    # ------------------------------------------------------------------
    def _machine_proc(self, sim: Simulator, state: _RunState, m: int,
                      executor: ServingBackend, resource: Resource):
        """Generator process for one machine's scheduling loop."""
        cfg = self.config
        policy = self._admission_policy()
        preemptor = self._preemptor()
        macro = cfg.macro_step
        trigger_fn = (getattr(preemptor, "next_trigger", None)
                      if preemptor is not None else None)
        tracer = state.tracer
        tracing = tracer.enabled
        #: the fault timeline, or None — every fault branch below guards
        #: on this so the fault-free hot path is untouched (pinned by
        #: the goldens and the serving bench gate)
        faults = cfg.faults
        wake = state.wake_signals[m]
        observe = state.observe_step
        last_health: str | None = None
        #: the cumulative degrade state already applied to the backend —
        #: the loop top renegotiates whenever the schedule's state moves
        #: past it (checked only when the schedule has degrades at all)
        has_degrades = faults is not None and bool(faults.degrades)
        applied_degrade = (1.0, 1.0)
        #: memoised fault-boundary view — identical values to direct
        #: schedule queries, refreshed only when a boundary is crossed
        fh = _FaultHorizon(faults, m) if faults is not None else None
        fast = cfg.fidelity == "fast"
        active: list[ActiveEntry] = []
        while True:
            if faults is not None:
                if fh.at(sim.now).down_now:
                    # ---- crash: kill residents, migrate, park ----
                    now = sim.now
                    if tracing:
                        tracer.emit(MachineDown(
                            time=now, machine=m, reason="crash"
                        ))
                        tracer.emit(MachineHealth(
                            time=now, machine=m, state="down", slowdown=1.0
                        ))
                        last_health = "down"
                    # snapshot the backlog *before* migrating residents:
                    # a resident whose re-route lands back on this same
                    # (dead) machine must not be swept up and counted as
                    # a second migration for the same evacuation
                    pending: list[Request] = []
                    if len(state.queues) > 1:
                        # routed mode: the dead machine's backlog is
                        # re-routed too (the frontend still holds it)
                        pending = list(state.queue_of(m))
                        state.queue_of(m).clear()
                        state.queued_count -= len(pending)
                    if active:
                        state.total_active -= len(active)
                        state.active_counts[m] -= len(active)
                        state.note_batch(now)
                        for entry in active:
                            state.migrate(entry.request, m, now)
                        active = []
                    for request in pending:
                        state.migrate(request, m, now)
                    up = faults.up_time(m, now)
                    if up is None:
                        # never restarts; unserved work stays queued and
                        # is reported honestly as unfinished
                        return
                    yield WaitUntil(up)
                    executor.reset()
                    if tracing:
                        tracer.emit(MachineUp(
                            time=sim.now,
                            machine=m,
                            warmup=faults.restart_warmup,
                        ))
                    continue
                if has_degrades:
                    # ---- degrade: renegotiate, evict KV overflow ----
                    # A degrade is a *state change at an instant*, not a
                    # time-varying multiplier: both loops apply it at
                    # the first loop top at or past the instant (spans
                    # are bounded there via the exec transitions), so
                    # fused==stepped holds exactly as across a restart.
                    degrade = fh.at(sim.now).degrade
                    if degrade != applied_degrade:
                        applied_degrade = degrade
                        executor.degrade(*degrade)
                        evicted = 0
                        capacity = executor.kv_capacity_tokens()
                        if active:
                            # keep the admission-order prefix that still
                            # fits the shrunken KV pool; the overflow is
                            # re-queued on this same machine (it did not
                            # die — this is renegotiation, not
                            # migration) and re-prefills on re-admission
                            resident = 0.0
                            kept: list[ActiveEntry] = []
                            overflow: list[ActiveEntry] = []
                            for entry in active:
                                tokens = entry.next_context - 1
                                if resident + tokens <= capacity:
                                    resident += tokens
                                    kept.append(entry)
                                else:
                                    overflow.append(entry)
                            if overflow:
                                active = kept
                                evicted = len(overflow)
                                state.total_active -= evicted
                                state.active_counts[m] -= evicted
                                state.note_batch(sim.now)
                                for entry in overflow:
                                    entry.record.needs_prefill = True
                                    entry.record.migrations += 1
                                    state.requeue(
                                        m, entry.request, sim.now
                                    )
                                    if tracing:
                                        # same KV-losing hop as a crash
                                        # evacuation, except the request
                                        # stays on its (renegotiated)
                                        # machine in routed mode
                                        tracer.emit(RequestMigrated(
                                            time=sim.now,
                                            req_id=entry.request.req_id,
                                            from_machine=m,
                                            to_machine=(
                                                m if len(state.queues) > 1
                                                else -1
                                            ),
                                            generated=len(
                                                entry.record.token_times
                                            ),
                                        ))
                                if len(state.queues) == 1:
                                    # shared queue: an idle sibling may
                                    # be parked — wake it to steal the
                                    # evicted work, like a migration
                                    for signal in state.wake_signals:
                                        sim.fire(signal)
                        if tracing:
                            tracer.emit(MachineDegraded(
                                time=sim.now,
                                machine=m,
                                surviving_dimm_fraction=degrade[0],
                                bandwidth_factor=degrade[1],
                                evicted=evicted,
                            ))
                        if state.on_degrade is not None:
                            state.on_degrade(m)
                if tracing:
                    health = faults.health_state(m, sim.now)
                    if health != last_health:
                        last_health = health
                        tracer.emit(MachineHealth(
                            time=sim.now,
                            machine=m,
                            state=health,
                            slowdown=faults.slowdown_at(m, sim.now),
                        ))
            state.ingest(sim.now)
            queue = state.queue_of(m)

            # ---- effective batch cap for this round ----
            # clamped to >= 1: a policy returning 0 would otherwise wedge
            # the machine (no admission, no decode, queue stranded) —
            # the clamp is warned about and counted, not silent
            raw_limit = policy.batch_limit(executor, cfg.max_batch)
            if raw_limit < 1:
                state.note_clamp(m, policy, raw_limit)
            limit = max(1, min(cfg.max_batch, raw_limit))

            # ---- preemptive admission (cluster SLO scheduling) ----
            if preemptor is not None and queue and len(active) >= limit:
                victim = preemptor.victim(sim.now, queue, active, executor)
                if victim is not None:
                    active.remove(victim)
                    victim.record.preemptions += 1
                    state.total_active -= 1
                    state.active_counts[m] -= 1
                    state.note_batch(sim.now)
                    if tracing:
                        tracer.emit(RequestPreempted(
                            time=sim.now,
                            req_id=victim.request.req_id,
                            machine=m,
                        ))
                    state.requeue(m, victim.request, sim.now)

            # ---- admission: fill the batch in policy order ----
            # re-rank each admission: the queue changes under us while this
            # machine yields (new arrivals, and sibling machines admitting
            # from the same shared queue)
            while len(active) < limit and queue:
                request = queue.pop(policy.select(queue))
                state.queued_count -= 1
                state.note_queue(sim.now)
                record = state.records[request.req_id]
                record.machine = m
                if record.prefill_start is None or record.needs_prefill:
                    # a migrated request re-runs prefill over prompt +
                    # generated tokens: the tokens survive (already
                    # streamed) but the KV died with the crashed machine
                    replay = (len(record.token_times)
                              if record.needs_prefill else 0)
                    record.needs_prefill = False
                    if record.prefill_start is None:
                        record.prefill_start = sim.now
                    if tracing:
                        tracer.emit(PrefillStarted(
                            time=sim.now, req_id=request.req_id, machine=m
                        ))
                    yield Acquire(resource)
                    compute, transfer = executor.prefill_cost(
                        request.prompt_len + replay
                    )
                    if faults is None:
                        yield Timeout(compute + transfer)
                    else:
                        h = fh.at(sim.now)
                        factor = h.slowdown
                        compute *= factor
                        transfer *= factor
                        crash = h.next_down
                        if (crash is not None
                                and sim.now + (compute + transfer) >= crash):
                            # the crash lands mid-prefill: abort (no
                            # cost charged, KV lost) and migrate the
                            # half-prefilled request
                            yield WaitUntil(crash)
                            yield Release(resource)
                            state.migrate(request, m, sim.now)
                            break
                        yield Timeout(compute + transfer)
                    yield Release(resource)
                    # only the compute part occupies the GPU; the KV push
                    # is PCIe time (kept out of utilization, like decode's
                    # syncs)
                    state.machine_gpu_busy[m] += compute
                    if tracing:
                        tracer.emit(PrefillEnded(
                            time=sim.now,
                            req_id=request.req_id,
                            machine=m,
                            compute=compute,
                            transfer=transfer,
                        ))
                else:
                    # a preempted request re-joins — its KV state is
                    # already resident, so re-admission is free
                    if tracing:
                        tracer.emit(RequestResumed(
                            time=sim.now, req_id=request.req_id, machine=m
                        ))
                active.append(ActiveEntry(request, record,
                                          admitted_at=sim.now))
                state.total_active += 1
                state.active_counts[m] += 1
                state.note_batch(sim.now)
                # arrivals during this prefill are admissible right away
                state.ingest(sim.now)
                queue = state.queue_of(m)

            # a crash that landed during an admission prefill parks the
            # machine before it touches the (now stale) decode state
            if faults is not None and faults.is_down(m, sim.now):
                continue

            # ---- fast fidelity: closed-form span aggregation ----
            # One engine estimate and three calendar events per span,
            # with uniform token spacing across it — distributionally
            # close to exact (pinned by tolerance tests), never
            # bit-equal to it.  Preemption/admission decisions happen
            # only at span boundaries; the span is still bounded by
            # arrivals, the preemptor trigger, and fault boundaries, so
            # scheduling reacts at the same horizon granularity as the
            # exact fused loop.
            if active and fast:
                batch = len(active)
                ctx_sum = sum(a.next_context for a in active)
                k = min(a.request.output_len - len(a.record.token_times)
                        for a in active)
                until = None
                if preemptor is not None and queue:
                    if trigger_fn is None:
                        k = 1
                    else:
                        until = trigger_fn(sim.now, queue, active, executor)
                # span-bounding arrival: with pre-routed targets
                # (sharded), only an arrival destined to *this* machine
                # needs a boundary here — admission is the only thing a
                # boundary buys, and foreign arrivals can't join this
                # batch.  Without targets, bound at the next global
                # arrival like the exact fused loop.
                if state.span_bounds is None:
                    upcoming = state.next_arrival()
                else:
                    upcoming = state.next_span_bound(m, sim.now)
                if upcoming is not None and (until is None
                                             or upcoming < until):
                    until = upcoming
                factor = 1.0
                crash = None
                if faults is not None:
                    h = fh.at(sim.now)
                    factor = h.slowdown
                    crash = h.next_down
                    for bound in (h.exec_transition, h.any_disruption):
                        if bound is not None and (until is None
                                                  or bound < until):
                            until = bound
                start = sim.now
                start_context = ctx_sum / batch
                seconds, gpu_cost, dimm_cost = executor.span_estimate(
                    batch, start_context, k)
                if factor != 1.0:
                    seconds *= factor
                    gpu_cost *= factor
                    dimm_cost *= factor
                mean_step = seconds / k
                if until is not None and k > 1 and start + seconds > until:
                    # truncate to the first step whose completion
                    # reaches the bound — the straddling step still
                    # runs, mirroring the exact span contract
                    k = max(1, min(k, int((until - start) / mean_step) + 1))
                    seconds, gpu_cost, dimm_cost = executor.span_estimate(
                        batch, start_context, k)
                    if factor != 1.0:
                        seconds *= factor
                        gpu_cost *= factor
                        dimm_cost *= factor
                    mean_step = seconds / k
                end = start + seconds
                granted = k
                if crash is not None and end >= crash:
                    # only tokens completing before the crash are
                    # granted; the machine parks at the crash instant
                    granted = min(k, int(max(0.0, crash - start)
                                         / mean_step))
                    while (granted > 0
                           and start + mean_step * granted >= crash):
                        granted -= 1
                    end = crash
                yield Acquire(resource)
                yield WaitUntil(end)
                yield Release(resource)
                if granted:
                    frac = granted / k
                    state.machine_gpu_busy[m] += gpu_cost * frac
                    state.machine_dimm_busy[m] += dimm_cost * frac
                    times = [start + mean_step * (i + 1)
                             for i in range(granted)]
                    for entry in active:
                        entry.record.token_times.extend(times)
                    if observe is not None:
                        observe(m, mean_step, batch)
                    if tracing:
                        # one aggregate DecodeStep per span — fast mode
                        # coarsens telemetry granularity by design
                        tracer.emit(DecodeStep(
                            time=times[-1],
                            machine=m,
                            batch=batch,
                            seconds=mean_step * granted,
                            gpu_busy=gpu_cost * frac,
                            dimm_busy=dimm_cost * frac,
                            swap_bytes=0.0,
                            resident_bytes=0.0,
                            req_ids=tuple(
                                a.request.req_id for a in active),
                        ))
                now = sim.now
                finished = [a for a in active if a.record.finished]
                if finished:
                    active = [a for a in active if not a.record.finished]
                    state.total_active -= len(finished)
                    state.active_counts[m] -= len(finished)
                    state.note_batch(now)
                    if tracing:
                        for entry in finished:
                            tracer.emit(RequestCompleted(
                                time=now,
                                req_id=entry.request.req_id,
                                machine=m,
                                tokens=len(entry.record.token_times),
                            ))
                continue

            # ---- continuous-batching decode ----
            # A degraded (straggling) machine always steps per token:
            # its scaled per-step costs evolve exactly like the
            # reference loop's, so fused==stepped holds trivially
            # through slowdown windows and fusion resumes when the
            # window ends.
            use_macro = macro
            if faults is not None and use_macro and active:
                if fh.at(sim.now).slowdown != 1.0:
                    use_macro = False
            span_plan = None
            if active and use_macro:
                # Precompute the span horizon.  The batch composition is
                # provably fixed until the earliest deterministic
                # completion; admission, routing and preemption
                # decisions can additionally only change at the next
                # arrival (when there is room, or when a preemptor's
                # verdict may depend on the queue) or at the preemptor's
                # trigger bound.  Every span also ends at the machine's
                # first boundary past the next arrival: an arrival can
                # admit (room), shift a preemption verdict, and — with
                # router-fed per-machine queues — must be *routed*
                # against the load snapshot of its arrival boundary.
                # Bounding unconditionally also makes the ingest
                # boundaries (hence ``queue_samples``) identical to the
                # stepped loop's: an arrival is ingested at the first
                # any-machine token boundary past it in both modes.
                k_max = min(a.request.output_len - len(a.record.token_times)
                            for a in active)
                until = None
                if preemptor is not None and queue:
                    if trigger_fn is None:
                        # opaque preemptor: check every boundary
                        k_max = 1
                    else:
                        until = trigger_fn(sim.now, queue, active, executor)
                upcoming = state.next_arrival()
                if upcoming is not None and (
                    until is None or upcoming < until
                ):
                    until = upcoming
                if faults is not None:
                    # fault boundaries bound spans exactly like arrivals:
                    # our own crash/slowdown/degrade instants cannot land
                    # inside a span's interior, and *any* machine's crash
                    # (migration) or degrade (KV-overflow eviction) may
                    # drop work into our queue, which the stepped loop
                    # would notice at its next token boundary
                    h = fh.at(sim.now)
                    for bound in (h.exec_transition, h.any_disruption):
                        if bound is not None and (
                            until is None or bound < until
                        ):
                            until = bound
                if until is not None:
                    # size the context ramp from the backend's recent
                    # step time: an under-sized span just ends at a
                    # no-op boundary and a fresh span continues, so the
                    # estimate never affects scheduling outcomes
                    est = executor.last_step_seconds
                    if est > 0.0:
                        k_max = max(
                            1, min(k_max, int((until - sim.now) / est) + 2)
                        )
                if k_max == 1:
                    # a one-step span replays the stepped body's exact
                    # event pattern anyway (decode_span == decode_step by
                    # the span contract), and the stepped body skips the
                    # span array machinery — bit-identical and cheaper,
                    # which is what restores fused >= stepped under
                    # active faults where most spans truncate to one step
                    use_macro = False
                else:
                    span_plan = (k_max, until)
            if active and not use_macro:
                # reference path: one iteration per scheduling round
                batch = len(active)
                context = max(
                    1, round(sum(a.next_context for a in active) / batch)
                )
                yield Acquire(resource)
                cost = executor.decode_step(batch, context)
                seconds = cost.seconds
                gpu_cost = cost.gpu_busy
                dimm_cost = cost.dimm_busy
                if faults is None:
                    yield Timeout(seconds)
                else:
                    # a straggler stretches the whole step; the cost is
                    # quoted at the step's start, so a step straddling a
                    # window boundary completes at its quoted cost —
                    # exactly like a step straddling an arrival
                    h = fh.at(sim.now)
                    factor = h.slowdown
                    seconds *= factor
                    gpu_cost *= factor
                    dimm_cost *= factor
                    crash = h.next_down
                    if crash is not None and sim.now + seconds >= crash:
                        # the crash lands mid-step: abort — no token
                        # granted, no busy time charged
                        yield WaitUntil(crash)
                        yield Release(resource)
                        continue
                    yield Timeout(seconds)
                yield Release(resource)
                state.machine_gpu_busy[m] += gpu_cost
                state.machine_dimm_busy[m] += dimm_cost
                if observe is not None:
                    observe(m, seconds, batch)
                now = sim.now
                if tracing:
                    tracer.emit(DecodeStep(
                        time=now,
                        machine=m,
                        batch=batch,
                        seconds=seconds,
                        gpu_busy=gpu_cost,
                        dimm_busy=dimm_cost,
                        swap_bytes=cost.swap_bytes,
                        resident_bytes=cost.resident_bytes,
                        req_ids=tuple(
                            a.request.req_id for a in active
                        ),
                    ))
                for entry in active:
                    entry.record.token_times.append(now)
                finished = [a for a in active if a.record.finished]
                if finished:
                    active = [a for a in active if not a.record.finished]
                    state.total_active -= len(finished)
                    state.active_counts[m] -= len(finished)
                    state.note_batch(now)
                    if tracing:
                        for entry in finished:
                            tracer.emit(RequestCompleted(
                                time=now,
                                req_id=entry.request.req_id,
                                machine=m,
                                tokens=len(entry.record.token_times),
                            ))
                continue

            if active:
                # ---- macro step: one fused engine call per span ----
                # Contexts form an arithmetic ramp: every resident
                # request gains exactly one token per iteration, so the
                # mean context the engine sees grows by one per step.
                # The span horizon (``k_max``, ``until``) was
                # precomputed above.
                batch = len(active)
                ctx_sum = sum(a.next_context for a in active)
                k_max, until = span_plan
                contexts = [max(1, round((ctx_sum + i * batch) / batch))
                            for i in range(k_max)]
                span = executor.decode_span(
                    batch, contexts, start_time=sim.now, until=until
                )
                times = span.end_times.tolist()
                # Replay the stepped loop's exact per-step event pattern
                # (Acquire -> sleep-to-boundary -> Release).  The span's
                # engine work is already done, but shared-queue machines
                # resolve *simultaneous* events by push order, and
                # identical machines tie on exact boundary times
                # constantly — one big sleep would enqueue this
                # machine's wake-up earlier than the stepped loop would
                # have, flipping tie-breaks.  WaitUntil (not Timeout)
                # lands each wake-up on the bit-exact boundary.
                # Telemetry replays one DecodeStep per boundary from the
                # span's per-step cost arrays — bit-equal to the stepped
                # loop's emissions by the span contract, and emitted at
                # the same point of the wake-up (between this boundary's
                # Release and the next Acquire).  Intermediate span
                # boundaries provably admit/ingest/preempt nothing, so
                # the full event stream matches the stepped loop's.
                req_ids = (tuple(a.request.req_id for a in active)
                           if tracing else ())
                crash = (fh.at(sim.now).next_down
                         if faults is not None else None)
                span_seconds = (span.seconds.tolist()
                                if observe is not None else None)
                granted = len(times)
                for i, boundary in enumerate(times):
                    yield Acquire(resource)
                    if crash is not None and boundary >= crash:
                        # the crash lands inside this boundary's step:
                        # abort the remainder of the replay — no tokens
                        # granted, no busy charged past this point (the
                        # backend's engine-state overshoot is harmless:
                        # restart resets it, matching the stepped loop)
                        yield WaitUntil(crash)
                        yield Release(resource)
                        granted = i
                        break
                    yield WaitUntil(boundary)
                    yield Release(resource)
                    if observe is not None:
                        observe(m, span_seconds[i], batch)
                    if tracing:
                        cost = span.step(i)
                        tracer.emit(DecodeStep(
                            time=boundary,
                            machine=m,
                            batch=batch,
                            seconds=cost.seconds,
                            gpu_busy=cost.gpu_busy,
                            dimm_busy=cost.dimm_busy,
                            swap_bytes=cost.swap_bytes,
                            resident_bytes=cost.resident_bytes,
                            req_ids=req_ids,
                        ))
                if granted != len(times):
                    times = times[:granted]
                gpu_busy = state.machine_gpu_busy
                dimm_busy = state.machine_dimm_busy
                for g, d in zip(
                    span.gpu_busy.tolist()[:granted],
                    span.dimm_busy.tolist()[:granted],
                ):
                    gpu_busy[m] += g
                    dimm_busy[m] += d
                for entry in active:
                    entry.record.token_times.extend(times)
                now = sim.now
                finished = [a for a in active if a.record.finished]
                if finished:
                    active = [a for a in active if not a.record.finished]
                    state.total_active -= len(finished)
                    state.active_counts[m] -= len(finished)
                    state.note_batch(now)
                    if tracing:
                        for entry in finished:
                            tracer.emit(RequestCompleted(
                                time=now,
                                req_id=entry.request.req_id,
                                machine=m,
                                tokens=len(entry.record.token_times),
                            ))
                continue

            # ---- idle: sleep until the next arrival, or exit ----
            # (reaching here implies this machine's queue is empty: with no
            # resident batch the admission loop drains the queue first)
            # With pre-routed targets (sharded fast mode) an idle
            # machine only needs to wake for its *own* arrivals — the
            # destination of every other arrival is awake at that
            # instant and ingests it itself, so skipping foreign
            # wakeups changes no scheduling decision and removes the
            # idle fleet's thundering herd at every arrival.
            if state.span_bounds is None:
                upcoming = state.next_arrival()
            else:
                upcoming = state.next_span_bound(m, sim.now)
            if faults is None:
                if upcoming is None:
                    break
                # absolute wake: ``Timeout(upcoming - now)`` re-rounds,
                # so the instant a machine lands on would depend on how
                # many intermediate wakes it made — and a shard worker
                # (which skips foreign-arrival hops) could drift a ULP
                # from the reference.  ``WaitUntil`` is hop-independent.
                yield WaitUntil(upcoming)
                continue
            # Under faults, idle sleeps are interruptible (a crashing
            # peer fires our wake signal when it migrates work over) and
            # bounded by the fleet's next crash instant — the only fault
            # event that can create work for an idle machine, and the
            # event that parks us when it is our own.  With no arrivals,
            # no in-flight work left anywhere, and none of our *own*
            # transitions outstanding, park unboundedly instead:
            # trailing fault windows on other machines then don't
            # stretch the calendar past the last real serving event, and
            # a late migration out of an aborted prefill still wakes us.
            # (Our own future crash keeps the park bounded so the
            # restart is witnessed — down/up telemetry and the engine
            # reset happen whether or not the fleet is idle, which is
            # also what lets a sharded run replay this machine without
            # knowing the other shards' idleness.)
            if (upcoming is None and state.total_active == 0
                    and state.queued_total() == 0
                    and not state.expect_external
                    and faults.next_exec_transition(m, sim.now) is None):
                yield WaitSignal(wake)
                continue
            boundary = faults.next_any_disruption(sim.now, strict=True)
            if upcoming is None and boundary is None:
                yield WaitSignal(wake)
                continue
            if upcoming is None:
                target = boundary
            elif boundary is None:
                target = upcoming
            else:
                target = min(upcoming, boundary)
            yield WaitSignal(wake, until=target)
