"""Pluggable per-machine serving backends.

The serving/cluster simulators drive every machine through one small
steppable surface — :class:`ServingBackend` — so a fleet can mix Hermes
boxes with the paper's baseline systems (§V-A2) and serve *identical*
traffic through each:

* ``hermes`` — :class:`~repro.serving.executor.MachineExecutor`, the
  NDP-DIMM engine with its online control plane (the original and still
  the default);
* ``dense`` — :class:`DenseGPUBackend`, a TensorRT-like dense-GPU
  machine: when the whole model fits in GPU memory every layer is read
  at HBM bandwidth, otherwise the non-resident fraction streams over
  PCIe per layer (the FlexGen zig-zag pipeline);
* ``dejavu`` — :class:`DejaVuBackend`, Deja-Vu-style contextual
  sparsity with per-step host-memory streaming of the predicted neuron
  rows (PCIe stays the bottleneck, but sparsity shrinks the bytes).

The baseline backends charge the *same per-token cost kernels* their
offline ``run()`` passes are built from (:mod:`repro.baselines.base`),
so online TTFT/TBT numbers and the offline figures cannot drift apart.

Steppable contract (what the simulators actually consume):

``prefill_cost(prompt_len, batch)`` -> (GPU compute, PCIe transfer)
seconds for one joining request; ``decode_step(batch, context)`` -> one
continuous-batching iteration's :class:`~repro.core.StepCost`;
``decode_span(batch, contexts, start_time=, until=)`` -> a fused run of
consecutive iterations as a :class:`~repro.core.SpanCost` —
**bit-for-bit equal** to the same sequential ``decode_step`` calls
(the macro-stepped serving loop relies on this; backends without a
natively fused engine get it from :func:`sequential_span`);
``mean_union``/``max_union_batch`` -> batch-union batching caps;
``last_step_seconds`` -> a sizing hint for span horizons (never affects
simulated outcomes); ``estimated_tokens_per_second()`` -> a pure,
deterministic throughput estimate for load-normalizing routers.

Capability flags (``supports_preemption``, ``supports_union_batching``)
are documented per backend in the README's capability matrix.
"""

from __future__ import annotations

import dataclasses
import functools
import math
import typing

import numpy as np

from ..baselines.base import (
    gpu_kv_attention_time,
    resident_dense_token_cost,
    streamed_dense_token_cost,
    weights_resident_fraction,
    zigzag_prefill_time,
)
from ..baselines.dejavu import DejaVu
from ..core import HermesConfig, SpanCost, StepCost
from ..hardware import Machine
from ..models import ModelSpec
from ..sparsity import ActivationTrace
from .executor import (
    MachineExecutor,
    default_serving_trace,
    max_union_batch_under_cap,
)

#: context length used by the pure throughput probes — long enough to be
#: decode-representative, short enough to stay attention-light
REFERENCE_CONTEXT = 128


@typing.runtime_checkable
class ServingBackend(typing.Protocol):
    """The steppable per-machine surface the serving simulators consume."""

    machine: Machine
    model: ModelSpec
    nominal_batch: int

    def prefill_cost(
        self, prompt_len: int, batch: int = 1
    ) -> tuple[float, float]:
        """(GPU compute, PCIe transfer) seconds to prefill one request."""
        ...  # pragma: no cover - protocol

    def prefill_seconds(self, prompt_len: int, batch: int = 1) -> float:
        """Total latency of prefilling one joining request."""
        ...  # pragma: no cover - protocol

    def decode_step(self, batch: int, context: int) -> StepCost:
        """One continuous-batching decode iteration over ``batch`` seqs."""
        ...  # pragma: no cover - protocol

    def decode_span(
        self,
        batch: int,
        contexts: typing.Sequence[int],
        *,
        start_time: float = 0.0,
        until: float | None = None,
    ) -> SpanCost:
        """A fused run of consecutive iterations (== sequential steps)."""
        ...  # pragma: no cover - protocol

    def span_estimate(
        self, batch: int, start_context: float, steps: int
    ) -> tuple[float, float, float]:
        """Aggregate ``(seconds, gpu_busy, dimm_busy)`` of a decode span.

        The ``fidelity: fast`` cost kernel: ``steps`` consecutive
        iterations at ``batch`` over the arithmetic context ramp
        starting at ``start_context`` (growing by one per step),
        collapsed to closed-form totals — no per-step arrays, no
        per-step events.  Estimates may differ (slightly) from summing
        ``decode_step``; the tolerance tests pin how much.
        """
        ...  # pragma: no cover - protocol

    def mean_union(self, batch: int) -> float:
        """Mean per-layer batch-union inflation at ``batch`` sequences."""
        ...  # pragma: no cover - protocol

    def max_union_batch(self, union_cap: float, limit: int) -> int:
        """Largest batch whose mean union stays under ``union_cap``."""
        ...  # pragma: no cover - protocol

    @property
    def last_step_seconds(self) -> float:
        """Most recent decode-iteration latency (sizing hint only)."""
        ...  # pragma: no cover - protocol

    def estimated_tokens_per_second(self) -> float:
        """Pure, deterministic decode-throughput estimate."""
        ...  # pragma: no cover - protocol

    def reset(self) -> None:
        """Restart cold after a crash: discard evolving engine state."""
        ...  # pragma: no cover - protocol

    def degrade(
        self, surviving_dimm_fraction: float, bandwidth_factor: float
    ) -> None:
        """Renegotiate over partially failed hardware (cumulative state,
        always derated from the pristine machine)."""
        ...  # pragma: no cover - protocol

    def kv_capacity_tokens(self) -> float:
        """Resident KV tokens this machine can hold (``inf``: unbounded
        for the purposes of degrade eviction)."""
        ...  # pragma: no cover - protocol


def sequential_span(
    backend: "ServingBackend",
    batch: int,
    contexts: typing.Sequence[int],
    *,
    start_time: float = 0.0,
    until: float | None = None,
) -> SpanCost:
    """A :class:`SpanCost` built from sequential ``decode_step`` calls.

    The generic ``decode_span`` for backends without a natively fused
    engine — bit-for-bit equal to stepping one token at a time by
    construction, with exactly :meth:`HermesSession.decode_steps`'s
    ``until`` semantics: the first step always runs, and the span ends
    after the first step whose completion time reaches ``until``.
    """
    if not contexts:
        raise ValueError("a span needs at least one step")
    seconds: list[float] = []
    gpu_busy: list[float] = []
    dimm_busy: list[float] = []
    end_times: list[float] = []
    swap_bytes: list[int] = []
    resident_bytes: list[int] = []
    running = start_time
    for context in contexts:
        cost = backend.decode_step(batch, context)
        running += cost.seconds
        seconds.append(cost.seconds)
        gpu_busy.append(cost.gpu_busy)
        dimm_busy.append(cost.dimm_busy)
        end_times.append(running)
        swap_bytes.append(cost.swap_bytes)
        resident_bytes.append(cost.resident_bytes)
        if until is not None and running >= until:
            break
    return SpanCost(
        seconds=np.array(seconds),
        gpu_busy=np.array(gpu_busy),
        dimm_busy=np.array(dimm_busy),
        end_times=np.array(end_times),
        swap_bytes=np.array(swap_bytes, dtype=np.int64),
        resident_bytes=np.array(resident_bytes, dtype=np.int64),
    )


class SteppableBackend:
    """Shared scaffolding for backends built from pure cost kernels.

    Subclasses implement ``_step_cost(batch, context)`` (may advance
    internal cursors) and ``_pure_step_seconds(batch, context)`` (must
    not); everything else — span fusion, prefill memoisation, union
    batching caps, throughput probes — is provided here.
    """

    name = "steppable"
    supports_preemption = True
    supports_union_batching = False

    def __init__(
        self, machine: Machine, model: ModelSpec, *, nominal_batch: int = 8
    ) -> None:
        if nominal_batch < 1:
            raise ValueError("nominal_batch must be >= 1")
        self.machine = machine
        #: pristine hardware — degrades always derate from this
        self._base_machine = machine
        self.model = model
        self.nominal_batch = nominal_batch
        self._last_step_seconds = 0.0
        self._prefill_cache: dict[tuple[int, int], tuple[float, float]] = {}
        self._union_batch_cache: dict[tuple[float, int], int] = {}
        self._estimated_step: float | None = None

    # ---- steppable core ----------------------------------------------
    def _step_cost(self, batch: int, context: int) -> StepCost:
        raise NotImplementedError  # pragma: no cover - abstract

    def _pure_step_seconds(self, batch: int, context: int) -> float:
        raise NotImplementedError  # pragma: no cover - abstract

    def _prefill_pair(
        self, prompt_len: int, batch: int
    ) -> tuple[float, float]:
        raise NotImplementedError  # pragma: no cover - abstract

    # ---- ServingBackend surface --------------------------------------
    def decode_step(self, batch: int, context: int) -> StepCost:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if context < 1:
            raise ValueError("context must be >= 1")
        cost = self._step_cost(batch, context)
        self._last_step_seconds = cost.seconds
        return cost

    def decode_span(
        self,
        batch: int,
        contexts: typing.Sequence[int],
        *,
        start_time: float = 0.0,
        until: float | None = None,
    ) -> SpanCost:
        return sequential_span(
            self, batch, contexts, start_time=start_time, until=until
        )

    def span_estimate(
        self, batch: int, start_context: float, steps: int
    ) -> tuple[float, float, float]:
        """Trapezoid aggregation: probe the ramp's two ends.

        Per-step cost is monotone and near-affine in the context for
        every bundled backend, so ``steps * mean(first, last)`` is a
        tight closed-form total from just two ``decode_step`` probes
        (which advance any internal cursor by two, not ``steps`` —
        that cursor drift is part of what makes fast fidelity
        approximate).  Backends with exactly-affine kernels override
        this with the exact closed form.
        """
        first = self.decode_step(batch, max(1, round(start_context)))
        if steps == 1:
            return first.seconds, first.gpu_busy, first.dimm_busy
        last = self.decode_step(
            batch, max(1, round(start_context + steps - 1))
        )
        half = steps / 2.0
        return (
            (first.seconds + last.seconds) * half,
            (first.gpu_busy + last.gpu_busy) * half,
            (first.dimm_busy + last.dimm_busy) * half,
        )

    def prefill_cost(
        self, prompt_len: int, batch: int = 1
    ) -> tuple[float, float]:
        if prompt_len < 1:
            raise ValueError("prompt_len must be >= 1")
        key = (prompt_len, batch)
        cost = self._prefill_cache.get(key)
        if cost is None:
            cost = self._prefill_pair(prompt_len, batch)
            self._prefill_cache[key] = cost
        return cost

    def prefill_seconds(self, prompt_len: int, batch: int = 1) -> float:
        compute, transfer = self.prefill_cost(prompt_len, batch)
        return compute + transfer

    @property
    def last_step_seconds(self) -> float:
        return self._last_step_seconds

    def mean_union(self, batch: int) -> float:
        """Dense weights: batching inflates no byte traffic."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return 1.0

    def max_union_batch(self, union_cap: float, limit: int) -> int:
        """Largest batch under the union cap (>= 1, monotone search)."""
        return max_union_batch_under_cap(
            self.mean_union, union_cap, limit, self._union_batch_cache
        )

    def estimated_step_seconds(self) -> float:
        """One decode iteration at the nominal batch (pure, memoised)."""
        if self._estimated_step is None:
            self._estimated_step = self._pure_step_seconds(
                self.nominal_batch, REFERENCE_CONTEXT
            )
        return self._estimated_step

    def estimated_tokens_per_second(self) -> float:
        return self.nominal_batch / self.estimated_step_seconds()

    def reset(self) -> None:
        """Restart cold after a crash.

        Pure-kernel backends keep no evolving engine state — every memo
        here is deterministic in its key — so the base reset only clears
        the sizing hint.  Backends with a real cursor override this.
        """
        self._last_step_seconds = 0.0

    def degrade(
        self, surviving_dimm_fraction: float, bandwidth_factor: float
    ) -> None:
        """Renegotiate this machine over partially failed hardware.

        The streamed backends do not touch the NDP-DIMM pool, so a DIMM
        loss only re-labels the machine; a ``bandwidth_factor`` derate
        is the one that bites — every streamed weight byte crosses the
        slower link from the next quoted cost onwards.  Cost memos are
        invalidated and :meth:`_renegotiate` lets subclasses rebuild
        machine-derived state; the engine then restarts (cursor rewind
        for dejavu) exactly like a crash reset, keeping fused==stepped
        bit-equal across the boundary.
        """
        base = self._base_machine
        dimms = max(1, int(base.num_dimms * surviving_dimm_fraction))
        pcie = dataclasses.replace(
            base.pcie, bandwidth=base.pcie.bandwidth * bandwidth_factor
        )
        machine = dataclasses.replace(base, num_dimms=dimms, pcie=pcie)
        if machine == self.machine:
            return
        self.machine = machine
        self._prefill_cache.clear()
        self._union_batch_cache.clear()
        self._estimated_step = None
        self._renegotiate()
        self.reset()

    def _renegotiate(self) -> None:
        """Hook: rebuild machine-derived state after a degrade."""

    def kv_capacity_tokens(self) -> float:
        """The streamed backends keep their KV cache in GPU (dense,
        dejavu) memory, which DIMM/link degrades never shrink — so
        degrade eviction has nothing to evict (``inf``)."""
        return math.inf

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}({self.model.name!r}, "
            f"nominal_batch={self.nominal_batch})"
        )


class DenseGPUBackend(SteppableBackend):
    """TensorRT-like dense serving on the machine's GPU.

    Full weights resident when they fit (every layer read at HBM
    bandwidth, zero decode PCIe traffic); otherwise the non-resident
    fraction streams over PCIe per layer behind the zig-zag overlap.
    The KV cache is always GPU-resident, so attention runs on the GPU
    and preempted requests re-admit for free.
    """

    name = "dense"
    supports_preemption = True
    #: dense weights — the union factor is identically 1, so a union cap
    #: never constrains the batch
    supports_union_batching = False

    def __init__(
        self, machine: Machine, model: ModelSpec, *, nominal_batch: int = 8
    ) -> None:
        super().__init__(machine, model, nominal_batch=nominal_batch)
        self.resident_fraction = weights_resident_fraction(machine, model)
        #: the per-token FC cost depends only on the batch size
        self._fc_cache: dict[int, tuple[float, float]] = {}

    def _renegotiate(self) -> None:
        self.resident_fraction = weights_resident_fraction(
            self.machine, self.model
        )
        self._fc_cache.clear()

    def _fc_cost(self, batch: int) -> tuple[float, float]:
        """(seconds, gpu_busy) of one token's FC work at ``batch``."""
        cost = self._fc_cache.get(batch)
        if cost is None:
            if self.resident_fraction >= 1.0:
                fc = resident_dense_token_cost(self.machine, self.model, batch)
                cost = (fc, fc)
            else:
                pipeline, transfer_only = streamed_dense_token_cost(
                    self.machine,
                    self.model,
                    batch,
                    resident_fraction=self.resident_fraction,
                )
                cost = (pipeline, max(0.0, pipeline - transfer_only))
            self._fc_cache[batch] = cost
        return cost

    def _step_cost(self, batch: int, context: int) -> StepCost:
        fc_seconds, fc_gpu = self._fc_cost(batch)
        attn = gpu_kv_attention_time(self.machine, self.model, context, batch)
        return StepCost(
            seconds=fc_seconds + attn, gpu_busy=fc_gpu + attn, dimm_busy=0.0
        )

    def _pure_step_seconds(self, batch: int, context: int) -> float:
        return self._step_cost(batch, context).seconds

    def span_estimate(
        self, batch: int, start_context: float, steps: int
    ) -> tuple[float, float, float]:
        """Exact closed form: FC is context-free and attention is
        affine in the context (``gpu_kv_attention_time`` is a linear
        byte count through an affine transfer-time model), so the span
        total equals ``steps`` times the cost at the ramp's mean
        context — no probes, no rounding of the ramp."""
        fc_seconds, fc_gpu = self._fc_cost(batch)
        mean_context = start_context + (steps - 1) / 2.0
        attn = gpu_kv_attention_time(
            self.machine, self.model, mean_context, batch
        )
        self._last_step_seconds = fc_seconds + attn
        return (
            (fc_seconds + attn) * steps,
            (fc_gpu + attn) * steps,
            0.0,
        )

    def _prefill_pair(
        self, prompt_len: int, batch: int
    ) -> tuple[float, float]:
        # the prompt KV lands directly in GPU memory: no PCIe push
        return (zigzag_prefill_time(self.machine, self.model, prompt_len,
                                    batch, self.resident_fraction), 0.0)


class DejaVuBackend(SteppableBackend):
    """Deja-Vu-style sparse host-offload serving.

    Each decode iteration charges the offline baseline's per-token cost
    kernel (:meth:`repro.baselines.dejavu.DejaVu.token_cost`) at the
    trace's next ground-truth activation row, cycling over the decode
    region exactly like the Hermes executor's wrapped session; the
    batch-union inflation of the streamed neuron set makes union-capped
    batching meaningful here, unlike the dense backend.
    """

    name = "dejavu"
    supports_preemption = True
    supports_union_batching = True

    def __init__(
        self,
        machine: Machine,
        model: ModelSpec,
        *,
        trace: ActivationTrace | None = None,
        nominal_batch: int = 8,
        granularity: int = 64,
        seed: int = 7,
    ) -> None:
        super().__init__(machine, model, nominal_batch=nominal_batch)
        if trace is None:
            trace = default_serving_trace(
                model, granularity=granularity, seed=seed
            )
        if trace.layout.model.name != model.name:
            raise ValueError(
                f"trace was generated for {trace.layout.model.name!r}, "
                f"not {model.name!r}")
        self.trace = trace
        self.core = DejaVu(machine, model)
        #: cursor over the trace's decode-token rows (wraps)
        self._cursor = 0
        self._decode_rows = list(trace.decode_tokens())
        if not self._decode_rows:
            raise ValueError("trace has no decode region")
        self._union_cache: dict[int, np.ndarray] = {}
        #: (token row, batch) -> (body seconds, body gpu_busy) — the
        #: context-independent part of one token's cost
        self._body_cache: dict[tuple[int, int], tuple[float, float]] = {}

    def _renegotiate(self) -> None:
        self.core = DejaVu(self.machine, self.model)
        self._union_cache.clear()
        self._body_cache.clear()

    def _union(self, batch: int) -> np.ndarray:
        union = self._union_cache.get(batch)
        if union is None:
            union = self.core.union_factors(self.trace, batch)
            self._union_cache[batch] = union
        return union

    def _token_body(self, t: int, batch: int) -> tuple[float, float]:
        """Everything except attention, accumulated in kernel order."""
        key = (t, batch)
        body = self._body_cache.get(key)
        if body is None:
            cost = self.core.token_cost(
                self.trace, t, 1, batch, self._union(batch)
            )
            seconds = 0.0
            gpu = 0.0
            for l in range(self.model.num_layers):
                seconds += (cost.transfers[l] + cost.computes[l]
                            + cost.predictors[l] + cost.projections[l])
                gpu += (
                    cost.computes[l] + cost.predictors[l] + cost.projections[l]
                )
            body = (seconds, gpu)
            self._body_cache[key] = body
        return body

    def _step_cost(self, batch: int, context: int) -> StepCost:
        t = self._decode_rows[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._decode_rows)
        return self._cost_at(t, batch, context)

    def _cost_at(self, t: int, batch: int, context: int) -> StepCost:
        body_seconds, body_gpu = self._token_body(t, batch)
        attn = gpu_kv_attention_time(self.machine, self.model, context, batch)
        return StepCost(
            seconds=body_seconds + attn,
            gpu_busy=body_gpu + attn,
            dimm_busy=0.0,
        )

    def _pure_step_seconds(self, batch: int, context: int) -> float:
        return self._cost_at(self._decode_rows[0], batch, context).seconds

    def _prefill_pair(
        self, prompt_len: int, batch: int
    ) -> tuple[float, float]:
        # dense streamed prefill (per-token predictions do not exist for
        # the whole prompt at once); the prompt KV stays on the GPU
        return (zigzag_prefill_time(
            self.machine, self.model, prompt_len, batch,
            self.core.resident_fraction()), 0.0)

    def mean_union(self, batch: int) -> float:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return float(self._union(batch).mean())

    def reset(self) -> None:
        """Restart cold: the trace cursor returns to the first decode row.

        A fused span may have advanced the cursor past a crash instant;
        rewinding it on restart keeps the fused and stepped serving
        loops bit-equal across the outage.
        """
        super().reset()
        self._cursor = 0


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
BACKENDS: dict[str, type] = {
    "hermes": MachineExecutor,
    "dense": DenseGPUBackend,
    "dejavu": DejaVuBackend,
}


def make_backend(
    name: str,
    machine: Machine,
    model: ModelSpec,
    *,
    hermes_config: HermesConfig | None = None,
    trace: ActivationTrace | None = None,
    nominal_batch: int = 8,
    granularity: int = 64,
    seed: int = 7,
) -> "ServingBackend":
    """Instantiate a registered backend on ``machine`` for ``model``.

    ``hermes_config`` applies to the ``hermes`` backend only (rejected
    elsewhere so a scenario cannot silently drop engine overrides);
    ``trace`` feeds the backends that consume ground-truth activations
    (hermes, dejavu) and is ignored by the dense backend.
    """
    try:
        factory = BACKENDS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise KeyError(
            f"unknown backend {name!r}; known backends: {known}") from None
    if factory is MachineExecutor:
        return MachineExecutor(
            machine,
            model,
            hermes_config,
            trace=trace,
            nominal_batch=nominal_batch,
            granularity=granularity,
            seed=seed,
        )
    if hermes_config is not None:
        raise ValueError(
            f"backend {name!r} does not take a Hermes engine config"
        )
    if factory is DejaVuBackend:
        return DejaVuBackend(
            machine,
            model,
            trace=trace,
            nominal_batch=nominal_batch,
            granularity=granularity,
            seed=seed,
        )
    return DenseGPUBackend(machine, model, nominal_batch=nominal_batch)


@functools.lru_cache(maxsize=128)
def probe_tokens_per_second(
    name: str,
    machine: Machine,
    model: ModelSpec,
    *,
    nominal_batch: int = 8,
    granularity: int = 64,
    seed: int = 7,
) -> float:
    """One backend's pure decode-throughput estimate, memoised.

    Builds a throwaway backend (same construction path the fleet uses)
    and asks it for ``estimated_tokens_per_second()`` — deterministic in
    every argument, so the capacity planner's analytic pruning pass and
    its ``--jobs N`` workers all see identical numbers.  Raises exactly
    where fleet construction would (e.g. a Hermes machine whose DIMM
    pool cannot hold the model), so callers should establish memory
    feasibility first.
    """
    backend = make_backend(
        name,
        machine,
        model,
        nominal_batch=nominal_batch,
        granularity=granularity,
        seed=seed,
    )
    return backend.estimated_tokens_per_second()


@dataclasses.dataclass(frozen=True)
class MachineGroup:
    """``count`` identical machines running one backend.

    The unit of fleet description: a heterogeneous fleet is a sequence
    of groups, each pinning its backend and optionally overriding the
    simulator-level machine spec, model, or nominal batch.  ``None``
    overrides inherit the simulator's defaults, so
    ``[MachineGroup(count=n)]`` is exactly the old homogeneous
    ``num_machines=n`` fleet.
    """

    count: int = 1
    backend: str = "hermes"
    #: hardware override; ``None`` inherits the simulator's machine
    machine: Machine | None = None
    #: model-registry name override; ``None`` inherits the simulator's
    model: str | None = None
    #: offline-partition/probe batch; ``None`` derives from ``max_batch``
    nominal_batch: int | None = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("a machine group needs count >= 1")
        if self.backend.lower() not in BACKENDS:
            known = ", ".join(sorted(BACKENDS))
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"known backends: {known}")
        if self.nominal_batch is not None and self.nominal_batch < 1:
            raise ValueError("nominal_batch must be >= 1")
