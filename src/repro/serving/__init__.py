"""Online serving: continuous-batching request scheduling over Hermes
machines.

The engine layer (:mod:`repro.core`) answers "how long does one batch of
tokens take on one machine"; this package answers the production question
above it: given open-loop request traffic, a batching policy, and a cluster
of Hermes machines, what throughput and TTFT/TBT/E2E latency distribution
do users see?  It is a request-level discrete-event simulation built on the
same :mod:`repro.sim` event calendar the engine uses for overlap modelling.
"""

from .backends import (
    BACKENDS,
    DejaVuBackend,
    DenseGPUBackend,
    MachineGroup,
    ServingBackend,
    SteppableBackend,
    make_backend,
    probe_tokens_per_second,
    sequential_span,
)
from .executor import MachineExecutor, default_serving_trace
from .faults import (
    CrashSpec,
    DegradeSpec,
    DomainCrashSpec,
    DomainSpec,
    FaultSchedule,
    PartitionSpec,
    SampleSpec,
    StragglerSpec,
    dump_fault_trace,
    load_fault_trace,
    merge_sampled,
    sample_faults,
)
from .metrics import (
    RequestRecord,
    ServingReport,
    percentile,
    percentile_or_nan,
    time_weighted_mean,
)
from .policies import (
    POLICIES,
    BatchingPolicy,
    FCFSPolicy,
    HermesUnionPolicy,
    NoBatchPolicy,
    ShortestOutputFirstPolicy,
    get_policy,
)
from .simulator import ActiveEntry, ServingConfig, ServingSimulator
from .workload import (
    LengthDistribution,
    Request,
    WorkloadConfig,
    generate_workload,
    merge_workloads,
    workload_from_arrivals,
)

__all__ = [
    "Request",
    "LengthDistribution",
    "WorkloadConfig",
    "generate_workload",
    "merge_workloads",
    "workload_from_arrivals",
    "ActiveEntry",
    "BatchingPolicy",
    "FCFSPolicy",
    "NoBatchPolicy",
    "ShortestOutputFirstPolicy",
    "HermesUnionPolicy",
    "POLICIES",
    "get_policy",
    "MachineExecutor",
    "default_serving_trace",
    "BACKENDS",
    "ServingBackend",
    "SteppableBackend",
    "DenseGPUBackend",
    "DejaVuBackend",
    "MachineGroup",
    "make_backend",
    "probe_tokens_per_second",
    "sequential_span",
    "FaultSchedule",
    "CrashSpec",
    "StragglerSpec",
    "PartitionSpec",
    "DomainSpec",
    "DomainCrashSpec",
    "DegradeSpec",
    "SampleSpec",
    "sample_faults",
    "merge_sampled",
    "dump_fault_trace",
    "load_fault_trace",
    "percentile",
    "percentile_or_nan",
    "time_weighted_mean",
    "RequestRecord",
    "ServingReport",
    "ServingConfig",
    "ServingSimulator",
]
