"""Serving metrics: per-request latency records and cluster-level reports.

The serving simulator measures what an SLO owner measures:

* **TTFT** — time to first token: arrival -> completion of the request's
  first decode step (queue wait + prefill + first iteration);
* **TBT** — time between tokens during steady decode;
* **E2E** — arrival -> last token;
* throughput (tokens/s and requests/s over the makespan), time-weighted
  queue depth and batch size, and per-device (GPU / NDP-DIMM pool)
  utilization integrated from the engine's :class:`~repro.core.StepCost`.

Percentiles use linear interpolation (numpy's default convention), kept in
a tiny local function so the arithmetic is hand-checkable in tests.
"""

from __future__ import annotations

import dataclasses
import math

from .workload import Request


def percentile(values: list[float], p: float) -> float:
    """P-th percentile with linear interpolation between order statistics.

    Matches ``numpy.percentile``'s default ("linear") method: rank
    ``(n - 1) * p / 100`` interpolated between the two nearest sorted
    samples.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError("p must lie in [0, 100]")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * p / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def percentile_or_nan(values: list[float], p: float) -> float:
    """:func:`percentile`, but an empty sample set yields ``nan``.

    Report aggregates use this so that a run (or a class) with no
    completed requests reads as "no data" (``nan``, rendered as "—")
    instead of crashing the report path.  ``p`` is still validated —
    asking for p150 is a caller bug even over no data.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError("p must lie in [0, 100]")
    if not values:
        return math.nan
    return percentile(values, p)


def time_weighted_mean(
    samples: list[tuple[float, float]], horizon: float
) -> float:
    """Mean of a piecewise-constant signal ``[(time, value), ...]``.

    Each value holds from its timestamp until the next sample (or
    ``horizon``); the signal is 0 before the first sample.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    total = 0.0
    for i, (t, v) in enumerate(samples):
        t_end = samples[i + 1][0] if i + 1 < len(samples) else horizon
        total += v * max(0.0, min(t_end, horizon) - t)
    return total / horizon


@dataclasses.dataclass(slots=True)
class RequestRecord:
    """Lifecycle timestamps of one served request."""

    request: Request
    machine: int = -1
    prefill_start: float | None = None
    token_times: list[float] = dataclasses.field(default_factory=list)
    #: times this request was bumped out of a running batch by preemptive
    #: admission (cluster SLO scheduling); 0 under non-preemptive policies
    preemptions: int = 0
    #: times this request was evacuated off a crashed machine; each
    #: migration forces a re-prefill over prompt + generated tokens
    migrations: int = 0
    #: set while a migration's KV loss is outstanding: the next admission
    #: re-runs prefill even though ``prefill_start`` is already stamped
    needs_prefill: bool = False

    @property
    def finished(self) -> bool:
        return len(self.token_times) >= self.request.output_len

    @property
    def first_token_time(self) -> float:
        """Time of the first decode token (``nan`` if none produced)."""
        return self.token_times[0] if self.token_times else math.nan

    @property
    def finish_time(self) -> float:
        """Time of the last decode token (``nan`` if none produced)."""
        return self.token_times[-1] if self.token_times else math.nan

    @property
    def queue_wait(self) -> float:
        """Arrival -> start of prefill (pure scheduling delay)."""
        if self.prefill_start is None:
            raise ValueError("request never started")
        return self.prefill_start - self.request.arrival

    @property
    def ttft(self) -> float:
        return self.first_token_time - self.request.arrival

    @property
    def e2e_latency(self) -> float:
        return self.finish_time - self.request.arrival

    @property
    def tbts(self) -> list[float]:
        """Inter-token gaps after the first token."""
        return [b - a for a, b in zip(self.token_times, self.token_times[1:])]


@dataclasses.dataclass
class ServingReport:
    """Aggregate outcome of one serving-simulation run."""

    policy: str
    num_machines: int
    records: list[RequestRecord]
    makespan: float
    #: (time, queue depth) change points
    queue_samples: list[tuple[float, float]]
    #: (time, total in-flight batch) change points
    batch_samples: list[tuple[float, float]]
    #: per-machine busy seconds (index = machine id); empty means "not
    #: tracked", in which case the aggregate properties report 0
    machine_gpu_busy: list[float] = dataclasses.field(default_factory=list)
    machine_dimm_busy: list[float] = dataclasses.field(default_factory=list)
    #: machines whose batching policy returned a batch limit < 1 and had
    #: it clamped up to 1 (a warned-about policy bug, not silent repair)
    batch_limit_clamps: int = 0
    #: per-machine seconds spent down within the makespan (crash through
    #: restart + warmup); empty means "no fault schedule"
    machine_downtime: list[float] = dataclasses.field(default_factory=list)
    #: outage durations (crash -> serving again) of every crash that
    #: fully recovered within the run, in crash order
    recoveries: list[float] = dataclasses.field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def preemptions(self) -> int:
        """Total preemptions across requests."""
        return sum(r.preemptions for r in self.records)

    @property
    def migrations(self) -> int:
        """Total crash-driven migrations across requests."""
        return sum(r.migrations for r in self.records)

    @property
    def availability(self) -> float:
        """Fraction of fleet machine-seconds the fleet was serving.

        1.0 with no fault schedule (or no downtime); ``nan`` on a
        zero-length run, matching the percentile conventions.
        """
        if not self.machine_downtime:
            return 1.0
        if self.makespan <= 0:
            return math.nan
        total = self.makespan * self.num_machines
        return 1.0 - sum(self.machine_downtime) / total

    @property
    def mean_time_to_recover(self) -> float:
        """Mean crash->serving-again duration (``nan``: no recoveries)."""
        if not self.recoveries:
            return math.nan
        return sum(self.recoveries) / len(self.recoveries)

    @property
    def unfinished(self) -> list[RequestRecord]:
        """Requests the run never completed (e.g. stranded on a machine
        that never restarted) — reported honestly, never dropped."""
        return [r for r in self.records if not r.finished]

    @property
    def gpu_busy(self) -> float:
        """Total GPU busy seconds summed over machines."""
        return sum(self.machine_gpu_busy)

    @property
    def dimm_busy(self) -> float:
        """Total NDP-DIMM-pool busy seconds summed over machines."""
        return sum(self.machine_dimm_busy)

    @property
    def completed(self) -> list[RequestRecord]:
        return [r for r in self.records if r.finished]

    @property
    def total_tokens(self) -> int:
        return sum(len(r.token_times) for r in self.records)

    @property
    def tokens_per_second(self) -> float:
        return self.total_tokens / self.makespan if self.makespan > 0 else 0.0

    @property
    def requests_per_second(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return len(self.completed) / self.makespan

    # ------------------------------------------------------------------
    # Latency percentiles aggregate over *completed* requests; with none
    # completed (e.g. an aborted or empty run) they report ``nan`` —
    # "no data", not an exception — so report/rendering paths never
    # crash on a degenerate run.
    def _values(self, attr: str) -> list[float]:
        return [getattr(r, attr) for r in self.completed]

    def ttft_percentile(self, p: float) -> float:
        return percentile_or_nan(self._values("ttft"), p)

    def e2e_percentile(self, p: float) -> float:
        return percentile_or_nan(self._values("e2e_latency"), p)

    def queue_wait_percentile(self, p: float) -> float:
        return percentile_or_nan(self._values("queue_wait"), p)

    def tbt_percentile(self, p: float) -> float:
        gaps = [g for r in self.completed for g in r.tbts]
        return percentile_or_nan(gaps, p)

    # ------------------------------------------------------------------
    @property
    def mean_queue_depth(self) -> float:
        return time_weighted_mean(self.queue_samples, self.makespan)

    @property
    def max_queue_depth(self) -> float:
        return max((v for _, v in self.queue_samples), default=0.0)

    @property
    def mean_batch_size(self) -> float:
        return time_weighted_mean(self.batch_samples, self.makespan)

    @property
    def gpu_utilization(self) -> float:
        """GPU busy fraction, averaged over machines and the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.gpu_busy / (self.makespan * self.num_machines)

    @property
    def dimm_utilization(self) -> float:
        """NDP-DIMM pool busy fraction (critical-path DIMM time)."""
        if self.makespan <= 0:
            return 0.0
        return self.dimm_busy / (self.makespan * self.num_machines)

    @property
    def machine_gpu_utilization(self) -> list[float]:
        """Per-machine GPU busy fraction over the makespan."""
        if self.makespan <= 0:
            return [0.0] * len(self.machine_gpu_busy)
        return [b / self.makespan for b in self.machine_gpu_busy]

    @property
    def machine_dimm_utilization(self) -> list[float]:
        """Per-machine NDP-DIMM pool busy fraction over the makespan."""
        if self.makespan <= 0:
            return [0.0] * len(self.machine_dimm_busy)
        return [b / self.makespan for b in self.machine_dimm_busy]
