"""FlexGen-style zig-zag offloading baseline (§II-C, §V-A2).

FlexGen pins host weight buffers and overlaps the PCIe stream of layer
``i+1`` with the compute of layer ``i`` (the zig-zag block schedule).  That
schedule shines when a large token block amortises each weight fetch, but
local deployment uses small batches (§II-C): with a handful of tokens per
block, decode is transfer-bound and the pipeline degenerates to the PCIe
stream time of the non-resident weights.

Calibration notes: FlexGen's decode-time transfers move many medium-sized
tensors per layer and reach roughly ``DECODE_LINK_UTILISATION`` of the
pinned-link bandwidth (the FlexGen paper's own profiling shows decode
utilisation well below the prefill stream); the KV cache is offloaded to
host memory and attention runs on the CPU, paying the host-memory-bus scan.
"""

from __future__ import annotations

from ..core.result import RunResult
from ..sparsity import ActivationTrace
from .base import OffloadingSystem, streamed_dense_token_cost

#: achieved fraction of pinned PCIe bandwidth during decode
DECODE_LINK_UTILISATION = 0.45
#: per-layer scheduling overhead of the block pipeline
SCHEDULE_OVERHEAD = 0.5e-3


class FlexGen(OffloadingSystem):
    """Zig-zag overlapped offloading with CPU-resident KV cache."""

    name = "FlexGen"

    # FlexGen's local-deployment policy places the weight pool in host
    # memory wholesale (w_gpu_percent=0): GPU memory is reserved for
    # the block's activations and the compute double-buffers, which is
    # what lets the same policy file serve every model size.
    resident = 0.0

    def token_cost(
        self, context: int, batch: int
    ) -> tuple[float, float, float]:
        """One decode token's ``(pipeline, transfer_only, attention)``.

        The steppable core: per layer, transfer(next layer) overlaps
        compute(this layer); attention scans the host-resident KV cache
        on the CPU.  Pure function of (context, batch) — the serving
        backend charges it per continuous-batching iteration and
        ``run()`` composes it into the offline pass.
        """
        machine = self.machine
        model = self.model
        pipeline, transfer_only = streamed_dense_token_cost(
            machine,
            model,
            batch,
            resident_fraction=self.resident,
            link_utilisation=DECODE_LINK_UTILISATION,
            per_layer_overhead=SCHEDULE_OVERHEAD,
        )
        kv_bytes = (2 * model.kv_dim * 2 * context * batch * model.num_layers)
        attn = machine.host.gemv_time(kv_bytes, 1, scattered=False)
        return pipeline, transfer_only, attn

    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        result = self.make_result(batch, trace)

        # prefill: the zig-zag schedule at its best (large block)
        prefill = self.gpu_prefill_time(trace.prompt_len, batch,
                                        self.resident)
        result.prefill_time = prefill
        result.add("prefill", prefill)

        decode = 0.0
        for step in range(trace.n_decode_tokens):
            context = trace.prompt_len + step + 1
            pipeline, transfer_only, attn = self.token_cost(context, batch)
            decode += pipeline + attn
            result.add("communication", min(pipeline, transfer_only))
            result.add("fc", max(0.0, pipeline - transfer_only))
            result.add("attention", attn)
        result.decode_time = decode
        return result
