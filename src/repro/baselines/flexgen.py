"""FlexGen-style zig-zag offloading baseline (§II-C, §V-A2).

FlexGen pins host weight buffers and overlaps the PCIe stream of layer
``i+1`` with the compute of layer ``i`` (the zig-zag block schedule).  That
schedule shines when a large token block amortises each weight fetch, but
local deployment uses small batches (§II-C): with a handful of tokens per
block, decode is transfer-bound and the pipeline degenerates to the PCIe
stream time of the non-resident weights.

Calibration notes: FlexGen's decode-time transfers move many medium-sized
tensors per layer and reach roughly ``DECODE_LINK_UTILISATION`` of the
pinned-link bandwidth (the FlexGen paper's own profiling shows decode
utilisation well below the prefill stream); the KV cache is offloaded to
host memory and attention runs on the CPU, paying the host-memory-bus scan.
"""

from __future__ import annotations


from ..core.result import RunResult
from ..sim import overlap_two_stage
from ..sparsity import ActivationTrace
from .base import OffloadingSystem

#: achieved fraction of pinned PCIe bandwidth during decode
DECODE_LINK_UTILISATION = 0.45
#: per-layer scheduling overhead of the block pipeline
SCHEDULE_OVERHEAD = 0.5e-3


class FlexGen(OffloadingSystem):
    """Zig-zag overlapped offloading with CPU-resident KV cache."""

    name = "FlexGen"

    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        model = self.model
        machine = self.machine
        result = self.make_result(batch, trace)
        # FlexGen's local-deployment policy places the weight pool in host
        # memory wholesale (w_gpu_percent=0): GPU memory is reserved for
        # the block's activations and the compute double-buffers, which is
        # what lets the same policy file serve every model size.
        resident = 0.0
        stream_bytes = model.layer_bytes * (1.0 - resident)
        link_bw = (machine.pcie.effective_bandwidth
                   * DECODE_LINK_UTILISATION)

        # prefill: the zig-zag schedule at its best (large block)
        prefill = self.gpu_prefill_time(trace.prompt_len, batch, resident)
        result.prefill_time = prefill
        result.add("prefill", prefill)

        decode = 0.0
        for step in range(trace.n_decode_tokens):
            context = trace.prompt_len + step + 1
            # per-layer: transfer(next layer) overlaps compute(this layer)
            transfers, computes = [], []
            for _ in range(model.num_layers):
                transfers.append(machine.pcie.latency
                                 + stream_bytes / link_bw)
                computes.append(
                    machine.gpu.matmul_time(model.layer_bytes, batch)
                    + SCHEDULE_OVERHEAD)
            pipeline = overlap_two_stage(transfers, computes)
            # attention over the host-resident KV cache, on the CPU
            kv_bytes = (2 * model.kv_dim * 2 * context * batch
                        * model.num_layers)
            attn = machine.host.gemv_time(kv_bytes, 1, scattered=False)
            decode += pipeline + attn
            transfer_only = sum(transfers)
            result.add("communication", min(pipeline, transfer_only))
            result.add("fc", max(0.0, pipeline - transfer_only))
            result.add("attention", attn)
        result.decode_time = decode
        return result
