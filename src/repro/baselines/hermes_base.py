"""Hermes-base: the NDP-DIMM machine *without* activation sparsity (§V-B1).

A straightforward NDP-extended system: whole layers whose weights fit in
GPU memory compute on the GPU; the remaining layers compute densely on the
NDP-DIMMs where their weights live (sharded across the pool); all attention
runs on the NDP-DIMMs.  No predictor, no hot/cold partition, no migration.
Weight traffic never crosses PCIe during decode — only activations do —
which is why even this naive design beats PCIe-bound offloading, and why
the gap between it and full Hermes isolates the value of sparsity.
"""

from __future__ import annotations

from ..core.result import RunResult
from ..sparsity import ActivationTrace
from .base import GIB, OffloadingSystem


class HermesBase(OffloadingSystem):
    """NDP-DIMM offloading without sparsity.

    Without Hermes' neuron mapper, layer weights are placed by the host's
    page-granular channel interleaving, which stripes a layer across the
    memory *channels* (4 on the reference platform) rather than across all
    DIMMs — so a dense NDP layer engages ``stripe_dimms`` NDP cores, not
    the whole pool.  Attention shards by KV head across every DIMM, which
    needs no fine-grained placement.
    """

    name = "Hermes-base"
    stripe_dimms = 4

    def gpu_resident_layers(self, reserve_bytes: int = 1 * GIB) -> int:
        """Number of leading layers whose full weights fit on the GPU."""
        model = self.model
        usable = (self.machine.gpu.memory_bytes - model.embedding_bytes
                  - reserve_bytes)
        if usable <= 0:
            return 0
        return min(model.num_layers, int(usable // model.layer_bytes))

    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        model = self.model
        machine = self.machine
        result = self.make_result(batch, trace)
        n_gpu_layers = self.gpu_resident_layers()
        n_dimms = machine.num_dimms
        heads_per_dimm = -(-model.num_heads // n_dimms)

        prefill = self.gpu_prefill_time(
            trace.prompt_len,
            batch,
            resident_fraction=n_gpu_layers / model.num_layers,
        )
        kv_prompt = model.kv_bytes_total(trace.prompt_len, batch)
        kv_push = machine.pcie.transfer_time(kv_prompt)
        result.prefill_time = prefill + kv_push
        result.add("prefill", prefill)
        result.add("communication", kv_push)

        decode = 0.0
        for step in range(trace.n_decode_tokens):
            context = trace.prompt_len + step + 1
            token = 0.0
            for l in range(model.num_layers):
                if l < n_gpu_layers:
                    # dense FC blocks (QKV + projection + MLP) on the GPU
                    t_fc = machine.gpu.matmul_time(
                        model.sparse_bytes_per_layer, batch)
                    t_proj = machine.gpu.matmul_time(
                        model.dense_bytes_per_layer, batch
                    )
                    result.add("fc", t_fc)
                    result.add("projection", t_proj)
                    token += t_fc + t_proj + 2 * machine.sync_latency
                    result.add("others", 2 * machine.sync_latency)
                else:
                    # dense FC blocks striped across one channel group
                    stripe = min(self.stripe_dimms, n_dimms)
                    shard = (model.sparse_bytes_per_layer
                             + model.dense_bytes_per_layer) / stripe
                    t_fc = machine.dimm.gemv_time(shard, batch)
                    result.add("fc", t_fc)
                    token += t_fc
                kv_bytes = 2 * model.kv_dim * 2 * context * batch
                t_attn = machine.dimm.attention_time(
                    kv_bytes / n_dimms, context, heads_per_dimm, batch
                )
                result.add("attention", t_attn)
                token += t_attn
            decode += token
        result.decode_time = decode
        result.metadata["gpu_resident_layers"] = n_gpu_layers
        return result
