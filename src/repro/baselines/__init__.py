"""Baseline inference systems the paper compares against."""

from .base import OffloadingSystem
from .accelerate import HuggingfaceAccelerate
from .flexgen import FlexGen
from .dejavu import DejaVu
from .hermes_host import HermesHost
from .hermes_base import HermesBase
from .tensorrt import TensorRTLLM

__all__ = [
    "OffloadingSystem",
    "HuggingfaceAccelerate",
    "FlexGen",
    "DejaVu",
    "HermesHost",
    "HermesBase",
    "TensorRTLLM",
]
