"""Shared scaffolding for the offloading-based baseline systems (§V-A2).

Every baseline runs on the same :class:`~repro.hardware.system.Machine` and
consumes the same :class:`~repro.sparsity.trace.ActivationTrace` as Hermes;
what differs is each system's *data-movement schedule* — which bytes cross
PCIe, which stay on the GPU, and what overlaps with what.  The paper's
comparisons are dominated by exactly those schedules, so the baselines model
them faithfully and share the byte-accounting helpers defined here.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.engine import batch_union_factor
from ..core.result import RunResult
from ..hardware import Machine
from ..models import ModelSpec
from ..sim import overlap_two_stage
from ..sparsity import ActivationTrace

GIB = 2**30


class OffloadingSystem(abc.ABC):
    """Base class: a model deployed on a machine with host-memory backing."""

    name = "offloading"

    def __init__(self, machine: Machine, model: ModelSpec) -> None:
        self.machine = machine
        self.model = model

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        """Simulate one prefill + decode pass."""

    # ------------------------------------------------------------------
    def resident_fraction(self, *, reserve_bytes: int = 1 * GIB) -> float:
        """Fraction of the weights that fits in GPU memory.

        Embeddings and the KV cache claim GPU space first (these systems
        keep the KV cache on the GPU); layer weights fill the rest.
        """
        model = self.model
        usable = self.machine.gpu.memory_bytes - reserve_bytes
        usable -= model.embedding_bytes
        layer_pool = model.layer_bytes * model.num_layers
        if usable <= 0:
            return 0.0
        return min(1.0, usable / layer_pool)

    def gpu_prefill_time(self, prompt_len: int, batch: int,
                         resident_fraction: float, *,
                         pinned: bool = True) -> float:
        """Prefill with layer-by-layer weight streaming over PCIe."""
        model = self.model
        pcie = self.machine.pcie if pinned else self._pageable_pcie()
        transfer, compute = [], []
        for _ in range(model.num_layers):
            stream = model.layer_bytes * (1.0 - resident_fraction)
            transfer.append(pcie.transfer_time(stream))
            compute.append(self.machine.gpu.prefill_time(
                model.layer_bytes, prompt_len, batch))
        return overlap_two_stage(transfer, compute)

    def _pageable_pcie(self):
        from ..hardware.links import pcie4_x16
        return pcie4_x16(pinned=False)

    def gpu_attention_time(self, context: int, batch: int) -> float:
        """Decode attention over a GPU-resident KV cache."""
        kv_bytes = 2 * self.model.kv_dim * 2 * context * batch
        return self.machine.gpu.attention_time(kv_bytes
                                               * self.model.num_layers)

    # ------------------------------------------------------------------
    def union_factors(self, trace: ActivationTrace,
                      batch: int) -> np.ndarray:
        """Per-layer batch-union inflation of the activated set."""
        return np.array([
            batch_union_factor(trace.prefill_frequencies(l), batch)
            for l in range(trace.num_layers)
        ])

    def make_result(self, batch: int, trace: ActivationTrace) -> RunResult:
        return RunResult(
            system=self.name, model=self.model.name, batch=batch,
            prefill_time=1e-12, decode_time=1e-12,
            n_decode_tokens=max(1, trace.n_decode_tokens))
