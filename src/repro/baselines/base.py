"""Shared scaffolding for the offloading-based baseline systems (§V-A2).

Every baseline runs on the same :class:`~repro.hardware.system.Machine` and
consumes the same :class:`~repro.sparsity.trace.ActivationTrace` as Hermes;
what differs is each system's *data-movement schedule* — which bytes cross
PCIe, which stay on the GPU, and what overlaps with what.  The paper's
comparisons are dominated by exactly those schedules, so the baselines model
them faithfully and share the byte-accounting helpers defined here.

The byte accounting is exposed twice:

* as **module-level per-token cost kernels** (``weights_resident_fraction``,
  ``zigzag_prefill_time``, ``streamed_dense_token_cost``,
  ``gpu_kv_attention_time``, ``gather_stream_bandwidth``) — pure functions
  of (machine, model, token state) that the *steppable* serving backends
  (:mod:`repro.serving.backends`) charge one decode iteration at a time;
* as :class:`OffloadingSystem` methods delegating to those kernels, which
  each offline ``run()`` composes into a whole prefill+decode pass.

Both layers share one spelling of every formula, so the offline figures
(fig09/fig17) and the online serving backends cannot drift apart.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.engine import batch_union_factor
from ..core.result import RunResult
from ..hardware import Machine
from ..models import ModelSpec
from ..sim import overlap_two_stage
from ..sparsity import ActivationTrace

GIB = 2**30


# ----------------------------------------------------------------------
# per-token cost kernels (pure functions; steppable backends call these)
# ----------------------------------------------------------------------
def weights_resident_fraction(machine: Machine, model: ModelSpec, *,
                              reserve_bytes: int = 1 * GIB) -> float:
    """Fraction of the layer weights that fits in GPU memory.

    Embeddings and the KV cache claim GPU space first (these systems
    keep the KV cache on the GPU); layer weights fill the rest.
    """
    usable = machine.gpu.memory_bytes - reserve_bytes
    usable -= model.embedding_bytes
    layer_pool = model.layer_bytes * model.num_layers
    if usable <= 0:
        return 0.0
    return min(1.0, usable / layer_pool)


def zigzag_prefill_time(
    machine: Machine,
    model: ModelSpec,
    prompt_len: int,
    batch: int,
    resident_fraction: float,
    *,
    pinned: bool = True,
) -> float:
    """Prefill with layer-by-layer weight streaming over PCIe."""
    pcie = machine.pcie if pinned else _pageable_pcie()
    transfer, compute = [], []
    for _ in range(model.num_layers):
        stream = model.layer_bytes * (1.0 - resident_fraction)
        transfer.append(pcie.transfer_time(stream))
        compute.append(
            machine.gpu.prefill_time(model.layer_bytes, prompt_len, batch)
        )
    return overlap_two_stage(transfer, compute)


def streamed_dense_token_cost(
    machine: Machine,
    model: ModelSpec,
    batch: int,
    *,
    resident_fraction: float = 0.0,
    link_utilisation: float = 1.0,
    per_layer_overhead: float = 0.0,
) -> tuple[float, float]:
    """One dense decode token with zig-zag weight streaming.

    Per layer, the PCIe stream of the next layer's non-resident weights
    overlaps this layer's GPU compute (FlexGen's block schedule at batch
    size 1..16 — transfer-bound for over-sized models).  Returns
    ``(pipeline_seconds, transfer_only_seconds)`` so callers can split
    the communication/compute breakdown the way the figures do.
    """
    stream_bytes = model.layer_bytes * (1.0 - resident_fraction)
    link_bw = machine.pcie.effective_bandwidth * link_utilisation
    transfers, computes = [], []
    for _ in range(model.num_layers):
        transfers.append(machine.pcie.latency + stream_bytes / link_bw)
        computes.append(machine.gpu.matmul_time(model.layer_bytes, batch)
                        + per_layer_overhead)
    pipeline = overlap_two_stage(transfers, computes)
    return pipeline, sum(transfers)


def resident_dense_token_cost(
    machine: Machine, model: ModelSpec, batch: int
) -> float:
    """One dense decode token with *all* weights GPU-resident.

    The TensorRT-style regime: every layer's FC weights are read at HBM
    bandwidth, no PCIe traffic at all (attention is charged separately).
    """
    token = 0.0
    for _ in range(model.num_layers):
        token += machine.gpu.matmul_time(model.layer_bytes, batch)
    return token


def gpu_kv_attention_time(
    machine: Machine, model: ModelSpec, context: int, batch: int
) -> float:
    """Decode attention over a GPU-resident KV cache."""
    kv_bytes = 2 * model.kv_dim * 2 * context * batch
    return machine.gpu.attention_time(kv_bytes * model.num_layers)


def hermes_gpu_hot_budget(
    machine: Machine, model: ModelSpec, *, reserve_bytes: int = 1 * GIB
) -> int:
    """GPU bytes left for Hermes' hot-neuron region (may be <= 0).

    Mirrors :attr:`repro.core.HermesSystem.gpu_hot_budget` — dense
    projection weights and embeddings pin GPU memory first, then the
    workspace reserve — as a pure kernel the capacity planner can
    evaluate without constructing an engine.
    """
    static = (
        model.dense_bytes_per_layer * model.num_layers
        + model.embedding_bytes
    )
    return machine.gpu.memory_bytes - static - reserve_bytes


def hermes_memory_feasible(
    machine: Machine, model: ModelSpec, *, reserve_bytes: int = 1 * GIB
) -> tuple[bool, str]:
    """(fits, reason) — can a Hermes machine even host ``model``?

    The exact pair of capacity checks that make
    :class:`repro.core.HermesSystem` construction (DIMM pool) and
    session setup (GPU hot budget) raise, spelled as a pure kernel so
    the planner can discard a candidate fleet analytically instead of
    catching engine exceptions.
    """
    required = model.total_weight_bytes - model.embedding_bytes
    if not machine.fits_on_dimms(required):
        return False, (
            f"needs {required / GIB:.0f} GiB of DIMM capacity; the pool "
            f"has {machine.dimm_capacity_total / GIB:.0f} GiB"
        )
    if hermes_gpu_hot_budget(machine, model,
                             reserve_bytes=reserve_bytes) <= 0:
        return False, (
            f"{machine.gpu.name} cannot hold the dense weights of "
            f"{model.name}"
        )
    return True, ""


def streamed_token_transfer_floor(
    machine: Machine, model: ModelSpec, resident_fraction: float
) -> float:
    """Hard PCIe lower bound on one streamed dense decode token.

    The transfer legs of :func:`streamed_dense_token_cost` alone — no
    pipeline can finish a token before its non-resident weights have
    crossed the link, so ``batch / floor`` is a *sound* upper bound on
    a streamed backend's tokens/sec at any batch size.
    """
    stream_bytes = model.layer_bytes * (1.0 - resident_fraction)
    per_layer = (
        machine.pcie.latency
        + stream_bytes / machine.pcie.effective_bandwidth
    )
    return per_layer * model.num_layers


def gather_stream_bandwidth(machine: Machine) -> float:
    """Effective PCIe stream rate of scattered host-memory neuron rows.

    The CPU gathers non-contiguous rows (scattered reads at
    ``scatter_efficiency``) into a pinned staging buffer (a second write
    pass) before the DMA, so the gather pipeline — not PCIe — usually
    bounds the stream.
    """
    bus = machine.host.memory_bus.effective_bandwidth
    gather_bw = bus * machine.host.scatter_efficiency / 2
    return min(machine.pcie.effective_bandwidth, gather_bw)


def trace_union_factors(trace: ActivationTrace, batch: int) -> np.ndarray:
    """Per-layer batch-union inflation of the activated set."""
    return np.array([
        batch_union_factor(trace.prefill_frequencies(l), batch)
        for l in range(trace.num_layers)
    ])


def _pageable_pcie():
    from ..hardware.links import pcie4_x16
    return pcie4_x16(pinned=False)


class OffloadingSystem(abc.ABC):
    """Base class: a model deployed on a machine with host-memory backing."""

    name = "offloading"

    def __init__(self, machine: Machine, model: ModelSpec) -> None:
        self.machine = machine
        self.model = model

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        """Simulate one prefill + decode pass."""

    # ------------------------------------------------------------------
    def resident_fraction(self, *, reserve_bytes: int = 1 * GIB) -> float:
        """Fraction of the weights that fits in GPU memory."""
        return weights_resident_fraction(
            self.machine, self.model, reserve_bytes=reserve_bytes
        )

    def gpu_prefill_time(
        self,
        prompt_len: int,
        batch: int,
        resident_fraction: float,
        *,
        pinned: bool = True,
    ) -> float:
        """Prefill with layer-by-layer weight streaming over PCIe."""
        return zigzag_prefill_time(
            self.machine,
            self.model,
            prompt_len,
            batch,
            resident_fraction,
            pinned=pinned,
        )

    def _pageable_pcie(self):
        return _pageable_pcie()

    def gpu_attention_time(self, context: int, batch: int) -> float:
        """Decode attention over a GPU-resident KV cache."""
        return gpu_kv_attention_time(self.machine, self.model, context, batch)

    # ------------------------------------------------------------------
    def union_factors(self, trace: ActivationTrace,
                      batch: int) -> np.ndarray:
        """Per-layer batch-union inflation of the activated set."""
        return trace_union_factors(trace, batch)

    def make_result(self, batch: int, trace: ActivationTrace) -> RunResult:
        return RunResult(
            system=self.name,
            model=self.model.name,
            batch=batch,
            prefill_time=1e-12,
            decode_time=1e-12,
            n_decode_tokens=max(1, trace.n_decode_tokens),
        )
