"""Deja-Vu-style sparsity-aware offloading baseline (§II-C, §V-A2).

Deja Vu predicts each layer's activated neurons with per-layer MLP
predictors and computes only those.  The paper adapts it to a single
consumer GPU: because the activated set is dynamic, *it cannot be
pre-loaded* — every predicted neuron's weights stream from host memory
each step (§II-C), so PCIe remains the bottleneck even though sparsity
shrinks the byte count.

Modelled costs per decode step and layer:

* gather + stream of the predicted activated neurons: scattered multi-KB
  rows are first gathered by the CPU (host-bus read + write) and then
  DMA-ed, so the effective rate is the min of the pinned link and half the
  host memory bus;
* the MLP predictor itself: a dense two-layer MLP per transformer layer on
  the GPU — the ~18 % compute overhead of Fig. 12a;
* dense projection compute on the GPU (resident, priority allocation);
* attention on the GPU over a GPU-resident KV cache.

Prediction quality is taken from the trace's ground truth inflated by the
batch-union factor — generous to Deja Vu, which keeps the comparison
conservative.
"""

from __future__ import annotations

from ..core.result import RunResult
from ..sparsity import ActivationTrace
from .base import OffloadingSystem

#: MLP predictor: hidden -> rank -> neurons, rank = hidden // 8 (Deja Vu)
PREDICTOR_RANK_DIVISOR = 8


class DejaVu(OffloadingSystem):
    """Contextual-sparsity offloading with MLP predictors."""

    name = "Deja Vu"

    def predictor_bytes_per_layer(self) -> int:
        """FP16 weights of one layer's two MLP predictors (QKV + MLP)."""
        model = self.model
        rank = max(1, model.hidden_size // PREDICTOR_RANK_DIVISOR)
        attn = model.hidden_size * rank + rank * model.hidden_size
        mlp = model.hidden_size * rank + rank * model.ffn_size
        return (attn + mlp) * 2

    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        model = self.model
        machine = self.machine
        layout = trace.layout
        result = self.make_result(batch, trace)
        union = self.union_factors(trace, batch)

        # Effective stream rate of scattered neuron rows: the CPU gathers
        # non-contiguous rows (scattered reads at scatter_efficiency) into
        # a pinned staging buffer (a second write pass) before the DMA, so
        # the gather pipeline — not PCIe — bounds the stream.
        bus = machine.host.memory_bus.effective_bandwidth
        gather_bw = bus * machine.host.scatter_efficiency / 2
        stream_bw = min(machine.pcie.effective_bandwidth, gather_bw)

        # prefill: dense, streamed like FlexGen (sparsity needs per-token
        # predictions that do not exist for the whole prompt at once)
        prefill = self.gpu_prefill_time(trace.prompt_len, batch,
                                        self.resident_fraction())
        result.prefill_time = prefill
        result.add("prefill", prefill)

        predictor_bytes = self.predictor_bytes_per_layer()
        decode = 0.0
        for step, t in enumerate(trace.decode_tokens()):
            context = trace.prompt_len + step + 1
            token = 0.0
            for l in range(model.num_layers):
                active = trace.active(l, t)
                sparse_bytes = float(
                    layout.group_bytes[active].sum()) * union[l]
                sparse_bytes = min(sparse_bytes,
                                   float(layout.group_bytes.sum()))
                # stream activated neurons, then compute them (the
                # prediction -> gather -> transfer chain cannot overlap
                # with this layer's own compute)
                transfer = machine.pcie.latency + sparse_bytes / stream_bw
                compute = machine.gpu.matmul_time(sparse_bytes, batch,
                                                  scattered=True)
                predictor = machine.gpu.matmul_time(predictor_bytes, batch)
                projection = machine.gpu.matmul_time(
                    model.dense_bytes_per_layer, batch)
                token += transfer + compute + predictor + projection
                result.add("communication", transfer)
                result.add("fc", compute)
                result.add("predictor", predictor)
                result.add("projection", projection)
            attn = self.gpu_attention_time(context, batch)
            token += attn
            result.add("attention", attn)
            decode += token
        result.decode_time = decode
        result.metadata["predictor_bytes_total"] = (
            predictor_bytes * model.num_layers)
        return result
