"""Deja-Vu-style sparsity-aware offloading baseline (§II-C, §V-A2).

Deja Vu predicts each layer's activated neurons with per-layer MLP
predictors and computes only those.  The paper adapts it to a single
consumer GPU: because the activated set is dynamic, *it cannot be
pre-loaded* — every predicted neuron's weights stream from host memory
each step (§II-C), so PCIe remains the bottleneck even though sparsity
shrinks the byte count.

Modelled costs per decode step and layer:

* gather + stream of the predicted activated neurons: scattered multi-KB
  rows are first gathered by the CPU (host-bus read + write) and then
  DMA-ed, so the effective rate is the min of the pinned link and half the
  host memory bus;
* the MLP predictor itself: a dense two-layer MLP per transformer layer on
  the GPU — the ~18 % compute overhead of Fig. 12a;
* dense projection compute on the GPU (resident, priority allocation);
* attention on the GPU over a GPU-resident KV cache.

Prediction quality is taken from the trace's ground truth inflated by the
batch-union factor — generous to Deja Vu, which keeps the comparison
conservative.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.result import RunResult
from ..sparsity import ActivationTrace
from .base import OffloadingSystem, gather_stream_bandwidth

#: MLP predictor: hidden -> rank -> neurons, rank = hidden // 8 (Deja Vu)
PREDICTOR_RANK_DIVISOR = 8


@dataclasses.dataclass(frozen=True)
class DejaVuTokenCost:
    """Per-layer component breakdown of one Deja Vu decode token.

    ``total`` accumulates the components in the exact per-layer order the
    offline loop uses (transfer + compute + predictor + projection per
    layer, then attention), so offline passes and steppable serving
    backends charge bit-identical step latencies.
    """

    transfers: list[float]
    computes: list[float]
    predictors: list[float]
    projections: list[float]
    attention: float
    total: float


class DejaVu(OffloadingSystem):
    """Contextual-sparsity offloading with MLP predictors."""

    name = "Deja Vu"

    def predictor_bytes_per_layer(self) -> int:
        """FP16 weights of one layer's two MLP predictors (QKV + MLP)."""
        model = self.model
        rank = max(1, model.hidden_size // PREDICTOR_RANK_DIVISOR)
        attn = model.hidden_size * rank + rank * model.hidden_size
        mlp = model.hidden_size * rank + rank * model.ffn_size
        return (attn + mlp) * 2

    def token_cost(
        self,
        trace: ActivationTrace,
        t: int,
        context: int,
        batch: int,
        union: np.ndarray,
    ) -> DejaVuTokenCost:
        """The steppable core: decode ground-truth token ``t``.

        ``t`` indexes the trace's token axis (a decode token row);
        ``union`` is the per-layer batch-union column for ``batch``
        (hoisted by callers — it is constant per batch size).  Pure cost
        query; both the offline ``run()`` loop and the serving backend's
        per-iteration charging call exactly this.
        """
        model = self.model
        machine = self.machine
        layout = trace.layout
        stream_bw = gather_stream_bandwidth(machine)
        predictor_bytes = self.predictor_bytes_per_layer()
        transfers: list[float] = []
        computes: list[float] = []
        predictors: list[float] = []
        projections: list[float] = []
        token = 0.0
        for l in range(model.num_layers):
            active = trace.active(l, t)
            sparse_bytes = float(layout.group_bytes[active].sum()) * union[l]
            sparse_bytes = min(sparse_bytes, float(layout.group_bytes.sum()))
            # stream activated neurons, then compute them (the
            # prediction -> gather -> transfer chain cannot overlap
            # with this layer's own compute)
            transfer = machine.pcie.latency + sparse_bytes / stream_bw
            compute = machine.gpu.matmul_time(
                sparse_bytes, batch, scattered=True
            )
            predictor = machine.gpu.matmul_time(predictor_bytes, batch)
            projection = machine.gpu.matmul_time(
                model.dense_bytes_per_layer, batch
            )
            token += transfer + compute + predictor + projection
            transfers.append(transfer)
            computes.append(compute)
            predictors.append(predictor)
            projections.append(projection)
        attn = self.gpu_attention_time(context, batch)
        token += attn
        return DejaVuTokenCost(
            transfers=transfers,
            computes=computes,
            predictors=predictors,
            projections=projections,
            attention=attn,
            total=token,
        )

    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        model = self.model
        result = self.make_result(batch, trace)
        union = self.union_factors(trace, batch)

        # prefill: dense, streamed like FlexGen (sparsity needs per-token
        # predictions that do not exist for the whole prompt at once)
        prefill = self.gpu_prefill_time(trace.prompt_len, batch,
                                        self.resident_fraction())
        result.prefill_time = prefill
        result.add("prefill", prefill)

        decode = 0.0
        for step, t in enumerate(trace.decode_tokens()):
            context = trace.prompt_len + step + 1
            cost = self.token_cost(trace, t, context, batch, union)
            for l in range(model.num_layers):
                result.add("communication", cost.transfers[l])
                result.add("fc", cost.computes[l])
                result.add("predictor", cost.predictors[l])
                result.add("projection", cost.projections[l])
            result.add("attention", cost.attention)
            decode += cost.total
        result.decode_time = decode
        result.metadata["predictor_bytes_total"] = (
            self.predictor_bytes_per_layer() * model.num_layers
        )
        return result
