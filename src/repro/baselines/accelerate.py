"""HuggingFace-Accelerate-style offloading baseline (§II-C, §V-A2).

Accelerate's ``device_map`` offloading was designed for training-style
workloads: modules whose weights live in host memory are copied to the GPU
*synchronously* when their forward hook fires, from pageable buffers, with
no prefetch overlap, and copied out again.  For a model that exceeds GPU
memory this means essentially the whole weight set crosses PCIe every
decode step at pageable-copy efficiency, plus a per-module dispatch cost —
which is why the paper measures it far below even FlexGen.

Calibration notes: ``resident_fraction`` is 0 (Accelerate's auto device map
leaves the transformer blocks of an over-sized model on the host) and the
pageable link efficiency is the 40 % staging-copy figure from
:func:`repro.hardware.links.pcie4_x16`, further halved by the synchronous
alloc-copy-free cycle Accelerate performs per module.
"""

from __future__ import annotations

from ..core.result import RunResult
from ..hardware.links import pcie4_x16
from ..sparsity import ActivationTrace
from .base import OffloadingSystem

#: synchronous per-transformer-layer dispatch cost (hooks, allocation)
DISPATCH_OVERHEAD = 1.5e-3
#: extra derating of the pageable link for the alloc-copy-free cycle
STAGING_FACTOR = 0.5


class HuggingfaceAccelerate(OffloadingSystem):
    """Framework-default synchronous offloading."""

    name = "Huggingface Accelerate"

    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        model = self.model
        result = self.make_result(batch, trace)
        link = pcie4_x16(pinned=False)

        # prefill: same synchronous streaming, no overlap
        prefill = 0.0
        for _ in range(model.num_layers):
            prefill += (link.transfer_time(model.layer_bytes) / STAGING_FACTOR)
            prefill += self.machine.gpu.prefill_time(
                model.layer_bytes, trace.prompt_len, batch
            )
            prefill += DISPATCH_OVERHEAD
        result.prefill_time = prefill
        result.add("prefill", prefill)

        # decode: every layer's weights stream in, compute, stream context
        decode = 0.0
        for step in range(trace.n_decode_tokens):
            context = trace.prompt_len + step + 1
            token = 0.0
            for _ in range(model.num_layers):
                transfer = (
                    link.transfer_time(model.layer_bytes) / STAGING_FACTOR
                )
                compute = self.machine.gpu.matmul_time(
                    model.layer_bytes, batch
                )
                token += transfer + compute + DISPATCH_OVERHEAD
                result.add("communication", transfer)
                result.add("fc", compute)
                result.add("others", DISPATCH_OVERHEAD)
            attn = self.gpu_attention_time(context, batch)
            token += attn
            result.add("attention", attn)
            decode += token
        result.decode_time = decode
        return result
