"""TensorRT-LLM reference: 5x A100 tensor parallelism (paper §V-F).

The high-performance (and high-budget: ~$50 000 vs Hermes' ~$2 500)
comparison point.  Weights are sharded tensor-parallel across ``num_gpus``
A100-40GB-SXM4 GPUs connected by NVLink; each decode step reads the local
weight shard at HBM bandwidth and pays two all-reduces per layer.
"""

from __future__ import annotations

import dataclasses

from ..core.result import RunResult
from ..hardware import A100_40GB, GPUSpec
from ..models import ModelSpec
from ..sparsity import ActivationTrace

#: NVLink3 all-reduce effective bandwidth per GPU pair direction
NVLINK_BANDWIDTH = 300e9
#: collective launch latency per all-reduce
ALLREDUCE_LATENCY = 12e-6


@dataclasses.dataclass(frozen=True)
class TensorRTLLM:
    """Tensor-parallel dense serving on server GPUs."""

    model: ModelSpec
    num_gpus: int = 5
    gpu: GPUSpec = A100_40GB

    name = "TensorRT-LLM"

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        need = self.model.total_weight_bytes
        have = self.num_gpus * self.gpu.memory_bytes
        if need > have:
            raise ValueError(
                f"{self.model.name} needs {need / 2**30:.0f} GiB but "
                f"{self.num_gpus}x {self.gpu.name} provide "
                f"{have / 2**30:.0f} GiB")

    def _allreduce_time(self, batch: int) -> float:
        """Ring all-reduce of one hidden-sized activation tensor."""
        payload = self.model.hidden_size * 2 * batch
        ring_factor = 2.0 * (self.num_gpus - 1) / self.num_gpus
        return ALLREDUCE_LATENCY + payload * ring_factor / NVLINK_BANDWIDTH

    def layer_costs(
        self, context: int, batch: int
    ) -> tuple[float, float, float]:
        """One decode layer's ``(fc, communication, attention)`` costs.

        The steppable core: each GPU reads its local weight shard at HBM
        bandwidth, pays two all-reduces, and attends over its slice of
        the KV cache.  Pure function of (context, batch); the offline
        ``run()`` loop and the dense serving backend charge exactly this.
        """
        model = self.model
        shard = model.layer_bytes / self.num_gpus
        t_fc = self.gpu.matmul_time(shard, batch)
        t_comm = 2 * self._allreduce_time(batch)
        kv_bytes = 2 * model.kv_dim * 2 * context * batch
        t_attn = self.gpu.attention_time(kv_bytes / self.num_gpus)
        return t_fc, t_comm, t_attn

    def decode_token_cost(self, context: int, batch: int) -> float:
        """One decode token across all layers (critical-path seconds)."""
        token = 0.0
        for _ in range(self.model.num_layers):
            t_fc, t_comm, t_attn = self.layer_costs(context, batch)
            token += t_fc + t_comm + t_attn
        return token

    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        model = self.model
        result = RunResult(
            system=self.name,
            model=model.name,
            batch=batch,
            prefill_time=1e-12,
            decode_time=1e-12,
            n_decode_tokens=max(1, trace.n_decode_tokens),
        )

        # prefill: compute-bound dense GEMM across all GPUs
        shard = model.layer_bytes / self.num_gpus
        prefill = 0.0
        for _ in range(model.num_layers):
            prefill += self.gpu.prefill_time(shard, trace.prompt_len, batch)
            prefill += 2 * self._allreduce_time(batch) * trace.prompt_len
        result.prefill_time = prefill
        result.add("prefill", prefill)

        decode = 0.0
        for step in range(trace.n_decode_tokens):
            context = trace.prompt_len + step + 1
            token = 0.0
            for _ in range(model.num_layers):
                t_fc, t_comm, t_attn = self.layer_costs(context, batch)
                token += t_fc + t_comm + t_attn
                result.add("fc", t_fc)
                result.add("communication", t_comm)
                result.add("attention", t_attn)
            decode += token
        result.decode_time = decode
        return result
