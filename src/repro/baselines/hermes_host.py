"""Hermes-host: hot/cold partition with CPU-side cold compute (§V-A2).

The PowerInfer-style ablation of the NDP design: identical hot/cold neuron
partition, predictor and online adjustment as Hermes, but cold neurons are
*computed by the host CPU* out of commodity DIMMs instead of by NDP units
inside them.  The cold path is therefore bounded by the host memory bus
(89.6 GB/s on the reference i9-13900K) rather than by the DIMM-internal
aggregate (~0.8 TB/s for 8 DIMMs) — the gap that motivates NDP-DIMMs.

The KV cache stays on the GPU and attention runs there (PowerInfer's
configuration [53], which the paper follows for this baseline).
"""

from __future__ import annotations

import numpy as np

from ..core.engine import HermesConfig, batch_union_factor
from ..core.mapper import NeuronMapper
from ..core.partition import PartitionCosts, solve_partition
from ..core.predictor import ActivationPredictor, PredictorConfig
from ..core.result import RunResult
from ..sparsity import ActivationTrace
from .base import OffloadingSystem


class HermesHost(OffloadingSystem):
    """Hot neurons on the GPU, cold neurons on the host CPU."""

    name = "Hermes-host"
    #: CPU<->GPU coordination cost per hybrid FC block: kernel handoff,
    #: activation staging and completion polling (PowerInfer-class hybrid
    #: executors measure a few hundred microseconds per layer block).
    hybrid_sync = 250e-6

    def __init__(
        self, machine, model, config: HermesConfig | None = None
    ) -> None:
        super().__init__(machine, model)
        self.config = config or HermesConfig()

    # ------------------------------------------------------------------
    @property
    def gpu_hot_budget(self) -> int:
        """GPU bytes for hot neurons after dense weights, embeddings and a
        KV/workspace reserve (the KV cache lives on the GPU here)."""
        model = self.model
        static = (model.dense_bytes_per_layer * model.num_layers
                  + model.embedding_bytes)
        budget = (self.machine.gpu.memory_bytes - static
                  - 2 * self.config.gpu_reserve_bytes)
        if budget <= 0:
            raise ValueError(
                f"{self.machine.gpu.name} cannot hold the dense weights of "
                f"{model.name}")
        return budget

    def run(self, trace: ActivationTrace, batch: int = 1) -> RunResult:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        cfg = self.config
        model = self.model
        machine = self.machine
        layout = trace.layout
        result = self.make_result(batch, trace)

        freqs = [trace.prefill_frequencies(l) for l in range(trace.num_layers)]
        costs = PartitionCosts(
            gpu_seconds_per_byte=1.0 / machine.gpu.effective_bandwidth,
            dimm_seconds_per_byte=1.0 / machine.host_bandwidth,
            sync_seconds=machine.sync_latency,
            num_dimms=1,  # the host CPU is a single cold executor
            gpu_budget_bytes=self.gpu_hot_budget,
            dimm_capacity_bytes=machine.dimm_capacity_total,
        )
        partition = solve_partition(
            freqs,
            layout,
            costs,
            strategy=cfg.partition_strategy,
            seed=trace.seed,
        )
        mapper = NeuronMapper(layout, costs.gpu_budget_bytes)
        mapper.initialize(partition)
        predictor = ActivationPredictor(layout, PredictorConfig(
            use_token_prediction=cfg.token_prediction,
            use_layer_prediction=cfg.layer_prediction,
            hot_threshold=cfg.hot_threshold))
        predictor.initialize(trace)
        union = np.array([batch_union_factor(freqs[l], batch)
                          for l in range(model.num_layers)])

        prefill = self.gpu_prefill_time(
            trace.prompt_len, batch, self.resident_fraction()
        )
        hot_load = machine.pcie.transfer_time(partition.gpu_bytes(layout))
        result.prefill_time = prefill + hot_load
        result.add("prefill", prefill)
        result.add("communication", hot_load)

        decode = 0.0
        for step, t in enumerate(trace.decode_tokens()):
            context = trace.prompt_len + step + 1
            token = 0.0
            proj_window_pcie = 0.0
            prev_actual: np.ndarray | None = None
            for l in range(model.num_layers):
                actual = trace.active(l, t)
                predicted = predictor.predict(l, prev_actual)
                resident = mapper.resident[l]

                fc_time = 0.0
                for block in (layout.attn_slice, layout.mlp_slice):
                    pred_b = np.zeros_like(predicted)
                    pred_b[block] = predicted[block]
                    actual_b = np.zeros_like(actual)
                    actual_b[block] = actual[block]
                    gpu_bytes = (
                        layout.group_bytes[pred_b & resident].sum() * union[l]
                    )
                    # false negatives are computed late by the CPU
                    cold_mask = (pred_b & ~resident) | (actual_b & ~pred_b)
                    cold_bytes = (
                        layout.group_bytes[cold_mask].sum() * union[l]
                    )
                    t_gpu = machine.gpu.matmul_time(
                        float(gpu_bytes), batch, scattered=True
                    )
                    t_cpu = machine.host.gemv_time(float(cold_bytes), batch)
                    # GPU and CPU halves run concurrently; merge on GPU
                    fc_time += max(t_gpu, t_cpu) + self.hybrid_sync
                result.add("fc", fc_time)

                kv_bytes = 2 * model.kv_dim * 2 * context * batch
                t_attn = machine.gpu.attention_time(kv_bytes)
                result.add("attention", t_attn)

                t_proj = machine.gpu.matmul_time(
                    model.dense_bytes_per_layer, batch
                )
                result.add("projection", t_proj)
                proj_window_pcie += t_proj

                t_pred = predictor.predictor_overhead_seconds(l)
                result.add("predictor", t_pred)
                token += fc_time + t_attn + t_proj + t_pred

                if cfg.online_adjustment:
                    budget = int(
                        proj_window_pcie * machine.pcie.effective_bandwidth
                    )
                    adjust = mapper.adjust(
                        l,
                        predictor.states[l],
                        hot_threshold=cfg.hot_threshold,
                        max_bytes=budget,
                    )
                    proj_window_pcie = max(
                        0.0, proj_window_pcie - adjust.bytes_in
                        / machine.pcie.effective_bandwidth)

                predictor.observe(l, actual, predicted)
                prev_actual = actual
            decode += token
        result.decode_time = decode
        result.metadata["predictor_accuracy"] = (
            predictor.stats.accuracy if predictor.stats.total else None
        )
        return result
