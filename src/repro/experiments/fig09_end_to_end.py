"""Figure 9: end-to-end comparison with offloading systems (OPT family).

Tokens/s at batch 1 for HuggingFace Accelerate, FlexGen, Deja Vu,
Hermes-host and Hermes on OPT-13B/30B/66B.  Paper headline: Hermes averages
578x over Accelerate, 247x over FlexGen; Deja Vu manages only ~2.1x over
FlexGen because cold neurons still cross PCIe.
"""

from __future__ import annotations

from ..baselines import DejaVu, FlexGen, HermesHost, HuggingfaceAccelerate
from ..core import HermesSystem
from ..models import get_model
from .common import (
    ExperimentResult,
    default_machine,
    geometric_mean,
    trace_for,
)

MODELS = ("OPT-13B", "OPT-30B", "OPT-66B")
#: paper Fig. 9 tokens/s, batch 1
PAPER = {
    "OPT-13B": {"Huggingface Accelerate": 0.16, "FlexGen": 0.46,
                "Deja Vu": 1.37, "Hermes-host": 9.07, "Hermes": 135.64},
    "OPT-30B": {"Huggingface Accelerate": 0.11, "FlexGen": 0.20,
                "Deja Vu": 0.34, "Hermes-host": None, "Hermes": 46.16},
    "OPT-66B": {"Huggingface Accelerate": 0.04, "FlexGen": 0.16,
                "Deja Vu": 0.34, "Hermes-host": 4.24, "Hermes": 20.37},
}
SYSTEMS = (
    "Huggingface Accelerate", "FlexGen", "Deja Vu", "Hermes-host", "Hermes"
)


def build_system(name: str, machine, model):
    factories = {
        "Huggingface Accelerate": HuggingfaceAccelerate,
        "FlexGen": FlexGen,
        "Deja Vu": DejaVu,
        "Hermes-host": HermesHost,
        "Hermes": HermesSystem,
    }
    return factories[name](machine, model)


def run(quick: bool = False) -> ExperimentResult:
    machine = default_machine()
    rows = []
    speedups_flexgen, speedups_dejavu = [], []
    for model_name in MODELS:
        model = get_model(model_name)
        trace = trace_for(model_name, quick=quick)
        results = {}
        for system_name in SYSTEMS:
            system = build_system(system_name, machine, model)
            results[system_name] = system.run(trace, batch=1)
        for system_name in SYSTEMS:
            measured = results[system_name].tokens_per_second
            rows.append([model_name, system_name, round(measured, 3),
                         PAPER[model_name][system_name]])
        hermes = results["Hermes"].tokens_per_second
        speedups_flexgen.append(hermes / results["FlexGen"].tokens_per_second)
        speedups_dejavu.append(hermes / results["Deja Vu"].tokens_per_second)
    notes = [
        "measured Hermes speedup (geomean): "
        f"{geometric_mean(speedups_flexgen):.1f}x over FlexGen, "
        f"{geometric_mean(speedups_dejavu):.1f}x over Deja Vu",
        "paper: 247x over FlexGen, and Deja Vu only ~2.1x over FlexGen",
    ]
    return ExperimentResult(
        name="fig09",
        description="end-to-end tokens/s vs offloading systems (batch 1)",
        headers=["model", "system", "tokens/s", "paper tokens/s"],
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
