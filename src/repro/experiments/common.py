"""Shared harness for the paper-reproduction experiments.

Every ``figXX`` module exposes ``run(quick=False) -> ExperimentResult``.
``quick`` shortens the decode window so the pytest-benchmark targets finish
fast; full runs use the paper's 128-token input/output configuration
(§V-A4).  Traces are cached per (model, shape, seed) because generating a
70B-scale trace dominates wall time.
"""

from __future__ import annotations

import dataclasses
import functools
import math

from ..hardware import Machine
from ..models import ModelSpec, get_model
from ..sparsity import ActivationTrace, TraceConfig, generate_trace

#: the paper keeps both sequence lengths at 128 (§V-A4)
PROMPT_LEN = 128
DECODE_LEN = 128
QUICK_DECODE_LEN = 32
DEFAULT_SEED = 7

#: tracking granularity per model scale: fine for small models, coarser for
#: the 40B-70B class so traces stay in the tens of MB
GRANULARITY = {
    "tiny-test": 4,
    "LLaMA-7B": 32,
    "LLaMA2-7B": 32,
    "OPT-13B": 32,
    "LLaMA-13B": 32,
    "LLaMA2-13B": 32,
    "OPT-30B": 64,
    "Falcon-40B": 64,
    "OPT-66B": 64,
    "LLaMA2-70B": 64,
}


def granularity_for(model: ModelSpec) -> int:
    return GRANULARITY.get(model.name, 64)


#: A 70B-scale trace runs to tens of MB (and its decode fast-path stack
#: doubles that), so the cache holds just a few entries — enough for one
#: experiment's model list plus the quick/full variants of the model a
#: test suite hammers, without pinning every model ever touched.
TRACE_CACHE_SIZE = 4


@functools.lru_cache(maxsize=TRACE_CACHE_SIZE)
def _cached_trace(
    model_name: str,
    prompt_len: int,
    decode_len: int,
    granularity: int,
    seed: int,
) -> ActivationTrace:
    model = get_model(model_name)
    config = TraceConfig(
        prompt_len=prompt_len, decode_len=decode_len, granularity=granularity
    )
    return generate_trace(model, config, seed=seed)


def clear_trace_cache() -> None:
    """Drop every cached trace.

    The bench harness calls this between timed runs so a measurement
    neither reuses a predecessor's working set nor charges trace
    generation to the wrong phase; long-lived driver processes can call
    it to release 70B-scale traces eagerly.
    """
    _cached_trace.cache_clear()


def trace_for(
    model_name: str, *, quick: bool = False, seed: int = DEFAULT_SEED
) -> ActivationTrace:
    """The standard experiment trace for one model (cached)."""
    model = get_model(model_name)
    decode = QUICK_DECODE_LEN if quick else DECODE_LEN
    return _cached_trace(
        model.name, PROMPT_LEN, decode, granularity_for(model), seed
    )


def default_machine() -> Machine:
    """The paper's evaluation platform: RTX 4090 + 8 NDP-DIMMs (§V-A1)."""
    return Machine()


@dataclasses.dataclass
class ExperimentResult:
    """A reproduced table/figure: headers + rows + free-form notes."""

    name: str
    description: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = dataclasses.field(default_factory=list)

    def to_text(self) -> str:
        """Render as an aligned text table (the benchmark harness output)."""
        def fmt(cell) -> str:
            if cell is None:
                return "N.P."
            if isinstance(cell, float) and math.isnan(cell):
                return "—"  # no data (e.g. a class with no completions)
            if isinstance(cell, float):
                return f"{cell:.3g}" if abs(cell) < 1000 else f"{cell:.0f}"
            return str(cell)

        table = [self.headers] + [[fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in table) for i in range(len(self.headers))
        ]
        lines = [f"== {self.name}: {self.description} =="]
        for r, row in enumerate(table):
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
            if r == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable form (the CLI's ``--json``).

        Cells pass through verbatim except ``nan``, which becomes
        ``null`` — JSON has no ``NaN`` and downstream parsers reject
        the Python extension spelling.  ``None`` cells (rendered
        "N.P." in the table) stay ``null``; the table remains the
        place where the two are distinguished.
        """
        def cell(c):
            if isinstance(c, float) and math.isnan(c):
                return None
            return c

        return {
            "name": self.name,
            "description": self.description,
            "headers": list(self.headers),
            "rows": [[cell(c) for c in row] for row in self.rows],
            "notes": list(self.notes),
        }

    def column(self, header: str) -> list:
        """Extract one column by header name (used by assertions)."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, the paper's averaging convention for speedups."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric_mean requires positive values")
        product *= v
    return product ** (1.0 / len(values))
