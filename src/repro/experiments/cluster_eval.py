"""Cluster scenario evaluation: SLO attainment across routers.

Beyond the paper: runs declarative scenario specs (``scenarios/*.json`` /
``*.toml``) through the cluster simulator and reports, per (scenario,
router, priority class): completed requests, cluster token throughput,
P50/P99 TTFT, P50/P99 TBT, TTFT/TBT/joint SLO attainment, preemption
count, Jain fairness across tenants, and mean per-machine DIMM-pool
utilization.

Two entry forms:

* ``python -m repro.experiments cluster`` — the bundled tiny scenarios
  swept across *every* router (the scenario's own router plus the three
  others), so routing policies are directly comparable per workload;
* ``python -m repro.experiments cluster --scenario <file>`` — one spec,
  exactly as written (its own router only): the "new workload without a
  code change" path.

Expected shape: preemptive scenarios hold interactive-class attainment
near 1.0 while the batch class absorbs the deadline pressure (its E2E
tail and the preemption count grow); session-affinity trades global
balance (lower fairness across machines) for per-tenant locality.
"""

from __future__ import annotations

import dataclasses
import functools
import pathlib

from ..scenarios import Scenario, load_scenario, scenario_trace
from ..telemetry import scenario_sinks
from .common import ExperimentResult
from .runner import run_grid

#: repo-root scenarios/ directory the bundled specs live in
SCENARIO_DIR = pathlib.Path(__file__).resolve().parents[3] / "scenarios"

#: bundled specs swept by the default (no ``--scenario``) run
TINY_SCENARIOS = ("mixed_slo_tiny.json", "p2c_burst_storm_tiny.json")
FULL_EXTRA_SCENARIOS = ("mixed_slo_opt13b.json",)

ROUTER_SWEEP = (
    "round-robin",
    "least-loaded",
    "session-affinity",
    "power-of-two",
)


def resolve_scenario(spec: str | pathlib.Path) -> pathlib.Path:
    """A scenario path: as given, or looked up under ``scenarios/``."""
    path = pathlib.Path(spec)
    if path.exists():
        return path
    for candidate in (
        SCENARIO_DIR / path.name,
        SCENARIO_DIR / f"{path.name}.json",
        SCENARIO_DIR / f"{path.name}.toml",
    ):
        if candidate.exists():
            return candidate
    raise FileNotFoundError(
        f"no scenario spec {spec!r} (looked in . and {SCENARIO_DIR})"
    )


@functools.lru_cache(maxsize=4)
def _trace(model: str, granularity: int, seed: int):
    """Per-process trace cache (deterministic, so workers rebuild at
    most one trace per scenario model)."""
    return scenario_trace(model, granularity, seed)


def _scenario_rows(
    scenario: Scenario,
    router: str | None,
    trace_out: str | None = None,
) -> tuple[list[list], list[str]]:
    """Run one (scenario, router) cell; one output row per class.

    Returns ``(rows, written)`` where ``written`` lists any telemetry
    output paths produced (scenario ``telemetry:`` section and/or the
    CLI ``--trace-out`` override).
    """
    if router is not None:
        scenario = dataclasses.replace(
            scenario,
            config=dataclasses.replace(scenario.config, router=router),
        )
    trace = _trace(scenario.model, scenario.granularity, scenario.trace_seed)
    sinks = scenario_sinks(
        scenario.telemetry, trace_out=trace_out, source=scenario.name
    )
    report = scenario.run(trace, tracer=sinks.tracer)
    written = sinks.close()
    rows = []
    for name in report.class_names:
        done = [r for r in report.class_records(name) if r.finished]
        if not done:
            continue
        attainment = report.slo_attainment(name)
        rows.append([
            scenario.name,
            report.router,
            name,
            len(done),
            report.tokens_per_second,
            report.class_ttft_percentile(name, 50) * 1e3,
            report.class_ttft_percentile(name, 99) * 1e3,
            report.class_tbt_percentile(name, 50) * 1e3,
            report.class_tbt_percentile(name, 99) * 1e3,
            report.class_queue_wait_percentile(name, 50) * 1e3,
            report.class_queue_wait_percentile(name, 99) * 1e3,
            attainment["ttft"],
            attainment["tbt"],
            attainment["joint"],
            report.preemptions,
            report.fairness_index(),
            sum(report.machine_dimm_utilization)
            / max(1, report.num_machines),
        ])
    return rows, written


def _point(task: tuple[str, str | None]) -> list[list]:
    """One (scenario path, router override) cell of the sweep."""
    path, router = task
    rows, _ = _scenario_rows(load_scenario(path), router)
    return rows


HEADERS = [
    "scenario",
    "router",
    "class",
    "done",
    "tok/s",
    "TTFT p50 (ms)",
    "TTFT p99 (ms)",
    "TBT p50 (ms)",
    "TBT p99 (ms)",
    "QW p50 (ms)",
    "QW p99 (ms)",
    "SLO ttft",
    "SLO tbt",
    "SLO joint",
    "preempt",
    "fairness",
    "DIMM util",
]

NOTES = [
    "SLO columns are the fraction of ALL the class's requests meeting "
    "the deadline (joint = both TTFT and TBT; requests stranded by an "
    "outage count as missed); QW is the arrival -> prefill-start "
    "queue wait",
    "fairness is Jain's index over per-tenant decode service rates; "
    "preempt counts low-priority evictions for deadline-threatened "
    "prefills",
]


def run(
    quick: bool = False,
    jobs: int | None = None,
    scenario: str | None = None,
    trace_out: str | None = None,
) -> ExperimentResult:
    notes = list(NOTES)
    if scenario is not None:
        path = resolve_scenario(scenario)
        rows, written = _scenario_rows(
            load_scenario(path), None, trace_out=trace_out
        )
        if written:
            notes.append(
                "telemetry written: " + ", ".join(written)
                + " (tail streams with `python -m repro.experiments "
                "watch <file>`)"
            )
        description = f"scenario {path.name} as specified"
    else:
        if trace_out is not None:
            raise ValueError(
                "--trace-out needs a single run: pass --scenario too"
            )
        names = TINY_SCENARIOS
        if not quick:
            names = names + FULL_EXTRA_SCENARIOS
        points: list[tuple[str, str | None]] = []
        for name in names:
            path = str(resolve_scenario(name))
            points.extend((path, router) for router in ROUTER_SWEEP)
        rows = [
            row for point in run_grid(_point, points, jobs=jobs)
            for row in point
        ]
        description = "bundled scenarios x router sweep"
    return ExperimentResult(
        name="cluster",
        description=description,
        headers=HEADERS,
        rows=rows,
        notes=notes,
    )
