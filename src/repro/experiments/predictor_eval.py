"""Predictor evaluation (paper §IV-C1 claims).

* accuracy ~98 % with <1 MB of state — the LLaMA-7B neuron state table
  costs exactly 232 KB (4 bits x 32 layers x 14.8K neurons);
* against Deja Vu's MLP predictors: ~2 GB of weights and 10-25 % of
  LLaMA-7B inference runtime.
"""

from __future__ import annotations

from ..baselines import DejaVu
from ..core import ActivationPredictor, PredictorConfig
from ..models import get_model
from .common import ExperimentResult, default_machine, trace_for

MODELS = ("LLaMA-7B", "OPT-13B", "LLaMA2-70B")
PAPER_ACCURACY = 0.98
PAPER_STATE_TABLE_KB = {"LLaMA-7B": 232}


def evaluate(model_name: str, quick: bool = False) -> dict:
    """Replay a trace through the predictor and collect its statistics."""
    trace = trace_for(model_name, quick=quick)
    predictor = ActivationPredictor(trace.layout, PredictorConfig())
    predictor.initialize(trace)
    for t in trace.decode_tokens():
        prev = None
        for l in range(trace.num_layers):
            actual = trace.active(l, t)
            predicted = predictor.predict(l, prev)
            predictor.observe(l, actual, predicted)
            prev = actual
    stats = predictor.stats
    table_kb = predictor.state_table_bytes() / 1024
    corr_kb = (predictor.correlation.table_bytes() / 1024
               if predictor.correlation else 0.0)
    return {
        "accuracy": stats.accuracy,
        "recall": stats.recall,
        "precision": stats.precision,
        "state_table_kb": table_kb,
        "correlation_table_kb": corr_kb,
    }


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    for model_name in MODELS:
        stats = evaluate(model_name, quick=quick)
        rows.append([
            model_name,
            round(stats["accuracy"], 3),
            round(stats["recall"], 3),
            round(stats["precision"], 3),
            round(stats["state_table_kb"], 1),
            PAPER_STATE_TABLE_KB.get(model_name, ""),
        ])
    # contrast with Deja Vu's MLP predictors on LLaMA-7B-class geometry
    machine = default_machine()
    dejavu = DejaVu(machine, get_model("LLaMA-7B"))
    mlp_gb = (
        dejavu.predictor_bytes_per_layer() * dejavu.model.num_layers / 2**30
    )
    return ExperimentResult(
        name="predictor",
        description="lightweight predictor accuracy and footprint",
        headers=["model", "accuracy", "recall", "precision",
                 "state table KB", "paper KB"],
        rows=rows,
        notes=[
            f"paper: ~{PAPER_ACCURACY:.0%} accuracy with <1 MB of state "
            "(the synthetic trace's resampling noise bounds ours slightly "
            "lower; see EXPERIMENTS.md)",
            f"Deja Vu MLP predictors for LLaMA-7B: {mlp_gb:.2f} GiB of "
            "weights (paper: ~2 GB, 10-25% runtime overhead)",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
