"""Process-pool sweep executor for the experiment grids.

The figure/serving sweeps evaluate many independent grid points (a model x
batch cell, an arrival-rate x policy cell, ...); each point re-runs the
simulator from scratch, so the grid fans out over worker processes with no
shared state.  Design notes:

* **Spawn-safe** — workers are created with the ``spawn`` start method
  (identical behaviour on Linux/macOS/Windows, and no forked locks); the
  point functions are module-level and picklable.
* **Deterministic ordering** — results come back in submission order
  (``ProcessPoolExecutor.map``), so a parallel run assembles the exact
  same rows as a serial one.
* **Per-worker trace caching** — points are chunked contiguously, so a
  worker receives neighbouring grid points (same model) and the
  ``functools.lru_cache`` over trace generation inside each worker is hit
  instead of regenerating 70B-scale traces per point.

Worker count resolution, in priority order: the ``jobs`` argument (e.g.
the ``--jobs`` CLI flag), the ``REPRO_JOBS`` environment variable, else 1
(serial, in-process — no pool is created at all).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: environment variable consulted when ``jobs`` is not given explicitly
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from the environment (``REPRO_JOBS``), default 1."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV} must be an integer, got {raw!r}") from None
    if jobs < 1:
        raise ValueError(f"{JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


def resolve_jobs(jobs: int | None) -> int:
    """Validate an explicit ``jobs`` or fall back to the environment."""
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def run_grid(
    fn: Callable[[T], R], points: Iterable[T], *, jobs: int | None = None
) -> list[R]:
    """Evaluate ``fn`` over every grid point, preserving input order.

    With ``jobs <= 1`` (the default) everything runs serially in-process.
    With more, the points fan out over a spawn-based process pool; ``fn``
    must be a module-level (picklable) function.  Contiguous chunks go to
    each worker so per-worker caches (traces, most prominently) see
    neighbouring points.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    jobs = min(jobs, len(points)) if points else 1
    if jobs <= 1:
        return [fn(p) for p in points]
    chunksize = -(-len(points) // jobs)  # ceil: one contiguous run each
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        return list(pool.map(fn, points, chunksize=chunksize))


def flatten(rows_per_point: Sequence[Sequence[list]]) -> list[list]:
    """Concatenate per-point row lists into one table, order preserved."""
    out: list[list] = []
    for rows in rows_per_point:
        out.extend(rows)
    return out
