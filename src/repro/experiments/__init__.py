"""Experiment harness: one module per paper figure/statistic.

Each module exposes ``run(quick=False) -> ExperimentResult``; the
``ALL_EXPERIMENTS`` registry maps experiment ids to those entry points, and
``python -m repro.experiments <id>|all`` runs them from the command line.
"""

from . import (
    ablation_extras,
    backend_shootout,
    cluster_eval,
    dimmlink_eval,
    energy_eval,
    fig04_patterns,
    fig09_end_to_end,
    fig10_sparsity_ndp,
    fig11_batching,
    fig12_breakdown,
    fig13_ablation,
    fig14_dimm_scaling,
    fig15_gpus,
    fig16_dse,
    fig17_tensorrt,
    motivation,
    predictor_eval,
    serving_eval,
)
from .common import (
    ExperimentResult,
    clear_trace_cache,
    default_machine,
    geometric_mean,
    trace_for,
)
from .runner import default_jobs, run_grid

ALL_EXPERIMENTS = {
    "fig04": fig04_patterns.run,
    "motivation": motivation.run,
    "fig09": fig09_end_to_end.run,
    "fig10": fig10_sparsity_ndp.run,
    "fig11": fig11_batching.run,
    "fig12": fig12_breakdown.run,
    "fig13": fig13_ablation.run,
    "fig14": fig14_dimm_scaling.run,
    "fig15": fig15_gpus.run,
    "fig16": fig16_dse.run,
    "fig17": fig17_tensorrt.run,
    "predictor": predictor_eval.run,
    "dimmlink": dimmlink_eval.run,
    "ablation-extras": ablation_extras.run,
    "energy": energy_eval.run,
    "serving": serving_eval.run,
    "cluster": cluster_eval.run,
    "backend_shootout": backend_shootout.run,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "clear_trace_cache",
    "default_jobs",
    "default_machine",
    "geometric_mean",
    "run_grid",
    "trace_for",
]
