"""Online serving evaluation: arrival rate vs. latency across policies.

Beyond the paper: the paper evaluates Hermes one generation pass at a time;
this experiment lifts the engine into the production setting the system
targets — open-loop Poisson traffic served with continuous batching — and
sweeps the arrival rate from underload to saturation for each batching
policy.  Reported per (rate, policy): completed requests, cluster token
throughput, P50/P99 time-to-first-token, P50/P99 end-to-end latency,
time-weighted mean batch size, and NDP-DIMM pool utilization.

Expected shape: at low rate every policy matches (the machine is idle most
of the time); near saturation continuous batching sustains several times
the throughput of the request-at-a-time baseline while keeping TTFT
bounded, shortest-output-first trims mean/P50 latency at some tail cost to
long requests, and the Hermes-aware union cap trades a little peak batch
for per-step latency control.
"""

from __future__ import annotations

import functools

from ..models import get_model
from ..serving import (
    LengthDistribution,
    ServingConfig,
    ServingSimulator,
    WorkloadConfig,
    default_serving_trace,
    generate_workload,
)
from .common import ExperimentResult
from .runner import run_grid

POLICIES = ("fcfs-nobatch", "fcfs", "sjf", "hermes-union")

#: (model, trace granularity, arrival rates in req/s, workload shape)
FULL_SETTING = dict(
    model="OPT-13B", granularity=128, rates=(1.0, 4.0, 16.0),
    num_requests=32,
    prompt_lens=LengthDistribution(mean=64),
    output_lens=LengthDistribution(kind="uniform", mean=32, low=16, high=48),
)
QUICK_SETTING = dict(
    model="tiny-test", granularity=4, rates=(50.0, 2000.0),
    num_requests=32,
    prompt_lens=LengthDistribution(mean=32),
    output_lens=LengthDistribution(kind="uniform", mean=24, low=8, high=40),
)

WORKLOAD_SEED = 3


@functools.lru_cache(maxsize=2)
def _serving_trace(model: str, granularity: int):
    """Per-process serving-trace cache (trace generation is deterministic,
    so every worker reconstructs the identical trace at most once)."""
    return default_serving_trace(get_model(model), granularity=granularity)


def _point(task: tuple[float, str, bool]) -> list:
    """One (arrival rate, policy) cell of the serving sweep."""
    rate, policy, quick = task
    setting = QUICK_SETTING if quick else FULL_SETTING
    trace = _serving_trace(setting["model"], setting["granularity"])
    workload = generate_workload(
        WorkloadConfig(rate=rate,
                       num_requests=setting["num_requests"],
                       prompt_lens=setting["prompt_lens"],
                       output_lens=setting["output_lens"]),
        seed=WORKLOAD_SEED)
    simulator = ServingSimulator(
        setting["model"], policy, ServingConfig(max_batch=16), trace=trace
    )
    report = simulator.run(workload)
    return [
        rate, policy, len(report.completed),
        report.tokens_per_second,
        report.ttft_percentile(50) * 1e3,
        report.ttft_percentile(99) * 1e3,
        report.e2e_percentile(50) * 1e3,
        report.e2e_percentile(99) * 1e3,
        report.mean_batch_size,
        report.dimm_utilization,
    ]


def run(quick: bool = False, jobs: int | None = None) -> ExperimentResult:
    setting = QUICK_SETTING if quick else FULL_SETTING
    points = [(rate, policy, quick)
              for rate in setting["rates"] for policy in POLICIES]
    rows = run_grid(_point, points, jobs=jobs)
    return ExperimentResult(
        name="serving_eval",
        description="continuous-batching serving sweep on "
                    f"{setting['model']} (Poisson arrivals)",
        headers=["req/s", "policy", "done", "tok/s", "TTFT p50 (ms)",
                 "TTFT p99 (ms)", "E2E p50 (ms)", "E2E p99 (ms)",
                 "mean batch", "DIMM util"],
        rows=rows,
        notes=[
            "TTFT = arrival -> first decode-step completion (queue + "
            "prefill + first iteration)",
            "policies: fcfs-nobatch = FCFS without batching (baseline); "
            "hermes-union caps the batch via batch_union_factor",
        ],
    )
