"""Figure 4: distribution patterns of activation sparsity.

(a) Token-wise similarity vs token distance for LLaMA-13B and Falcon-40B —
adjacent tokens exceed ~90 % similarity, decaying toward a ~70 % plateau
once the distance passes ~10-25 tokens.

(b) Layer-wise correlation — the probability that a neuron fires given its
top correlated neuron in the previous layer fired exceeds 90 % for the
strongest pairs.
"""

from __future__ import annotations

import numpy as np

from ..sparsity import layer_correlation, token_similarity_curve
from .common import ExperimentResult, trace_for

PAPER_ADJACENT_SIMILARITY = 0.90
PAPER_DISTANT_SIMILARITY = 0.70
DISTANCES = (1, 2, 5, 10, 25, 50)


def run(quick: bool = False) -> ExperimentResult:
    models = ["LLaMA-13B", "Falcon-40B"]
    rows = []
    for name in models:
        trace = trace_for(name, quick=quick)
        curve = token_similarity_curve(
            trace, max_distance=max(d for d in DISTANCES
                                    if d < trace.n_decode_tokens),
            layer_stride=4)
        row = [name] + [
            round(float(curve[d]), 3) if d < len(curve) else None
            for d in DISTANCES
        ]
        # layer-wise correlation of the strongest decile of pairs
        mid = trace.num_layers // 2
        cond = layer_correlation(trace, mid)
        cond = cond[~np.isnan(cond)]
        top = np.sort(cond)[-max(1, cond.size // 10):]
        row.append(round(float(top.mean()), 3))
        rows.append(row)
    headers = (["model"] + [f"sim@d={d}" for d in DISTANCES]
               + ["top-decile layer corr"])
    return ExperimentResult(
        name="fig04",
        description="token-wise similarity & layer-wise correlation",
        headers=headers,
        rows=rows,
        notes=[
            f"paper: adjacent similarity >{PAPER_ADJACENT_SIMILARITY:.0%}, "
            f"plateau ~{PAPER_DISTANT_SIMILARITY:.0%} beyond distance 10-25",
            "paper: strongest cross-layer pairs exceed 90% conditional "
            "activation probability",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
