"""Figure 10: effectiveness of activation sparsity and the NDP design.

Tokens/s at batch 1 on LLaMA2-13B, LLaMA2-70B and Falcon-40B for
HuggingFace Accelerate, Hermes-host (cold on CPU), Hermes-base (NDP without
sparsity) and full Hermes.  Paper headline: Hermes-base averages 53.9x over
Accelerate; full Hermes adds another ~5.2x on the large models by
exploiting activation sparsity.
"""

from __future__ import annotations

from ..baselines import HermesBase, HermesHost, HuggingfaceAccelerate
from ..core import HermesSystem
from ..models import get_model
from .common import (
    ExperimentResult,
    default_machine,
    geometric_mean,
    trace_for,
)

MODELS = ("LLaMA2-13B", "LLaMA2-70B", "Falcon-40B")
#: paper Fig. 10 tokens/s, batch 1
PAPER = {
    "LLaMA2-13B": {"Huggingface Accelerate": 0.91, "Hermes-host": 11.86,
                   "Hermes-base": 30.90, "Hermes": 91.95},
    "LLaMA2-70B": {"Huggingface Accelerate": 0.04, "Hermes-host": 1.97,
                   "Hermes-base": 2.45, "Hermes": 13.75},
    "Falcon-40B": {"Huggingface Accelerate": 0.07, "Hermes-host": 5.58,
                   "Hermes-base": 4.34, "Hermes": 30.02},
}
SYSTEMS = ("Huggingface Accelerate", "Hermes-host", "Hermes-base", "Hermes")


def build_system(name: str, machine, model):
    factories = {
        "Huggingface Accelerate": HuggingfaceAccelerate,
        "Hermes-host": HermesHost,
        "Hermes-base": HermesBase,
        "Hermes": HermesSystem,
    }
    return factories[name](machine, model)


def run(quick: bool = False) -> ExperimentResult:
    machine = default_machine()
    rows = []
    base_gain, sparsity_gain = [], []
    for model_name in MODELS:
        model = get_model(model_name)
        trace = trace_for(model_name, quick=quick)
        results = {}
        for system_name in SYSTEMS:
            system = build_system(system_name, machine, model)
            results[system_name] = system.run(trace, batch=1)
            rows.append([
                model_name, system_name,
                round(results[system_name].tokens_per_second, 3),
                PAPER[model_name][system_name],
            ])
        base_gain.append(
            results["Hermes-base"].tokens_per_second
            / results["Huggingface Accelerate"].tokens_per_second)
        sparsity_gain.append(results["Hermes"].tokens_per_second
                             / results["Hermes-base"].tokens_per_second)
    notes = [
        f"measured: Hermes-base {geometric_mean(base_gain):.1f}x over "
        "Accelerate (paper 53.9x); Hermes "
        f"{geometric_mean(sparsity_gain):.1f}x over Hermes-base "
        "(paper ~5.2x on large models)",
    ]
    return ExperimentResult(
        name="fig10",
        description="activation sparsity & NDP design effectiveness",
        headers=["model", "system", "tokens/s", "paper tokens/s"],
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
