"""Figure 12: per-token latency breakdown.

(a) Deja Vu vs Hermes on OPT-13B and OPT-66B — communication (PCIe)
dominates Deja Vu at ~89 % of execution time, and its MLP predictor costs
~18 % of compute, while the Hermes predictor is <0.1 %.

(b) Hermes-base vs Hermes on Falcon-40B and LLaMA2-70B — without sparsity
the FC time explodes as batch grows because the NDP cores saturate.
"""

from __future__ import annotations

from ..baselines import DejaVu, HermesBase
from ..core import HermesSystem
from ..core.result import BREAKDOWN_KEYS
from ..models import get_model
from .common import ExperimentResult, default_machine, trace_for
from .runner import flatten, run_grid

PAIRS_A = ("OPT-13B", "OPT-66B")
PAIRS_B = ("Falcon-40B", "LLaMA2-70B")
BATCHES = (1, 4, 16)

PAPER_NOTES = [
    "paper: Deja Vu communication ~89% of runtime; Deja Vu predictor "
    "~18.1% of compute vs <0.1% for Hermes",
    "paper: Hermes token generation is 66.4% of time at batch 1; prefill "
    "becomes ~33% once generation is optimised",
]


def _breakdown_row(model_name: str, batch: int, result) -> list:
    per_token = {
        key: 1e3 * result.breakdown.get(key, 0.0) / result.n_decode_tokens
        for key in BREAKDOWN_KEYS
    }
    return ([model_name, batch, result.system]
            + [round(per_token[key], 3) for key in BREAKDOWN_KEYS])


def _point(task: tuple[str, str, int, bool]) -> list[list]:
    """Baseline + Hermes breakdown rows for one (panel, model, batch)."""
    panel, model_name, batch, quick = task
    machine = default_machine()
    model = get_model(model_name)
    trace = trace_for(model_name, quick=quick)
    baseline_cls = DejaVu if panel == "a" else HermesBase
    return [
        _breakdown_row(model_name, batch,
                       baseline_cls(machine, model).run(trace, batch)),
        _breakdown_row(model_name, batch,
                       HermesSystem(machine, model).run(trace, batch)),
    ]


def run(quick: bool = False, jobs: int | None = None) -> ExperimentResult:
    batches = BATCHES[:2] if quick else BATCHES
    points = ([("a", m, b, quick) for m in PAIRS_A for b in batches]
              + [("b", m, b, quick) for m in PAIRS_B for b in batches])
    rows = flatten(run_grid(_point, points, jobs=jobs))
    headers = (["model", "batch", "system"]
               + [f"{key} ms/tok" for key in BREAKDOWN_KEYS])
    return ExperimentResult(
        name="fig12",
        description="latency breakdown per generated token (ms)",
        headers=headers,
        rows=rows,
        notes=PAPER_NOTES,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
