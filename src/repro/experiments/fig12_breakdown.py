"""Figure 12: per-token latency breakdown.

(a) Deja Vu vs Hermes on OPT-13B and OPT-66B — communication (PCIe)
dominates Deja Vu at ~89 % of execution time, and its MLP predictor costs
~18 % of compute, while the Hermes predictor is <0.1 %.

(b) Hermes-base vs Hermes on Falcon-40B and LLaMA2-70B — without sparsity
the FC time explodes as batch grows because the NDP cores saturate.
"""

from __future__ import annotations

from ..baselines import DejaVu, HermesBase
from ..core import HermesSystem
from ..core.result import BREAKDOWN_KEYS
from ..models import get_model
from .common import ExperimentResult, default_machine, trace_for

PAIRS_A = ("OPT-13B", "OPT-66B")
PAIRS_B = ("Falcon-40B", "LLaMA2-70B")
BATCHES = (1, 4, 16)

PAPER_NOTES = [
    "paper: Deja Vu communication ~89% of runtime; Deja Vu predictor "
    "~18.1% of compute vs <0.1% for Hermes",
    "paper: Hermes token generation is 66.4% of time at batch 1; prefill "
    "becomes ~33% once generation is optimised",
]


def _breakdown_row(model_name: str, batch: int, result) -> list:
    per_token = {
        key: 1e3 * result.breakdown.get(key, 0.0) / result.n_decode_tokens
        for key in BREAKDOWN_KEYS
    }
    return ([model_name, batch, result.system]
            + [round(per_token[key], 3) for key in BREAKDOWN_KEYS])


def run(quick: bool = False) -> ExperimentResult:
    machine = default_machine()
    batches = BATCHES[:2] if quick else BATCHES
    rows = []
    for model_name in PAIRS_A:
        model = get_model(model_name)
        trace = trace_for(model_name, quick=quick)
        for batch in batches:
            rows.append(_breakdown_row(
                model_name, batch, DejaVu(machine, model).run(trace, batch)))
            rows.append(_breakdown_row(
                model_name, batch,
                HermesSystem(machine, model).run(trace, batch)))
    for model_name in PAIRS_B:
        model = get_model(model_name)
        trace = trace_for(model_name, quick=quick)
        for batch in batches:
            rows.append(_breakdown_row(
                model_name, batch,
                HermesBase(machine, model).run(trace, batch)))
            rows.append(_breakdown_row(
                model_name, batch,
                HermesSystem(machine, model).run(trace, batch)))
    headers = (["model", "batch", "system"]
               + [f"{key} ms/tok" for key in BREAKDOWN_KEYS])
    return ExperimentResult(
        name="fig12",
        description="latency breakdown per generated token (ms)",
        headers=headers,
        rows=rows,
        notes=PAPER_NOTES,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
