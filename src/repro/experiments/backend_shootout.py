"""Backend shootout: identical traffic on Hermes and the baselines.

Beyond the paper: the offline figures (fig09/fig17) compare systems one
generation pass at a time; this experiment replays *the same open-loop
workload* — from a declarative scenario whose ``fleet:`` section defines
a mixed hermes/dense/dejavu cluster — across four fleets:

* one homogeneous fleet per registered backend (same machine count as
  the scenario's fleet), and
* the scenario's own mixed fleet, routed by its (typically
  throughput-weighted) router, with a per-backend breakdown of which
  machines absorbed which latency.

Reported per (fleet, backend, class): completed requests, cluster token
throughput, P50/P99 TTFT, P50/P99 TBT, and TTFT/TBT/joint SLO
attainment — the online comparison the offline ``run()`` passes cannot
express (queueing, batching, and preemption all interact with each
backend's per-token cost profile).

Expected shape: on a model that *fits GPU memory* (the bundled
tiny-test scenario — a dispatch/correctness exercise, not the paper's
regime) the dense backend dominates outright: every read is an HBM
read, while Hermes pays the NDP-DIMM path and Deja Vu the host
stream, so both trail on TBT and SLO attainment.  The offloading
backends only earn their keep on models *beyond* GPU memory (compare
``fig09``, or point ``--scenario`` at an OPT-13B/30B fleet spec),
where dense decode turns PCIe-transfer-bound.  In the mixed fleet the
throughput-weighted router biases work toward whichever backend is
fastest for the scenario's model, so the fleet lands between its
parts.
"""

from __future__ import annotations

import dataclasses
import functools

from ..cluster import ClusterReport
from ..scenarios import Scenario, load_scenario, scenario_trace
from ..serving import BACKENDS, MachineGroup
from ..serving.metrics import RequestRecord, percentile
from .cluster_eval import resolve_scenario
from .common import ExperimentResult
from .runner import run_grid

#: the bundled spec the shootout replays (fleet: one machine per backend)
DEFAULT_SCENARIO = "backend_shootout_tiny.json"

#: homogeneous fleets swept next to the scenario's own mixed fleet
BACKEND_SWEEP = tuple(sorted(BACKENDS))


@functools.lru_cache(maxsize=4)
def _trace(model: str, granularity: int, seed: int):
    """Per-process trace cache (workers rebuild at most one trace)."""
    return scenario_trace(model, granularity, seed)


def _fleet_variant(scenario: Scenario, backend: str | None) -> Scenario:
    """The scenario with its fleet replaced by one homogeneous group.

    ``None`` keeps the scenario's own (mixed) fleet.  The homogeneous
    variants keep the machine count, router, policy, classes and
    tenants identical, so every fleet serves byte-identical traffic.
    """
    if backend is None:
        return scenario
    count = scenario.config.num_machines
    return dataclasses.replace(
        scenario, fleet=(MachineGroup(count=count, backend=backend),)
    )


def _request_metrics(
    report: ClusterReport, records: list[RequestRecord]
) -> list[float] | None:
    """[done, ttft p50/p99 (ms), tbt p50/p99 (ms), slo fractions]."""
    done = [r for r in records if r.finished]
    if not done:
        return None
    ttfts = [r.ttft for r in done]
    gaps = [g for r in done for g in r.tbts]
    flags = [report.request_attains(r) for r in done]
    n = len(flags)
    return [
        len(done),
        percentile(ttfts, 50) * 1e3,
        percentile(ttfts, 99) * 1e3,
        percentile(gaps, 50) * 1e3 if gaps else 0.0,
        percentile(gaps, 99) * 1e3 if gaps else 0.0,
        sum(1 for t, _ in flags if t) / n,
        sum(1 for _, b in flags if b) / n,
        sum(1 for t, b in flags if t and b) / n,
    ]


def _point(task: tuple[str, str | None]) -> list[list]:
    """One fleet variant of the shootout; one row per (backend, class)."""
    path, backend = task
    scenario = _fleet_variant(load_scenario(path), backend)
    trace = _trace(scenario.model, scenario.granularity, scenario.trace_seed)
    simulator = scenario.build_simulator(trace)
    machine_backends = simulator.machine_backends
    report = simulator.run(scenario.build_workload())
    label = backend if backend is not None else "mixed"
    rows: list[list] = []
    for name in report.class_names:
        metrics = _request_metrics(report, report.class_records(name))
        if metrics is None:
            continue
        rows.append([label, "*", name, *metrics, report.tokens_per_second])
    if backend is None:
        # mixed fleet: attribute completed requests to the backend of
        # the machine that served them
        for sub in sorted(set(machine_backends)):
            machines = {m for m, b in enumerate(machine_backends) if b == sub}
            records = [r for r in report.records if r.machine in machines]
            metrics = _request_metrics(report, records)
            if metrics is None:
                continue
            rows.append(
                [label, sub, "(all)", *metrics, report.tokens_per_second]
            )
    return rows


HEADERS = [
    "fleet",
    "backend",
    "class",
    "done",
    "TTFT p50 (ms)",
    "TTFT p99 (ms)",
    "TBT p50 (ms)",
    "TBT p99 (ms)",
    "SLO ttft",
    "SLO tbt",
    "SLO joint",
    "tok/s",
]

NOTES = [
    "every fleet serves the identical workload from the scenario's "
    "tenants section; fleet 'mixed' is the scenario's own fleet: "
    "composition behind its router",
    "mixed-fleet '(all)' rows attribute requests to the backend of the "
    "machine that served them; tok/s is the whole fleet's",
]


def run(
    quick: bool = False,
    jobs: int | None = None,
    scenario: str | None = None,
) -> ExperimentResult:
    path = str(resolve_scenario(scenario or DEFAULT_SCENARIO))
    points: list[tuple[str, str | None]] = [
        (path, backend) for backend in BACKEND_SWEEP
    ]
    points.append((path, None))
    rows = [
        row for point in run_grid(_point, points, jobs=jobs) for row in point
    ]
    return ExperimentResult(
        name="backend_shootout",
        description=(
            "same workload replayed on homogeneous "
            f"{'/'.join(BACKEND_SWEEP)} fleets and the scenario's mixed "
            "fleet"
        ),
        headers=HEADERS,
        rows=rows,
        notes=NOTES,
    )
