"""Extension: energy efficiency (tokens per joule) across systems.

Not in the paper — an extension enabled by the byte/FLOP accounting the
timing model already performs.  The offloading baselines pay PCIe transfer
energy *and* static wall-time energy for every token, so the NDP design
wins on tokens/J by an even wider margin than on tokens/s.
"""

from __future__ import annotations

from ..baselines import DejaVu, FlexGen, HuggingfaceAccelerate
from ..core import HermesSystem
from ..hardware import tokens_per_joule
from ..models import get_model
from .common import ExperimentResult, default_machine, trace_for

MODELS = ("OPT-13B", "OPT-66B")


def run(quick: bool = False) -> ExperimentResult:
    machine = default_machine()
    rows = []
    for model_name in MODELS:
        model = get_model(model_name)
        trace = trace_for(model_name, quick=quick)
        systems = [
            HermesSystem(machine, model),
            DejaVu(machine, model),
            FlexGen(machine, model),
            HuggingfaceAccelerate(machine, model),
        ]
        for system in systems:
            result = system.run(trace, batch=1)
            rows.append([
                model_name, system.name,
                round(result.tokens_per_second, 3),
                round(tokens_per_joule(result, model, machine), 4),
            ])
    return ExperimentResult(
        name="energy",
        description="energy efficiency extension (decode stage, batch 1)",
        headers=["model", "system", "tokens/s", "tokens/J"],
        rows=rows,
        notes=["extension beyond the paper: same byte accounting, "
               "energy coefficients in repro.hardware.energy"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
