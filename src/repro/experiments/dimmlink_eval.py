"""DIMM-link evaluation (paper §IV-A1 claims).

* routing cold-neuron migrations over DIMM-links instead of bouncing
  through the host gives >62x faster inter-DIMM movement;
* on OPT-66B, DIMM-links cut the migration overhead from 5.3 % of total
  time to below 0.2 %.
"""

from __future__ import annotations

from ..core import HermesSystem
from ..models import get_model
from .common import ExperimentResult, default_machine, trace_for

MODEL = "OPT-66B"
PAPER_SPEEDUP = 62.0
PAPER_OVERHEAD_BEFORE = 0.053
PAPER_OVERHEAD_AFTER = 0.002


def host_routed_migration_time(
    machine, n_groups: int, total_bytes: int
) -> float:
    """Time to move the same migration traffic through the host.

    Each group is read DIMM->host and written host->DIMM over the shared
    channel interface, serialised on the host memory controller, and each
    hop pays the full transfer latency (driver + copy setup) — there is no
    peer-to-peer path in a commodity memory system.
    """
    if n_groups == 0:
        return 0.0
    channel_bw = machine.dimm.channel_bandwidth
    per_group_bytes = total_bytes / n_groups
    per_group = 2 * (machine.pcie.latency + per_group_bytes / channel_bw)
    return n_groups * per_group


def run(quick: bool = False) -> ExperimentResult:
    machine = default_machine()
    model = get_model(MODEL)
    trace = trace_for(MODEL, quick=quick)
    result = HermesSystem(machine, model).run(trace, batch=1)
    moved_bytes = result.metadata["remap_bytes"]
    moved_groups = result.metadata["remap_groups"]
    link_time = result.metadata["remap_link_time"]
    host_time = host_routed_migration_time(machine, moved_groups, moved_bytes)
    speedup = host_time / link_time if link_time > 0 else float("inf")
    overhead_link = link_time / (result.total_time)
    overhead_host = host_time / (result.total_time - link_time + host_time)
    rows = [
        ["migrated bytes (MiB)", round(moved_bytes / 2**20, 1), ""],
        ["migrated groups", moved_groups, ""],
        ["DIMM-link migration speedup vs host routing",
         round(speedup, 1), PAPER_SPEEDUP],
        ["migration share of runtime (DIMM-link)",
         round(overhead_link, 4), PAPER_OVERHEAD_AFTER],
        ["migration share of runtime (host-routed)",
         round(overhead_host, 4), PAPER_OVERHEAD_BEFORE],
    ]
    return ExperimentResult(
        name="dimmlink",
        description="DIMM-link vs host-routed cold-neuron migration",
        headers=["statistic", "measured", "paper"],
        rows=rows,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
