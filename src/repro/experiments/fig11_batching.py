"""Figure 11: end-to-end performance across batch sizes 1-16.

Six systems on Falcon-40B, OPT-66B and LLaMA2-70B.  Paper headline
averages: Hermes 148.98x over FlexGen, 75.24x over Deja Vu and 7.17x over
Hermes-host across batch sizes; the Hermes-base gap is smallest at batch 2
(weight reuse amortises DRAM access before the NDP cores saturate).
"""

from __future__ import annotations

from ..baselines import (
    DejaVu,
    FlexGen,
    HermesBase,
    HermesHost,
    HuggingfaceAccelerate,
)
from ..core import HermesSystem
from ..models import get_model
from .common import (
    ExperimentResult,
    default_machine,
    geometric_mean,
    trace_for,
)
from .runner import run_grid

MODELS = ("Falcon-40B", "OPT-66B", "LLaMA2-70B")
BATCHES = (1, 2, 4, 8, 16)
#: paper Fig. 11 Hermes tokens/s series (batch 1,2,4,8,16)
PAPER_HERMES = {
    "Falcon-40B": (30.02, 45.34, 70.28, 113.09, 182.72),
    "OPT-66B": (20.37, 32.71, 51.58, 80.85, 125.99),
    "LLaMA2-70B": (13.75, 16.05, 21.49, 33.36, 57.02),
}
#: FlexGen and Deja Vu support only OPT models (N.P. elsewhere, as in the
#: paper's figure)
OPT_ONLY = ("FlexGen", "Deja Vu")


def _systems(machine, model):
    return {
        "Huggingface Accelerate": HuggingfaceAccelerate(machine, model),
        "FlexGen": FlexGen(machine, model),
        "Deja Vu": DejaVu(machine, model),
        "Hermes-host": HermesHost(machine, model),
        "Hermes-base": HermesBase(machine, model),
        "Hermes": HermesSystem(machine, model),
    }


def _point(task: tuple[str, int, bool]) -> dict[str, float | None]:
    """Throughput of every system for one (model, batch) grid cell."""
    model_name, batch, quick = task
    model = get_model(model_name)
    trace = trace_for(model_name, quick=quick)
    machine = default_machine()
    measured: dict[str, float | None] = {}
    for system_name, system in _systems(machine, model).items():
        if system_name in OPT_ONLY and not model_name.startswith("OPT"):
            measured[system_name] = None
            continue
        measured[system_name] = system.run(
            trace, batch=batch).tokens_per_second
    return measured


def run(quick: bool = False, jobs: int | None = None) -> ExperimentResult:
    batches = BATCHES[:3] if quick else BATCHES
    points = [(model_name, batch, quick)
              for model_name in MODELS for batch in batches]
    results = run_grid(_point, points, jobs=jobs)
    rows = []
    ratios = {"FlexGen": [], "Deja Vu": [], "Hermes-host": []}
    for (model_name, batch, _), measured in zip(points, results):
        paper_h = PAPER_HERMES[model_name][BATCHES.index(batch)]
        for system_name, value in measured.items():
            rows.append([
                model_name, batch, system_name,
                None if value is None else round(value, 3),
                paper_h if system_name == "Hermes" else "",
            ])
        hermes = measured["Hermes"]
        for ref in ratios:
            if measured.get(ref):
                ratios[ref].append(hermes / measured[ref])
    notes = [
        "paper averages: Hermes 148.98x over FlexGen, 75.24x over Deja Vu, "
        "7.17x over Hermes-host",
    ]
    for ref, values in ratios.items():
        if values:
            notes.append(f"measured geomean speedup over {ref}: "
                         f"{geometric_mean(values):.1f}x")
    return ExperimentResult(
        name="fig11",
        description="batching sweep, six systems x three models",
        headers=["model", "batch", "system", "tokens/s", "paper (Hermes)"],
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
