"""Figure 13: ablation of the offline and online scheduling strategies.

Normalised speedup over Hermes-random on LLaMA-13B and LLaMA2-70B for:

* Hermes-random     — random offline placement;
* Hermes-partition  — optimal offline partition only (paper: 1.63x);
* Hermes-token-adjustment / Hermes-layer-adjustment — online adjustment
  guided by one prediction mode only (paper: 1.08x / 1.11x over partition);
* Hermes-adjustment — combined online adjustment (paper: 1.33x);
* Hermes            — + window-based remapping (paper: further 1.29x).
"""

from __future__ import annotations

from ..core import HermesConfig, HermesSystem
from ..models import get_model
from .common import ExperimentResult, default_machine, trace_for
from .runner import run_grid

MODELS = ("LLaMA-13B", "LLaMA2-70B")
BATCHES = (1, 4, 16)

VARIANTS: dict[str, HermesConfig] = {
    "Hermes-random": HermesConfig(
        partition_strategy="random", online_adjustment=False,
        window_scheduling=False),
    "Hermes-partition": HermesConfig(
        online_adjustment=False, window_scheduling=False),
    "Hermes-token-adjustment": HermesConfig(
        layer_prediction=False, window_scheduling=False),
    "Hermes-layer-adjustment": HermesConfig(
        token_prediction=False, window_scheduling=False),
    "Hermes-adjustment": HermesConfig(window_scheduling=False),
    "Hermes": HermesConfig(),
}

PAPER_GAINS = [
    "paper: partition/random = 1.63x; adjustment/partition = 1.33x; "
    "Hermes/adjustment = 1.29x; token-only = 1.08x and layer-only = 1.11x "
    "over partition",
]


def _point(task: tuple[str, int, bool]) -> dict[str, float]:
    """Per-variant decode latency for one (model, batch) grid cell."""
    model_name, batch, quick = task
    machine = default_machine()
    model = get_model(model_name)
    trace = trace_for(model_name, quick=quick)
    return {
        variant: HermesSystem(machine, model, config).run(
            trace, batch=batch).decode_latency_per_token
        for variant, config in VARIANTS.items()
    }


def run(quick: bool = False, jobs: int | None = None) -> ExperimentResult:
    batches = (1,) if quick else BATCHES
    points = [(model_name, batch, quick)
              for model_name in MODELS for batch in batches]
    results = run_grid(_point, points, jobs=jobs)
    rows = []
    for (model_name, batch, _), latencies in zip(points, results):
        base = latencies["Hermes-random"]
        for variant in VARIANTS:
            rows.append([
                model_name, batch, variant,
                round(base / latencies[variant], 3),
            ])
    return ExperimentResult(
        name="fig13",
        description="scheduling ablation (speedup over Hermes-random)",
        headers=["model", "batch", "variant", "speedup vs random"],
        rows=rows,
        notes=PAPER_GAINS,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
