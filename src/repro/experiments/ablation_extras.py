"""Extension ablations: design choices the paper fixes without sweeping.

The paper pins three scheduler constants — the scheduling window (5 tokens,
§IV-D), the hot threshold (Th = 10, §IV-C2) and the GEMV-unit multiplier
count (explored only for OPT-13B in Fig. 16).  This experiment sweeps the
first two on LLaMA2-70B to check the chosen operating point:

* **window size** — small windows react faster but migrate more bytes
  over the DIMM-links; large windows under-react to drift.  Token-wise
  similarity decays past ~10 tokens (Fig. 4a), so windows beyond that
  should stop helping.
* **hot threshold** — low thresholds promote aggressively (more PCIe swap
  traffic), high thresholds under-populate the GPU.
"""

from __future__ import annotations

from ..core import HermesConfig, HermesSystem
from ..models import get_model
from .common import ExperimentResult, default_machine, trace_for

MODEL = "LLaMA2-70B"
WINDOWS = (1, 2, 5, 10, 25)
THRESHOLDS = (6, 8, 10, 12, 14)


def run(quick: bool = False) -> ExperimentResult:
    machine = default_machine()
    model = get_model(MODEL)
    trace = trace_for(MODEL, quick=quick)
    rows = []
    for window in WINDOWS:
        config = HermesConfig(window=window)
        result = HermesSystem(machine, model, config).run(trace)
        rows.append(["window", window,
                     round(result.tokens_per_second, 2),
                     round(result.metadata["remap_bytes"] / 2**20, 1)])
    for threshold in THRESHOLDS:
        config = HermesConfig(hot_threshold=threshold)
        result = HermesSystem(machine, model, config).run(trace)
        rows.append(["hot threshold", threshold,
                     round(result.tokens_per_second, 2),
                     round(result.metadata["swap_bytes"] / 2**20, 1)])
    return ExperimentResult(
        name="ablation-extras",
        description="window-size and hot-threshold sweeps (LLaMA2-70B)",
        headers=["knob", "value", "tokens/s", "migrated MiB"],
        rows=rows,
        notes=["paper operating point: window=5, Th=10"],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
