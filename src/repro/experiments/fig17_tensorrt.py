"""Figure 17: Hermes vs TensorRT-LLM on 5x A100 (LLaMA2-70B).

The budget argument: at batch 1 Hermes reaches 79.1 % of TensorRT-LLM's
throughput and still 24.4 % at batch 16 — on ~$2,500 of hardware against
~$50,000 (about 5 % of the budget, §V-F and the conclusion).
"""

from __future__ import annotations

from ..baselines import TensorRTLLM
from ..core import HermesSystem
from ..hardware import machine_cost_usd, server_cost_usd
from ..models import get_model
from .common import ExperimentResult, default_machine, trace_for
from .runner import run_grid

MODEL = "LLaMA2-70B"
BATCHES = (1, 2, 4, 8, 16)
PAPER_EFFICIENCY = {1: 0.791, 2: 0.209, 4: 0.553, 8: 0.756, 16: 0.244}


def _point(task: tuple[int, bool]) -> tuple[float, float]:
    """(Hermes, TensorRT-LLM) throughput for one batch size."""
    batch, quick = task
    machine = default_machine()
    model = get_model(MODEL)
    trace = trace_for(MODEL, quick=quick)
    h = HermesSystem(machine, model).run(trace, batch=batch).tokens_per_second
    t = TensorRTLLM(model).run(trace, batch=batch).tokens_per_second
    return h, t


def run(quick: bool = False, jobs: int | None = None) -> ExperimentResult:
    machine = default_machine()
    batches = (1, 16) if quick else BATCHES
    results = run_grid(_point, [(b, quick) for b in batches], jobs=jobs)
    rows = []
    for batch, (h, t) in zip(batches, results):
        rows.append([batch, round(h, 2), round(t, 2),
                     round(100 * h / t, 1),
                     round(100 * PAPER_EFFICIENCY.get(batch, float("nan")),
                           1)])
    cost_ratio = machine_cost_usd(machine) / server_cost_usd()
    return ExperimentResult(
        name="fig17",
        description="Hermes vs TensorRT-LLM (5x A100) on LLaMA2-70B",
        headers=["batch", "Hermes tok/s", "TensorRT tok/s",
                 "efficiency %", "paper efficiency %"],
        rows=rows,
        notes=[
            f"hardware budget: ${machine_cost_usd(machine):,.0f} vs "
            f"${server_cost_usd():,.0f} "
            f"({cost_ratio:.1%} of the server cost; paper: ~5%)",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
