"""Figure 16: design-space exploration of the GEMV unit.

OPT-13B with 32-512 multipliers per GEMV unit across batches 1-16,
normalised to the 32-multiplier design at the same batch.  Paper headline:
at batch 1 performance saturates by 64 multipliers (memory-bound); at
batch 16 it keeps scaling to ~3.86x (compute-bound) — hence the 256
multiplier balance point chosen in Table II.
"""

from __future__ import annotations

from ..core import HermesSystem
from ..models import get_model
from .common import ExperimentResult, default_machine, trace_for
from .runner import run_grid

MODEL = "OPT-13B"
MULTIPLIERS = (32, 64, 128, 256, 512)
BATCHES = (1, 2, 4, 8, 16)


def _point(task: tuple[int, bool]) -> dict[int, float]:
    """Per-multiplier decode latency for one batch size."""
    batch, quick = task
    base_machine = default_machine()
    model = get_model(MODEL)
    trace = trace_for(MODEL, quick=quick)
    latencies = {}
    for m in MULTIPLIERS:
        machine = base_machine.with_multipliers(m)
        result = HermesSystem(machine, model).run(trace, batch=batch)
        latencies[m] = result.decode_latency_per_token
    return latencies


def run(quick: bool = False, jobs: int | None = None) -> ExperimentResult:
    batches = (1, 16) if quick else BATCHES
    results = run_grid(_point, [(b, quick) for b in batches], jobs=jobs)
    rows = []
    for batch, latencies in zip(batches, results):
        base = latencies[MULTIPLIERS[0]]
        rows.append(
            [batch] + [round(base / latencies[m], 3) for m in MULTIPLIERS]
        )
    return ExperimentResult(
        name="fig16",
        description="GEMV-unit multipliers DSE (speedup vs 32 multipliers)",
        headers=["batch"] + [f"{m} mult" for m in MULTIPLIERS],
        rows=rows,
        notes=[
            "paper: batch 1 saturates by 64 multipliers; batch 16 reaches "
            "~3.86x at 512",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
