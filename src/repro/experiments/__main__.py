"""Command-line entry point: ``python -m repro.experiments fig09 [...]``.

``all`` runs every experiment; ``--quick`` shortens the decode window.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from . import ALL_EXPERIMENTS

#: accepted alternate spellings for registry ids
ALIASES = {"serving_eval": "serving"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures and statistics.")
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)})"
                             " or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="short decode window for a fast pass")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep experiments "
                             "(default: REPRO_JOBS env var, else 1)")
    parser.add_argument("--scenario", default=None, metavar="FILE",
                        help="declarative scenario spec (JSON/TOML) for "
                             "the 'cluster' experiment")
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")

    names = list(ALL_EXPERIMENTS) if "all" in args.experiments \
        else [ALIASES.get(n, n) for n in args.experiments]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")
    if args.scenario is not None:
        takers = [n for n in names
                  if "scenario" in
                  inspect.signature(ALL_EXPERIMENTS[n]).parameters]
        if not takers:
            parser.error("--scenario only applies to the 'cluster' "
                         "experiment")
    for name in names:
        start = time.time()
        entry = ALL_EXPERIMENTS[name]
        params = inspect.signature(entry).parameters
        kwargs = {"quick": args.quick}
        # sweep experiments fan their grid out over worker processes;
        # single-shot experiments simply don't take the parameter
        if "jobs" in params:
            kwargs["jobs"] = args.jobs
        if "scenario" in params and args.scenario is not None:
            kwargs["scenario"] = args.scenario
        result = entry(**kwargs)
        print(result.to_text())
        print(f"[{name} finished in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
