"""Command-line entry point: ``python -m repro.experiments fig09 [...]``.

``all`` runs every experiment; ``--quick`` shortens the decode window;
``--list`` / ``--list-models`` print the experiment and model
registries.  Unknown experiment ids exit non-zero with a
closest-match suggestion.

Telemetry: ``--trace-out FILE`` (with ``--scenario``) writes a live
telemetry artifact — a ``.jsonl`` metric stream or a ``.json`` Chrome
trace, by extension — and ``python -m repro.experiments watch FILE``
tails a metric stream as a live dashboard (``--once`` for a snapshot).

Subcommands with their own argument surface: ``watch`` (tail a
telemetry stream) and ``plan`` (capacity planner; see
``python -m repro.experiments plan --help``).

Conventions shared by every invocation: ``--json`` writes the
machine-readable reports to stdout (tables move to stderr); exit codes
are 0 on success, 1 when a check or SLO verdict failed, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import difflib
import inspect
import json
import sys
import time
import warnings

from ..models import get_model, list_models
from . import ALL_EXPERIMENTS

#: accepted alternate spellings for registry ids
ALIASES = {"serving_eval": "serving"}

GIB = 2**30


def experiment_summaries() -> dict[str, str]:
    """One-liner per experiment id, from its module docstring."""
    summaries = {}
    for name, entry in ALL_EXPERIMENTS.items():
        module = inspect.getmodule(entry)
        doc = (module.__doc__ or "").strip()
        summaries[name] = doc.splitlines()[0].rstrip(".") if doc else ""
    return summaries


def print_experiments(file=None) -> None:
    file = file if file is not None else sys.stdout
    summaries = experiment_summaries()
    width = max(len(name) for name in summaries)
    print("experiments:", file=file)
    for name, summary in summaries.items():
        print(f"  {name:<{width}}  {summary}", file=file)
    if ALIASES:
        aliases = ", ".join(
            f"{alias} -> {target}" for alias, target in sorted(ALIASES.items())
        )
        print(f"aliases (deprecated): {aliases}", file=file)
    print("subcommands: plan (capacity planner), watch (telemetry "
          "dashboard) — each has its own --help", file=file)


def print_models(file=None) -> None:
    file = file if file is not None else sys.stdout
    names = list_models()
    width = max(len(name) for name in names)
    print("models:", file=file)
    for name in names:
        spec = get_model(name)
        print(f"  {name:<{width}}  {spec.num_layers} layers, "
              f"hidden {spec.hidden_size}, "
              f"{spec.total_weight_bytes / GIB:.1f} GiB weights, "
              f"density {spec.activation_density:.2f}", file=file)


def _unknown_id_message(names: list[str]) -> str:
    known = list(ALL_EXPERIMENTS) + list(ALIASES)
    parts = []
    for name in names:
        close = difflib.get_close_matches(name, known, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        parts.append(f"{name!r}{hint}")
    return (f"unknown experiments: {', '.join(parts)} — run with --list "
            "to see the registry")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "watch":
        # `watch` tails a telemetry stream file, not an experiment —
        # it has its own argument surface (see repro.telemetry.watch)
        from ..telemetry.watch import main as watch_main

        return watch_main(argv[1:])
    if argv and argv[0] == "plan":
        # `plan` is the capacity planner, not a figure reproduction —
        # its own argument surface lives in repro.planner.cli
        from ..planner.cli import main as plan_main

        return plan_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures and statistics.",
    )
    parser.add_argument(
        "experiments", nargs="*", help="experiment ids (see --list) or 'all'"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print experiment ids with one-line " "summaries and exit",
    )
    parser.add_argument(
        "--list-models",
        action="store_true",
        help="print the model registry and exit",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short decode window for a fast pass",
    )
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep experiments "
                             "(default: REPRO_JOBS env var, else 1)")
    parser.add_argument("--scenario", default=None, metavar="FILE",
                        help="declarative scenario spec (JSON/TOML) for "
                             "the scenario-driven experiments")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write run telemetry (with --scenario): "
                             ".jsonl = watchable metric stream, "
                             ".json = Chrome/Perfetto trace")
    parser.add_argument("--json", action="store_true",
                        help="write a machine-readable JSON array of "
                             "experiment reports to stdout (the text "
                             "tables move to stderr)")
    args = parser.parse_args(argv)
    if args.list or args.list_models:
        if args.list:
            print_experiments()
        if args.list_models:
            print_models()
        return 0
    if not args.experiments:
        parser.error("name at least one experiment id, 'all', or use "
                     "--list / --list-models")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if "all" in args.experiments:
        names = list(ALL_EXPERIMENTS)
    else:
        names = []
        for name in args.experiments:
            if name in ALIASES:
                canonical = ALIASES[name]
                warnings.warn(
                    f"experiment id {name!r} is a deprecated alias; "
                    f"use {canonical!r}",
                    DeprecationWarning,
                    stacklevel=2,
                )
                print(f"warning: {name!r} is a deprecated alias for "
                      f"{canonical!r}", file=sys.stderr)
                name = canonical
            names.append(name)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"error: {_unknown_id_message(unknown)}", file=sys.stderr)
        return 2
    if args.scenario is not None:
        takers = [n for n in names
                  if "scenario" in
                  inspect.signature(ALL_EXPERIMENTS[n]).parameters]
        if not takers:
            scenario_aware = sorted(
                n for n in ALL_EXPERIMENTS
                if "scenario" in
                inspect.signature(ALL_EXPERIMENTS[n]).parameters)
            parser.error(
                "--scenario only applies to: " + ", ".join(scenario_aware)
            )
    if args.trace_out is not None:
        if args.scenario is None:
            parser.error("--trace-out needs --scenario (one traced run)")
        takers = [n for n in names
                  if "trace_out" in
                  inspect.signature(ALL_EXPERIMENTS[n]).parameters]
        if not takers:
            trace_aware = sorted(
                n for n in ALL_EXPERIMENTS
                if "trace_out" in
                inspect.signature(ALL_EXPERIMENTS[n]).parameters)
            parser.error(
                "--trace-out only applies to: " + ", ".join(trace_aware)
            )
    # under --json the text tables move to stderr so stdout carries
    # exactly one machine-readable document
    table_out = sys.stderr if args.json else sys.stdout
    reports = []
    for name in names:
        start = time.time()
        entry = ALL_EXPERIMENTS[name]
        params = inspect.signature(entry).parameters
        kwargs = {"quick": args.quick}
        # sweep experiments fan their grid out over worker processes;
        # single-shot experiments simply don't take the parameter
        if "jobs" in params:
            kwargs["jobs"] = args.jobs
        if "scenario" in params and args.scenario is not None:
            kwargs["scenario"] = args.scenario
        if "trace_out" in params and args.trace_out is not None:
            kwargs["trace_out"] = args.trace_out
        result = entry(**kwargs)
        print(result.to_text(), file=table_out)
        print(f"[{name} finished in {time.time() - start:.1f}s]\n",
              file=table_out)
        if args.json:
            reports.append(result.to_json())
    if args.json:
        json.dump(reports, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
