"""Figure 15: sensitivity to the GPU (Tesla T4, RTX 3090, RTX 4090).

OPT-13B and OPT-30B at batches 1, 4, 16.  Paper headline: the RTX 4090
machine averages 2.02x over Tesla T4 and 1.34x over RTX 3090 — the 3090
loses on prefill and hot-neuron compute, the T4 additionally on memory
size and bandwidth.
"""

from __future__ import annotations

from ..core import HermesSystem
from ..hardware import get_gpu
from ..models import get_model
from .common import (
    ExperimentResult,
    default_machine,
    geometric_mean,
    trace_for,
)
from .runner import run_grid

MODELS = ("OPT-13B", "OPT-30B")
GPUS = ("Tesla T4", "RTX 3090", "RTX 4090")
BATCHES = (1, 4, 16)


def _point(task: tuple[str, int, bool]) -> dict[str, float | None]:
    """Hermes throughput per GPU for one (model, batch) grid cell."""
    model_name, batch, quick = task
    base_machine = default_machine()
    model = get_model(model_name)
    trace = trace_for(model_name, quick=quick)
    measured: dict[str, float | None] = {}
    for gpu_name in GPUS:
        machine = base_machine.with_gpu(get_gpu(gpu_name))
        try:
            system = HermesSystem(machine, model)
            measured[gpu_name] = system.run(
                trace, batch=batch).tokens_per_second
        except ValueError:
            measured[gpu_name] = None
    return measured


def run(quick: bool = False, jobs: int | None = None) -> ExperimentResult:
    batches = (1,) if quick else BATCHES
    points = [(model_name, batch, quick)
              for model_name in MODELS for batch in batches]
    results = run_grid(_point, points, jobs=jobs)
    rows = []
    ratio_t4, ratio_3090 = [], []
    for (model_name, batch, _), measured in zip(points, results):
        for gpu_name in GPUS:
            rows.append([model_name, batch, gpu_name,
                         None if measured[gpu_name] is None
                         else round(measured[gpu_name], 2)])
        if measured["Tesla T4"]:
            ratio_t4.append(measured["RTX 4090"] / measured["Tesla T4"])
        if measured["RTX 3090"]:
            ratio_3090.append(measured["RTX 4090"] / measured["RTX 3090"])
    notes = ["paper: RTX 4090 averages 2.02x over T4, 1.34x over 3090"]
    if ratio_t4:
        notes.append(f"measured: {geometric_mean(ratio_t4):.2f}x over T4, "
                     f"{geometric_mean(ratio_3090):.2f}x over 3090")
    return ExperimentResult(
        name="fig15",
        description="GPU sensitivity (Hermes throughput)",
        headers=["model", "batch", "GPU", "tokens/s"],
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
