"""Figure 14: throughput vs number of NDP-DIMMs (1, 2, 4, 8, 16).

More DIMMs add both capacity (larger models become deployable — Falcon-40B
needs at least 4 DIMMs) and aggregate internal bandwidth; but once the
NDP pool stops being the bottleneck, extra DIMMs no longer help (the paper
sees LLaMA2-70B flat between 8 and 16 DIMMs).  N.P. marks configurations
whose DIMM pool cannot hold the model, exactly as in the paper's figure.
"""

from __future__ import annotations

from ..core import HermesSystem
from ..models import get_model
from .common import ExperimentResult, default_machine, trace_for

MODELS = ("OPT-13B", "OPT-30B", "Falcon-40B", "LLaMA2-70B")
DIMM_COUNTS = (1, 2, 4, 8, 16)


def run(quick: bool = False) -> ExperimentResult:
    base_machine = default_machine()
    rows = []
    for model_name in MODELS:
        model = get_model(model_name)
        trace = trace_for(model_name, quick=quick)
        row = [model_name]
        for n in DIMM_COUNTS:
            machine = base_machine.with_dimms(n)
            try:
                system = HermesSystem(machine, model)
            except ValueError:
                row.append(None)  # N.P.: model does not fit
                continue
            row.append(round(system.run(trace, batch=1).tokens_per_second, 2))
        rows.append(row)
    return ExperimentResult(
        name="fig14",
        description="throughput vs NDP-DIMM count (batch 1)",
        headers=["model"] + [f"{n} DIMMs" for n in DIMM_COUNTS],
        rows=rows,
        notes=[
            "paper: Falcon-40B needs >=4 DIMMs; LLaMA2-70B saturates "
            "between 8 and 16 DIMMs",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
