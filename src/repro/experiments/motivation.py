"""Motivation statistics (paper §I and §III).

* 20 % of neurons ("hot") carry ~80 % of the computation (§I);
* ~52 % of offline-initialised hot neurons vary their activity during
  inference, so a fixed partition trails an oracle by ~1.63x (§III-B);
* a fixed cold-neuron placement leaves the busiest NDP-DIMM 1.2-2.5x more
  loaded than the average (§III-C).
"""

from __future__ import annotations

import numpy as np

from ..core import HermesConfig, HermesSystem
from ..core.partition import PartitionCosts, assign_dimms
from ..sparsity import (
    dimm_load_imbalance,
    hot_cold_computation_share,
    hot_set_churn,
)
from .common import ExperimentResult, default_machine, trace_for

PAPER_HOT_SHARE = 0.80
PAPER_CHURN = 0.52
PAPER_ORACLE_GAP = 1.63
PAPER_IMBALANCE = (1.2, 2.5)


def run(quick: bool = False) -> ExperimentResult:
    machine = default_machine()
    rows = []

    # hot/cold shares + churn on the motivation models
    t70 = trace_for("LLaMA2-70B", quick=quick)
    share = hot_cold_computation_share(t70)
    churn = hot_set_churn(t70)

    # oracle vs fixed partition (Hermes with no online machinery vs the
    # decode-profiled oracle partition) on LLaMA2-70B, §III-B
    from ..models import get_model
    model = get_model("LLaMA2-70B")
    fixed_cfg = HermesConfig(online_adjustment=False, window_scheduling=False)
    oracle_cfg = HermesConfig(
        online_adjustment=False, window_scheduling=False, oracle=True
    )
    fixed = HermesSystem(machine, model, fixed_cfg).run(t70)
    oracle = HermesSystem(machine, model, oracle_cfg).run(t70)
    gap = fixed.decode_latency_per_token / oracle.decode_latency_per_token

    # fixed-placement load imbalance across 8 DIMMs on LLaMA-13B, §III-C
    t13 = trace_for("LLaMA-13B", quick=quick)
    layout = t13.layout
    freqs = [t13.prefill_frequencies(l) for l in range(t13.num_layers)]
    costs = PartitionCosts(
        gpu_seconds_per_byte=1.0 / machine.gpu.effective_bandwidth,
        dimm_seconds_per_byte=1.0 / machine.dimm.internal_bandwidth,
        sync_seconds=machine.sync_latency,
        num_dimms=machine.num_dimms,
        gpu_budget_bytes=0,  # every neuron on the DIMMs for this statistic
        dimm_capacity_bytes=machine.dimm.capacity_bytes,
    )
    hot_masks = [np.zeros(layout.groups_per_layer, dtype=bool)
                 for _ in range(t13.num_layers)]
    placement = assign_dimms(freqs, hot_masks, layout, costs, balanced=False)
    imbalances = [
        dimm_load_imbalance(t13, placement[l], l, window=16)
        for l in range(0, t13.num_layers, 4)
    ]

    rows = [
        ["hot 20% computation share", round(share, 3), PAPER_HOT_SHARE],
        ["hot-set churn during decode", round(churn, 3), PAPER_CHURN],
        ["fixed vs oracle slowdown", round(gap, 3), PAPER_ORACLE_GAP],
        ["max fixed-placement DIMM imbalance",
         round(float(np.max(imbalances)), 3), PAPER_IMBALANCE[1]],
        ["mean fixed-placement DIMM imbalance",
         round(float(np.mean(imbalances)), 3), PAPER_IMBALANCE[0]],
    ]
    return ExperimentResult(
        name="motivation",
        description="hot/cold shares, churn, oracle gap, load imbalance",
        headers=["statistic", "measured", "paper"],
        rows=rows,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
