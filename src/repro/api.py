"""The supported public surface of the ``repro`` package.

Downstream code (the bundled examples included) should import from
``repro.api`` — everything here is covered by the round-trip tests and
kept stable across refactors, while the submodule layout underneath
(``repro.core``, ``repro.serving``, ...) is free to move.

The four verbs most callers need::

    from repro import api

    scenario = api.load_scenario("scenarios/mixed_slo_tiny.json")
    report = api.simulate(scenario)          # typed ClusterReport
    result = api.plan(scenario, budget=8)    # cheapest SLO-meeting fleet
    api.list_backends(), api.list_models()   # the registries

plus re-exports of the stable types those verbs produce and consume
(offline systems, hardware and model specs, trace generation, the
serving/telemetry toolkit, and the planner's result types).
"""

from __future__ import annotations

import pathlib

# ---- offline systems and their substrates ----------------------------
from .baselines import (
    DejaVu,
    FlexGen,
    HermesBase,
    HermesHost,
    HuggingfaceAccelerate,
    TensorRTLLM,
)
from .cluster import ClusterConfig, ClusterReport, ClusterSimulator
from .core import (
    ActivationPredictor,
    HermesConfig,
    HermesSystem,
    PredictorConfig,
    RunResult,
)
from .hardware import (
    GPUSpec,
    Machine,
    NDPDIMM,
    get_gpu,
    machine_cost_usd,
    server_cost_usd,
)
from .models import ModelSpec, get_model, list_models
from .planner import (
    FleetCandidate,
    PlanResult,
    ValidationOutcome,
    plan,
)
from .scenarios import PlannerSpec, Scenario, TenantSpec, load_scenario
from .serving import (
    BACKENDS,
    BatchingPolicy,
    CrashSpec,
    DegradeSpec,
    DomainCrashSpec,
    DomainSpec,
    FaultSchedule,
    LengthDistribution,
    MachineGroup,
    Request,
    ServingConfig,
    ServingReport,
    ServingSimulator,
    WorkloadConfig,
    dump_fault_trace,
    generate_workload,
    load_fault_trace,
)
from .sparsity import ActivationTrace, TraceConfig, generate_trace
from .telemetry import TelemetrySpec, Tracer, scenario_sinks


def list_backends() -> list[str]:
    """Registered serving-backend names, sorted."""
    return sorted(BACKENDS)


def simulate(
    scenario: Scenario | str | pathlib.Path,
    *,
    tracer: Tracer | None = None,
) -> ClusterReport:
    """Run one scenario end to end and return its typed report.

    ``scenario`` may be an already-loaded :class:`Scenario` or a spec
    path (JSON/TOML); pass a :class:`Tracer` to capture telemetry.
    """
    if isinstance(scenario, (str, pathlib.Path)):
        scenario = load_scenario(scenario)
    return scenario.run(tracer=tracer)


__all__ = [
    # the verbs
    "list_backends",
    "list_models",
    "load_scenario",
    "plan",
    "simulate",
    # models and hardware
    "GPUSpec",
    "Machine",
    "ModelSpec",
    "NDPDIMM",
    "get_gpu",
    "get_model",
    "machine_cost_usd",
    "server_cost_usd",
    # traces
    "ActivationTrace",
    "TraceConfig",
    "generate_trace",
    # offline systems
    "ActivationPredictor",
    "DejaVu",
    "FlexGen",
    "HermesBase",
    "HermesConfig",
    "HermesHost",
    "HermesSystem",
    "HuggingfaceAccelerate",
    "PredictorConfig",
    "RunResult",
    "TensorRTLLM",
    # serving and cluster
    "BACKENDS",
    "BatchingPolicy",
    "ClusterConfig",
    "ClusterReport",
    "ClusterSimulator",
    "LengthDistribution",
    "MachineGroup",
    "Request",
    "ServingConfig",
    "ServingReport",
    "ServingSimulator",
    "WorkloadConfig",
    "generate_workload",
    # fault injection
    "CrashSpec",
    "DegradeSpec",
    "DomainCrashSpec",
    "DomainSpec",
    "FaultSchedule",
    "dump_fault_trace",
    "load_fault_trace",
    # scenarios
    "PlannerSpec",
    "Scenario",
    "TenantSpec",
    # telemetry
    "TelemetrySpec",
    "Tracer",
    "scenario_sinks",
    # planner
    "FleetCandidate",
    "PlanResult",
    "ValidationOutcome",
]
