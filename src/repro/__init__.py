"""repro — a reproduction of *Make LLM Inference Affordable to Everyone:
Augmenting GPU Memory with NDP-DIMM* (HPCA 2025).

The package simulates the Hermes heterogeneous inference system — a single
consumer-grade GPU whose memory is augmented by near-data-processing DIMMs —
together with every baseline the paper evaluates, on top of from-scratch
substrates: a DDR4 timing model, NDP core models, an activation-sparsity
trace generator, and a discrete-event engine.

Quickstart::

    from repro import Machine, HermesSystem, generate_trace, get_model

    model = get_model("OPT-66B")
    machine = Machine()                      # RTX 4090 + 8 NDP-DIMMs
    trace = generate_trace(model)            # synthetic activation trace
    result = HermesSystem(machine, model).run(trace, batch=1)
    print(f"{result.tokens_per_second:.2f} tokens/s")
"""

from .models import ModelSpec, get_model, list_models
from .hardware import (
    Machine,
    NDPDIMM,
    GPUSpec,
    get_gpu,
    machine_cost_usd,
    server_cost_usd,
)
from .sparsity import ActivationTrace, TraceConfig, generate_trace
from .core import (
    ActivationPredictor,
    HermesConfig,
    HermesSystem,
    NeuronMapper,
    OfflinePartition,
    PredictorConfig,
    RunResult,
    WindowScheduler,
    solve_partition,
)
from .baselines import (
    DejaVu,
    FlexGen,
    HermesBase,
    HermesHost,
    HuggingfaceAccelerate,
    TensorRTLLM,
)
from . import api

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "api",
    "ModelSpec",
    "get_model",
    "list_models",
    "Machine",
    "NDPDIMM",
    "GPUSpec",
    "get_gpu",
    "machine_cost_usd",
    "server_cost_usd",
    "ActivationTrace",
    "TraceConfig",
    "generate_trace",
    "HermesSystem",
    "HermesConfig",
    "ActivationPredictor",
    "PredictorConfig",
    "NeuronMapper",
    "WindowScheduler",
    "OfflinePartition",
    "solve_partition",
    "RunResult",
    "HuggingfaceAccelerate",
    "FlexGen",
    "DejaVu",
    "HermesHost",
    "HermesBase",
    "TensorRTLLM",
]
