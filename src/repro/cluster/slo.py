"""Priority classes, SLO targets, and preemptive admission.

A :class:`PriorityClass` names a tenant tier (``interactive``, ``batch``,
...) with an integer priority — higher admits first — and optional SLO
deadlines: ``ttft_slo`` bounds time-to-first-token, ``tbt_slo`` bounds
every inter-token gap.  An :class:`SLOPolicy` is the cluster's class
table plus the preemption knobs; requests reference it through their
``class_name`` tag.

Preemptive admission (:class:`DeadlinePreemptor`) is how a loaded machine
protects high-priority TTFT: when the highest-priority queued request
would miss its deadline waiting for a batch slot, the newest resident
request of a strictly lower class is evicted back to the queue.  Its KV
state stays resident, so re-admission is free — the cost it pays is the
decode gap, which shows up honestly in its TBT tail and in
``RequestRecord.preemptions``.
"""

from __future__ import annotations

import dataclasses
import functools
import typing

from ..serving import ActiveEntry, BatchingPolicy, MachineExecutor, Request


@dataclasses.dataclass(frozen=True)
class PriorityClass:
    """One tenant tier: admission priority plus optional SLO deadlines."""

    name: str
    #: higher values admit first; preemption only ever crosses classes
    priority: int = 0
    #: time-to-first-token deadline in seconds (None = no TTFT SLO)
    ttft_slo: float | None = None
    #: per-token decode-gap deadline in seconds (None = no TBT SLO)
    tbt_slo: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("class name must be non-empty")
        if self.ttft_slo is not None and self.ttft_slo <= 0:
            raise ValueError("ttft_slo must be positive")
        if self.tbt_slo is not None and self.tbt_slo <= 0:
            raise ValueError("tbt_slo must be positive")


#: the implicit class of untagged requests: priority 0, no SLOs
DEFAULT_CLASS = PriorityClass(name="default")


@dataclasses.dataclass(frozen=True)
class SLOPolicy:
    """The cluster's class table plus preemption behaviour."""

    classes: tuple[PriorityClass, ...] = (DEFAULT_CLASS,)
    #: evict lower-priority residents for deadline-threatened prefills
    preemptive: bool = False
    #: fraction of the TTFT SLO treated as the urgency window: preemption
    #: triggers once remaining slack falls below ``headroom * ttft_slo``
    #: (1.0 = preempt as soon as a higher class waits, 0.0 = never early)
    headroom: float = 0.5

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("SLOPolicy needs at least one class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        if not 0.0 <= self.headroom <= 1.0:
            raise ValueError("headroom must lie in [0, 1]")

    @functools.cached_property
    def _table(self) -> dict[str, PriorityClass]:
        return {c.name: c for c in self.classes}

    def class_of(self, request: Request) -> PriorityClass:
        """Resolve a request's tag against the class table."""
        try:
            return self._table[request.class_name]
        except KeyError:
            known = ", ".join(sorted(self._table))
            raise KeyError(
                f"request {request.req_id} names unknown class "
                f"{request.class_name!r}; declared classes: {known}"
            ) from None

    def priority_of(self, request: Request) -> int:
        return self.class_of(request).priority


class PriorityOrderedPolicy(BatchingPolicy):
    """Admission wrapper: higher-priority classes first, base order within.

    The stable sort preserves the base policy's relative order inside each
    class, so with a single class this is *exactly* the base policy — the
    property tests rely on that to equate a 1-machine cluster with the
    plain :class:`~repro.serving.ServingSimulator`.
    """

    def __init__(self, base: BatchingPolicy, slo: SLOPolicy) -> None:
        self.base = base
        self.slo = slo
        self.name = f"{base.name}+priority"
        #: keys are immutable per request, and the admission scan
        #: evaluates them for the whole queue on every select — memoise
        #: by the unique req_id (one policy instance serves one run)
        self._key_cache: dict[int, tuple] = {}

    def key(self, request: Request):
        key = self._key_cache.get(request.req_id)
        if key is None:
            # negated priority first, then the base policy's total order
            # — exactly the (stable) sort of base order by descending
            # priority
            key = (-self.slo.priority_of(request), self.base.key(request))
            self._key_cache[request.req_id] = key
        return key

    def batch_limit(self, executor: MachineExecutor, max_batch: int) -> int:
        return self.base.batch_limit(executor, max_batch)


class DeadlinePreemptor:
    """Evicts a low-priority resident when a prefill would miss its SLO.

    Each scheduling round on a full machine, the simulator asks for a
    victim given the current queue and resident batch.  One is returned
    only when every condition holds:

    * the highest-priority queued request has a TTFT SLO,
    * its remaining slack (deadline minus now minus its prefill cost) is
      below ``headroom * ttft_slo``,
    * some resident request belongs to a strictly lower class.

    The victim is the lowest-priority resident, newest admission first
    (ties by highest ``req_id``) — deterministic, and it unwinds the most
    recent low-priority admission rather than one deep into its decode.

    ``health`` (optional) makes the preemptor failure-aware: a callable
    ``(executor, now) -> state`` reporting the hosting machine's health
    (the :meth:`~repro.serving.FaultSchedule.health_state` vocabulary).
    A victim's free re-admission lands back on the *same* machine, so
    evicting one on a machine that is straggling, degraded, or about to
    die trades a healthy resident's progress for a prefill that machine
    can no longer serve on time — when the machine is anything but
    ``"ok"`` no victim is returned.  Pure schedule lookup, so the fused
    and stepped loops agree bit-exactly.
    """

    def __init__(
        self,
        policy: BatchingPolicy,
        slo: SLOPolicy,
        health: typing.Callable[[MachineExecutor, float], str] | None = None,
    ) -> None:
        self.policy = policy
        self.slo = slo
        self.health = health

    def victim(
        self,
        now: float,
        queue: list[Request],
        active: list[ActiveEntry],
        executor: MachineExecutor,
    ) -> ActiveEntry | None:
        if self.health is not None and self.health(executor, now) != "ok":
            return None
        head = queue[self.policy.select(queue)]
        cls = self.slo.class_of(head)
        if cls.ttft_slo is None:
            return None
        candidates = []
        for entry in active:
            if self.slo.priority_of(entry.request) < cls.priority:
                candidates.append(entry)
        if not candidates:
            return None
        deadline = head.arrival + cls.ttft_slo
        slack = deadline - now - executor.prefill_seconds(head.prompt_len)
        if slack > self.slo.headroom * cls.ttft_slo:
            return None
        return min(
            candidates,
            key=lambda a: (
                self.slo.priority_of(a.request),
                -a.admitted_at,
                -a.request.req_id,
            ),
        )

    def next_trigger(
        self,
        now: float,
        queue: list[Request],
        active: list[ActiveEntry],
        executor: MachineExecutor,
    ) -> float | None:
        """Earliest time :meth:`victim` could stop returning ``None``.

        Valid while ``queue`` and ``active`` are unchanged — exactly the
        span a macro-stepped machine holds its batch fixed for.  ``None``
        means *never* under the current state (queue head has no TTFT
        SLO, or no lower-class resident exists).  The returned time is a
        conservative lower bound: :meth:`victim`'s slack test subtracts
        ``now`` *inside* the comparison while this solves for it
        algebraically, so a tiny guard band absorbs the float re-rounding
        — boundaries inside the band simply fall back to the exact
        per-boundary check, which remains the source of truth.
        """
        head = queue[self.policy.select(queue)]
        cls = self.slo.class_of(head)
        if cls.ttft_slo is None:
            return None
        if not any(
            self.slo.priority_of(a.request) < cls.priority for a in active
        ):
            return None
        trigger = (
            head.arrival
            + cls.ttft_slo
            - executor.prefill_seconds(head.prompt_len)
            - self.slo.headroom * cls.ttft_slo
        )
        return trigger - 1e-9 * max(1.0, abs(trigger))
