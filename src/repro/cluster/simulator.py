"""The cluster simulator: routed queues, priorities, preemption.

:class:`ClusterSimulator` specialises the machine-count-agnostic serving
loop (:class:`~repro.serving.ServingSimulator`) for a front-door
architecture: instead of every machine admitting from one shared queue,
a :class:`~repro.cluster.routers.Router` assigns each arrival to a
per-machine queue at ingest time, admission within a machine is ordered
by priority class (base batching policy within a class), and — when the
:class:`~repro.cluster.slo.SLOPolicy` enables it — a deadline-threatened
high-priority prefill preempts the newest low-priority resident.

With one machine, the round-robin router, and a single priority class,
every specialisation collapses to the base simulator exactly (same event
trace, bit-identical metrics) — a property the test suite pins.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from ..core import HermesConfig
from ..hardware import Machine
from ..models import ModelSpec
from ..serving import (
    BatchingPolicy,
    MachineGroup,
    Request,
    ServingConfig,
    ServingSimulator,
)
from ..serving.simulator import Preemptor, _RunState
from ..telemetry.events import ClassInfo, RunStarted
from .report import ClusterReport
from .routers import HealthAwareRouter, HealthMonitor, Router, get_router
from .slo import DeadlinePreemptor, PriorityOrderedPolicy, SLOPolicy


@dataclasses.dataclass(frozen=True)
class ClusterConfig(ServingConfig):
    """Serving knobs plus the cluster front door."""

    num_machines: int = 2
    #: router name (see :data:`repro.cluster.routers.ROUTERS`)
    router: str = "round-robin"
    #: seed for routers that randomise (power-of-two probes)
    router_seed: int = 0
    #: wrap the router in :class:`~repro.cluster.routers.HealthAwareRouter`
    #: (skip down/partitioned machines, demote EWMA-detected stragglers);
    #: meaningful only with a fault schedule — without one every machine
    #: is always healthy and the wrapper is skipped entirely
    health_aware: bool = False


class ClusterSimulator(ServingSimulator):
    """N replicated Hermes machines behind a routing front door."""

    def __init__(
        self,
        model: ModelSpec | str,
        policy: BatchingPolicy | str = "fcfs",
        config: ClusterConfig | None = None,
        *,
        slo: SLOPolicy | None = None,
        router: Router | str | None = None,
        machine: Machine | None = None,
        hermes_config: HermesConfig | None = None,
        trace=None,
        granularity: int = 64,
        seed: int = 7,
        fleet: typing.Sequence[MachineGroup] | None = None,
    ) -> None:
        super().__init__(
            model,
            policy,
            config or ClusterConfig(),
            machine=machine,
            hermes_config=hermes_config,
            trace=trace,
            granularity=granularity,
            seed=seed,
            fleet=fleet,
        )
        self.slo = slo or SLOPolicy()
        #: router override: an instance is reused as-is (caller owns its
        #: state); a name is instantiated fresh per run
        self._router_spec = router

    # ------------------------------------------------------------------
    def _make_router(self) -> Router:
        spec = self._router_spec
        if spec is None:
            spec = getattr(self.config, "router", "round-robin")
        seed = getattr(self.config, "router_seed", 0)
        return get_router(spec, seed=seed)

    def _build_state(self, workload: list[Request]) -> _RunState:
        machines = self.config.num_machines
        state = _RunState(workload, machines, num_queues=machines)
        router = self._make_router()
        faults = self.config.faults
        #: routing-time clock for the health closure — ``route`` has no
        #: time parameter, so ``assign`` stamps it before delegating
        clock = [0.0]
        monitor: HealthMonitor | None = None
        if faults is not None and getattr(self.config, "health_aware",
                                          False):
            monitor = HealthMonitor()

            def unhealthy(m: int) -> bool:
                now = clock[0]
                return (faults.is_down(m, now)
                        or faults.is_partitioned(m, now)
                        or monitor.demoted(m))

            router = HealthAwareRouter(router, unhealthy)
            state.observe_step = monitor.observe
        if getattr(router, "needs_throughputs", False):
            router.bind_fleet([
                executor.estimated_tokens_per_second()
                for executor in self.executors
            ])
        if faults is not None and faults.degrades:
            bound_monitor = monitor

            def on_degrade(machine: int) -> None:
                # a renegotiated machine is legitimately slower: relearn
                # its straggler baseline, and re-feed throughput-aware
                # routers the degraded tokens/sec estimates so "least
                # drain time" stays true on the diminished fleet
                if bound_monitor is not None:
                    bound_monitor.rebaseline(machine)
                if getattr(router, "needs_throughputs", False):
                    router.bind_fleet([
                        executor.estimated_tokens_per_second()
                        for executor in self.executors
                    ])

            state.on_degrade = on_degrade

        def assign(request: Request, now: float) -> int:
            clock[0] = now
            target = router.route(request, state.loads())
            if faults is not None and faults.is_partitioned(target, now):
                # a router<->machine partition is a network fact, not a
                # policy choice: *no* router can hand work to a machine
                # it cannot reach.  Probe linearly to the next reachable
                # machine; with the whole fleet partitioned the choice
                # stands and the queue drains on reconnection.
                for k in range(1, machines):
                    candidate = (target + k) % machines
                    if not faults.is_partitioned(candidate, now):
                        target = candidate
                        break
            return target

        state.assign = assign
        self._last_router_name = router.name
        return state

    def _admission_policy(self) -> BatchingPolicy:
        return PriorityOrderedPolicy(self.policy, self.slo)

    def _run_started_event(self) -> RunStarted:
        event = super()._run_started_event()
        return dataclasses.replace(
            event,
            router=self._last_router_name,
            classes=tuple(
                ClassInfo(
                    name=c.name,
                    priority=c.priority,
                    ttft_slo=c.ttft_slo,
                    tbt_slo=c.tbt_slo,
                )
                for c in sorted(
                    self.slo.classes, key=lambda c: (-c.priority, c.name)
                )
            ),
            preemptive=self.slo.preemptive,
        )

    def _preemptor(self) -> Preemptor | None:
        if not self.slo.preemptive:
            return None
        unsupported = sorted({
            getattr(executor, "name", type(executor).__name__)
            for executor in self.executors
            if not getattr(executor, "supports_preemption", True)
        })
        if unsupported:
            raise ValueError(
                "slo.preemptive requires every backend to support free "
                f"re-admission after eviction; these do not: "
                f"{', '.join(unsupported)} (see the README capability "
                "matrix)")
        faults = self.config.faults
        health = None
        if faults is not None:
            # a victim's free re-admission lands back on the same
            # machine, so the preemptor must know when that machine is
            # straggling/degraded/dying — resolved by executor identity
            # (the victim call passes the executor, not the index).
            # ``_machine_offset`` maps a shard worker's local executor
            # list onto fleet-global machine ids for the fault queries.
            index = {
                id(ex): m + self._machine_offset
                for m, ex in enumerate(self.executors)
            }

            def health(executor, now: float) -> str:
                return faults.health_state(index[id(executor)], now)

        return DeadlinePreemptor(self._admission_policy(), self.slo,
                                 health=health)

    def run(self, workload, *, tracer=None):
        """Serve ``workload``; dispatches to the sharded coordinator
        when ``config.shards`` is set (see :mod:`repro.cluster.sharded`
        for the partitioning and its bit-equality contract)."""
        if self.config.shards:
            from .sharded import run_sharded

            return run_sharded(self, workload, tracer=tracer)
        return super().run(workload, tracer=tracer)

    def _make_report(self, state: _RunState, makespan: float) -> ClusterReport:
        return ClusterReport(
            policy=self.policy.name,
            num_machines=self.config.num_machines,
            records=list(state.records.values()),
            makespan=makespan,
            queue_samples=state.queue_samples,
            batch_samples=state.batch_samples,
            machine_gpu_busy=state.machine_gpu_busy,
            machine_dimm_busy=state.machine_dimm_busy,
            batch_limit_clamps=state.batch_limit_clamps,
            router=self._last_router_name,
            slo=self.slo,
            domains=self._declared_domains(),
            correlated_outage_seconds=(
                self.config.faults.correlated_outage_within(makespan)
                if self.config.faults is not None else math.nan
            ),
            **self._fault_fields(makespan),
        )
