"""Sharded cluster event loop: one calendar per machine-group shard.

A 1000-machine fleet under one event calendar spends most of its time in
heap churn: every token boundary of every machine is a global event.
But in routed mode the machines are *almost* independent — between two
fault instants, a machine's trajectory depends only on its own queue,
and its queue is fed by a router whose decisions (for the ``shardable``
routers) are a pure function of the request stream, never of live
loads.  The coordinator exploits exactly that:

* the fleet is partitioned into ``config.shards`` contiguous machine
  ranges, each advanced by its own :class:`repro.sim.Simulator`
  calendar (inline, or in a spawned worker process with
  ``config.shard_processes``);
* the router runs *once*, in the coordinator, replaying the unsharded
  routing-call order (arrivals in sorted order, crash refugees at their
  crash instants) — shards receive pre-routed work;
* the only cross-shard interactions are crash migrations, which occur
  exactly at the fault schedule's crash instants, so those instants are
  the *conservative synchronization quanta*: every shard advances to
  the next crash instant, the coordinator exchanges refugees (and the
  next window's arrivals), and the shards advance again.  Fault-free
  runs are one window — zero synchronization.

**Bit-equality contract.** For a fixed scenario and seed, a sharded run
produces the same records (token times, preemptions, migrations), the
same per-machine busy accounting, the same makespan, and the same
derived metrics as the single-calendar reference, for *any* shard count
and for inline and process workers alike — pinned by
``tests/test_sharded.py``.  The shard-local event interleavings differ,
but machines never share calendar-ordered resources across shards:
within a window each machine's trajectory is fully determined by its
own queue, whose contents the coordinator replays exactly.

Known, deliberate exclusions (validated with clear errors):

* routers that read live loads (least-loaded, power-of-two,
  throughput-least-loaded) and ``health_aware`` wrapping — their
  decisions depend on cross-shard state at every arrival;
* router partitions — the reference routes around a partition at
  *ingest* time, which the coordinator (routing at arrival time)
  cannot replicate exactly;
* with the round-robin router under crash faults, arrivals landing at
  exactly a crash instant interleave with that instant's migrations by
  heap order in the reference; the coordinator fixes the order
  (arrivals first).  Session-affinity routing is immune (targets are
  order-independent), which is what the fault equality tests use.

One observability-only caveat: ``queue_samples`` records an arrival as
*queued* when some machine's loop top ingests it, and in the reference
that can be a machine outside the arrival's destination shard (every
machine bounds its spans at the fleet's next arrival).  Sharded runs
ingest at the destination shard's first boundary instead, so the
queue-depth series can mark a waiting arrival visible slightly later.
No scheduling decision reads that series — admission always happens at
the destination machine's own loop tops, which are identical — so
records, busy time, makespan and batch occupancy stay bit-equal; only
``mean_queue_depth`` may differ marginally.

**Composing with** ``fidelity: fast`` **changes the contract.**  The
bit-equality above is the *exact*-mode contract.  In fast mode the
coordinator additionally hands each shard the per-machine arrival
instants (``span_bounds``), so executors bound their closed-form spans
at arrivals *targeting that machine* rather than at every global
arrival — admission instants are unchanged (a foreign arrival can never
join this machine's batch), but the uniform token spacing inside a span
depends on the span's length, so fast+sharded is **not** bit-equal to
fast-unsharded or to exact mode.  Its contract is the fast-fidelity
one: deterministic run-to-run, and within the documented distribution
tolerances of the exact reference — pinned by ``tests/test_fidelity.py``
and ``tools/check_sharded_drift.py``.
"""

from __future__ import annotations

import dataclasses
import heapq
import traceback
import types
import typing

from ..serving.metrics import RequestRecord
from ..serving.simulator import _RunState
from ..sim import Resource, Simulator
from ..telemetry.events import RequestMigrated, RequestRouted, RunEnded

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..serving.workload import Request
    from .simulator import ClusterSimulator

#: a migrated request's portable record state:
#: (machine, prefill_start, token_times, preemptions, migrations)
_Snapshot = tuple[int, float | None, tuple[float, ...], int, int]


class _Recorder:
    """Minimal tracer: buffer events for the coordinator to merge."""

    enabled = True

    def __init__(self) -> None:
        self.events: list = []

    def emit(self, event) -> None:
        self.events.append(event)


class _ShardState(_RunState):
    """Run state for one shard of a larger fleet.

    Arrays, queues and wake signals are *fleet-global* sized and indexed
    by global machine id — the shard's machine processes run unmodified
    — but only the slice ``[lo, hi)`` is ever touched.  Routing is a
    lookup into coordinator-precomputed targets, and a crash migration
    lands in the ``outbox`` (with a record snapshot) instead of being
    re-routed locally: the coordinator routes it at the window barrier.
    """

    def __init__(
        self,
        workload: list["Request"],
        targets: dict[int, int],
        num_machines: int,
    ) -> None:
        super().__init__(workload, num_machines, num_queues=num_machines)
        self._targets = dict(targets)
        self.assign = self._assign
        #: ``(request, from_machine, snapshot)`` triples awaiting the
        #: coordinator's barrier routing
        self.outbox: list[tuple["Request", int, _Snapshot]] = []

    def _assign(self, request: "Request", now: float) -> int:
        return self._targets[request.req_id]

    def migrate(
        self, request: "Request", from_machine: int, now: float
    ) -> None:
        record = self.records[request.req_id]
        record.needs_prefill = True
        record.migrations += 1
        self.outbox.append((request, from_machine, (
            record.machine,
            record.prefill_start,
            tuple(record.token_times),
            record.preemptions,
            record.migrations,
        )))
        # the request left this shard: sample the (possibly dropped)
        # local depth so the coordinator's delta merge stays exact
        self.note_queue(now)


def _fleet_slice(fleet, lo: int, hi: int):
    """The machine groups covering global machines ``[lo, hi)``."""
    groups = []
    pos = 0
    for group in fleet:
        g_lo, g_hi = pos, pos + group.count
        pos = g_hi
        take = min(hi, g_hi) - max(lo, g_lo)
        if take > 0:
            groups.append(dataclasses.replace(group, count=take))
    return tuple(groups)


class _ShardRunner:
    """One shard: a child cluster simulator driven window-by-window.

    The child is a plain :class:`ClusterSimulator` over the fleet slice
    ``[lo, hi)`` with sharding disabled; its unmodified machine
    processes are registered on a private calendar against a
    :class:`_ShardState`, and the coordinator drives that calendar
    through the engine's resumable ``run(until=...)`` contract.  The
    same class runs inline in the coordinator or inside a spawned
    worker (:func:`_shard_worker_main`) — identical results either way.
    """

    def __init__(
        self,
        *,
        model,
        policy,
        slo,
        machine,
        hermes_config,
        trace,
        granularity,
        seed,
        config,
        fleet,
        lo,
        hi,
        workload,
        targets,
        windowed,
        tracing,
        span_bounds,
    ) -> None:
        from .simulator import ClusterSimulator

        child_config = dataclasses.replace(
            config, num_machines=hi - lo, shards=0, shard_processes=False
        )
        child = ClusterSimulator(
            model,
            policy,
            child_config,
            slo=slo,
            machine=machine,
            hermes_config=hermes_config,
            trace=trace,
            granularity=granularity,
            seed=seed,
            fleet=_fleet_slice(fleet, lo, hi),
        )
        child._machine_offset = lo
        self.sim = Simulator()
        self.state = _ShardState(
            list(workload), targets, config.num_machines
        )
        self.state.sim = self.sim
        self.state.expect_external = windowed
        self.state.span_bounds = span_bounds
        self.tracer = _Recorder() if tracing else None
        if self.tracer is not None:
            self.state.tracer = self.tracer
        for local_m, executor in enumerate(child.executors):
            m = lo + local_m
            resource = Resource(f"machine-{m}")
            self.sim.process(
                child._machine_proc(
                    self.sim, self.state, m, executor, resource
                ),
                name=f"machine-{m}",
            )
        self._pending: list[tuple["Request", int, _Snapshot]] | None = None

    # -- coordinator protocol ------------------------------------------
    def advance(
        self, until: float | None
    ) -> list[tuple["Request", int, _Snapshot]]:
        """Run the calendar to ``until``; return the window's outbox."""
        self.sim.run(until=until)
        if until is not None and self.sim.now < until:
            # quiescent before the barrier (everything parked): land on
            # it anyway so barrier deliveries fire at the barrier time
            self.sim.now = until
        outbox = self.state.outbox
        self.state.outbox = []
        return outbox

    def start_advance(self, until: float | None) -> None:
        self._pending = self.advance(until)

    def join_advance(self) -> list[tuple["Request", int, _Snapshot]]:
        out, self._pending = self._pending, None
        return out

    def deliver(
        self, transfers: list[tuple["Request", _Snapshot, int]]
    ) -> None:
        """Accept crash refugees routed to this shard at the barrier."""
        state = self.state
        now = self.sim.now
        for request, snap, target in transfers:
            machine, prefill_start, token_times, preempts, migs = snap
            state.records[request.req_id] = RequestRecord(
                request=request,
                machine=machine,
                prefill_start=prefill_start,
                token_times=list(token_times),
                preemptions=preempts,
                migrations=migs,
                needs_prefill=True,
            )
            state.queues[target].append(request)
            state.queued_count += 1
            state.note_queue(now)
            self.sim.fire(state.wake_signals[target])

    def extend(self, batch: list[tuple["Request", int]]) -> None:
        """Append the next window's (pre-routed) arrivals."""
        state = self.state
        for request, target in batch:
            state.workload.append(request)
            state.records[request.req_id] = RequestRecord(request=request)
            state._targets[request.req_id] = target
            if state.span_bounds is not None:
                # windows arrive in time order, so appending keeps the
                # per-machine bound lists sorted and the cursors valid
                state.span_bounds[target].append(request.arrival)
            # a machine parked before this arrival was known bounded its
            # sleep without it; wake it to re-plan (a no-op loop pass
            # when it was bounded tighter anyway)
            self.sim.fire(state.wake_signals[target])

    def mark_final(self) -> None:
        """No more windows: idle machines may park unboundedly again."""
        self.state.expect_external = False

    def finish(self) -> dict:
        state = self.state
        return {
            "records": dict(state.records),
            "gpu_busy": list(state.machine_gpu_busy),
            "dimm_busy": list(state.machine_dimm_busy),
            "queue_samples": list(state.queue_samples),
            "batch_samples": list(state.batch_samples),
            "clamps": state.batch_limit_clamps,
            "makespan": self.sim.now,
            "events": (
                list(self.tracer.events)
                if self.tracer is not None
                else None
            ),
        }


def _shard_worker_main(conn, payload: dict) -> None:
    """Worker-process entry: serve the coordinator's shard protocol."""
    try:
        runner = _ShardRunner(**payload)
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "advance":
                conn.send(runner.advance(msg[1]))
            elif op == "deliver":
                runner.deliver(msg[1])
                conn.send(None)
            elif op == "extend":
                runner.extend(msg[1])
                conn.send(None)
            elif op == "final":
                runner.mark_final()
                conn.send(None)
            elif op == "finish":
                conn.send(runner.finish())
                conn.close()
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown shard op {op!r}")
    except BaseException:  # pragma: no cover - surfaced coordinator-side
        try:
            conn.send(("__shard_error__", traceback.format_exc()))
        except Exception:
            pass
        raise


class _ProcessShard:
    """Coordinator-side handle to a spawned shard worker."""

    def __init__(self, ctx, payload: dict) -> None:
        parent, child = ctx.Pipe()
        self.conn = parent
        self.proc = ctx.Process(
            target=_shard_worker_main, args=(child, payload)
        )
        self.proc.start()
        child.close()

    def _call(self, *msg):
        self.conn.send(msg)
        return self._recv()

    def _recv(self):
        out = self.conn.recv()
        if (isinstance(out, tuple) and out
                and out[0] == "__shard_error__"):
            self.proc.join()
            raise RuntimeError(f"shard worker failed:\n{out[1]}")
        return out

    def start_advance(self, until: float | None) -> None:
        self.conn.send(("advance", until))

    def join_advance(self):
        return self._recv()

    def deliver(self, transfers) -> None:
        self._call("deliver", transfers)

    def extend(self, batch) -> None:
        self._call("extend", batch)

    def mark_final(self) -> None:
        self._call("final")

    def finish(self) -> dict:
        out = self._call("finish")
        self.proc.join()
        return out


def _merge_samples(
    per_shard: list[list[tuple[float, float]]],
) -> list[tuple[float, float]]:
    """Recombine shard-local depth samples into the global series.

    Each shard samples its *local* depth; the global depth is their
    sum.  Replaying every sample as a delta, time-sorted (stable within
    a shard), yields a series whose value at every distinct time equals
    the reference run's — intra-instant orderings differ but carry zero
    weight in every time-weighted statistic, and the depths are
    integer-valued floats, so the sums are exact.
    """
    deltas: list[tuple[float, int, int, float]] = []
    for s_idx, samples in enumerate(per_shard):
        prev = 0.0
        for i, (t, depth) in enumerate(samples):
            deltas.append((t, s_idx, i, depth - prev))
            prev = depth
    deltas.sort(key=lambda e: (e[0], e[1], e[2]))
    merged: list[tuple[float, float]] = []
    depth = 0.0
    for t, _, _, d in deltas:
        depth += d
        merged.append((t, depth))
    return merged


def run_sharded(
    cluster_sim: "ClusterSimulator",
    workload: list["Request"],
    *,
    tracer=None,
):
    """Serve ``workload`` on ``cluster_sim`` with a sharded event loop.

    See the module docstring for the partitioning, the synchronization
    quanta, and the bit-equality contract with the single-calendar
    reference.
    """
    cfg = cluster_sim.config
    machines = cfg.num_machines
    shards = cfg.shards
    if not workload:
        raise ValueError("workload must be non-empty")
    if shards < 1:  # pragma: no cover - dispatch guard
        raise ValueError("run_sharded needs config.shards >= 1")
    if shards > machines:
        raise ValueError(
            f"shards ({shards}) cannot exceed num_machines ({machines})")
    if getattr(cfg, "health_aware", False):
        raise ValueError(
            "sharded runs cannot use health_aware routing: its "
            "decisions depend on live cross-shard load and health state")
    router = cluster_sim._make_router()
    if not getattr(router, "shardable", False):
        raise ValueError(
            f"router {router.name!r} is not shardable: its decisions "
            "depend on live cross-shard loads (see Router.shardable)")
    faults = cfg.faults
    if faults is not None:
        faults.validate_fleet(machines)
        if faults.partitions:
            raise ValueError(
                "sharded runs cannot replay router partitions: the "
                "reference routes around a partition at ingest time, "
                "which arrival-time routing cannot replicate")
    ordered = sorted(workload, key=lambda r: (r.arrival, r.req_id))
    ids = [r.req_id for r in ordered]
    if len(set(ids)) != len(ids):
        raise ValueError("workload req_ids must be unique")

    barriers: list[float] = (
        sorted(set(faults._crash_starts)) if faults is not None else []
    )
    windowed = bool(barriers)
    bounds = [
        ((s * machines) // shards, ((s + 1) * machines) // shards)
        for s in range(shards)
    ]
    shard_of = [0] * machines
    for s_idx, (lo, hi) in enumerate(bounds):
        for m in range(lo, hi):
            shard_of[m] = s_idx
    #: shardable routers never read loads — only the fleet size
    loads_stub = [0.0] * machines
    tracing = tracer is not None and getattr(tracer, "enabled", False)
    #: req_id -> shard holding its authoritative record (last routing)
    owner: dict[int, int] = {}
    arr_idx = 0

    def take_until(bound: float | None) -> list[list]:
        """Route arrivals up to ``bound`` (inclusive; None = all)."""
        nonlocal arr_idx
        batches: list[list] = [[] for _ in range(shards)]
        while arr_idx < len(ordered) and (
            bound is None or ordered[arr_idx].arrival <= bound
        ):
            request = ordered[arr_idx]
            arr_idx += 1
            target = router.route(request, loads_stub)
            owner[request.req_id] = shard_of[target]
            batches[shard_of[target]].append((request, target))
        return batches

    initial = take_until(barriers[0] if windowed else None)
    #: fast fidelity only: per-machine arrival instants from the
    #: pre-routed targets, so each machine bounds its closed-form spans
    #: (and idle parks) at the arrivals that can actually join it —
    #: the coarser truncation is what lets a 1000-machine fleet keep
    #: long spans (see the fast-mode caveat in the module docstring)
    fast = cfg.fidelity == "fast"

    def _bounds_for(s_idx: int, lo: int, hi: int):
        if not fast:
            return None
        per_machine: dict[int, list[float]] = {
            m: [] for m in range(lo, hi)
        }
        for request, target in initial[s_idx]:
            per_machine[target].append(request.arrival)
        return per_machine

    payloads = [
        dict(
            model=cluster_sim.model,
            policy=cluster_sim.policy,
            slo=cluster_sim.slo,
            machine=cluster_sim.base_machine,
            hermes_config=cluster_sim._hermes_config,
            trace=cluster_sim._trace,
            granularity=cluster_sim._granularity,
            seed=cluster_sim._seed,
            config=cfg,
            fleet=cluster_sim.fleet,
            lo=lo,
            hi=hi,
            workload=[r for r, _ in initial[s_idx]],
            targets={r.req_id: t for r, t in initial[s_idx]},
            windowed=windowed,
            tracing=tracing,
            span_bounds=_bounds_for(s_idx, lo, hi),
        )
        for s_idx, (lo, hi) in enumerate(bounds)
    ]
    if cfg.shard_processes:
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        handles: list = [_ProcessShard(ctx, p) for p in payloads]
    else:
        handles = [_ShardRunner(**p) for p in payloads]

    def advance_all(until: float | None) -> list[list]:
        for handle in handles:
            handle.start_advance(until)
        return [handle.join_advance() for handle in handles]

    coordinator_events: list = []
    for i, barrier in enumerate(barriers):
        outboxes = advance_all(barrier)
        transfers: list[list] = [[] for _ in range(shards)]
        for outbox in outboxes:
            for request, from_machine, snap in outbox:
                target = router.route(request, loads_stub)
                owner[request.req_id] = shard_of[target]
                transfers[shard_of[target]].append((request, snap, target))
                if tracing:
                    coordinator_events.append(RequestMigrated(
                        time=barrier,
                        req_id=request.req_id,
                        from_machine=from_machine,
                        to_machine=target,
                        generated=len(snap[2]),
                    ))
                    coordinator_events.append(RequestRouted(
                        time=barrier,
                        req_id=request.req_id,
                        machine=target,
                    ))
        for s_idx, batch in enumerate(transfers):
            if batch:
                handles[s_idx].deliver(batch)
        next_bound = barriers[i + 1] if i + 1 < len(barriers) else None
        arrivals = take_until(next_bound)
        for s_idx, batch in enumerate(arrivals):
            if batch:
                handles[s_idx].extend(batch)
        if next_bound is None:
            for handle in handles:
                handle.mark_final()
    advance_all(None)
    results = [handle.finish() for handle in handles]

    makespan = max(res["makespan"] for res in results)
    merged = types.SimpleNamespace(
        records={
            r.req_id: results[owner[r.req_id]]["records"][r.req_id]
            for r in ordered
        },
        queue_samples=_merge_samples(
            [res["queue_samples"] for res in results]
        ),
        batch_samples=_merge_samples(
            [res["batch_samples"] for res in results]
        ),
        machine_gpu_busy=[
            sum(res["gpu_busy"][m] for res in results)
            for m in range(machines)
        ],
        machine_dimm_busy=[
            sum(res["dimm_busy"][m] for res in results)
            for m in range(machines)
        ],
        batch_limit_clamps=sum(res["clamps"] for res in results),
    )
    cluster_sim._last_router_name = router.name
    if tracing:
        tracer.emit(cluster_sim._run_started_event())
        streams = [res["events"] for res in results]
        streams.append(coordinator_events)
        for event in heapq.merge(*streams, key=lambda e: e.time):
            tracer.emit(event)
        tracer.emit(RunEnded(time=makespan, makespan=makespan))
    return cluster_sim._make_report(merged, makespan)
