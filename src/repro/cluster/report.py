"""Cluster-level metrics: per-class SLO attainment and fairness.

Extends :class:`~repro.serving.ServingReport` with the questions an
operator of a multi-tenant cluster asks: did each priority class meet its
TTFT/TBT deadlines, how evenly was service spread across tenants, and
how balanced were the machines?

SLO semantics (documented in the README's scenario section):

* a request **attains its TTFT SLO** when ``ttft <= ttft_slo``;
* a request **attains its TBT SLO** when *every* inter-token gap is
  ``<= tbt_slo`` (a preemption-induced stall therefore fails it — the
  cost of preemption is charged where it lands);
* **joint attainment** requires both, with an absent deadline vacuously
  met.  Per-class attainment is the fraction of *all* the class's
  requests attaining — a request the run never finished attains nothing,
  so crashes cannot masquerade as latency improvements.

Fairness is Jain's index over per-tenant decode service rates (tokens
delivered per second of end-to-end residence): 1.0 means every tenant
saw identical service, 1/n means one tenant got everything.
"""

from __future__ import annotations

import dataclasses

import math

from ..serving import RequestRecord, ServingReport, percentile_or_nan
from .slo import PriorityClass, SLOPolicy


@dataclasses.dataclass
class ClusterReport(ServingReport):
    """Aggregate outcome of one cluster-simulation run."""

    router: str = "round-robin"
    slo: SLOPolicy = dataclasses.field(default_factory=SLOPolicy)
    #: declared failure domains as ``(name, member_machines)`` pairs
    #: (empty when the run declared none)
    domains: tuple = ()
    #: total time ≥ 2 machines of one domain were simultaneously down —
    #: the signature of a correlated (rack-level) outage; ``nan`` when
    #: no domains were declared (rendered as "—")
    correlated_outage_seconds: float = math.nan

    # ---- failure domains ---------------------------------------------
    def domain_availability(self) -> dict[str, float]:
        """Per-domain availability over the run, by domain name.

        A domain's availability is the machine-weighted mean of its
        members' availability: ``1 - downtime / (makespan * members)``.
        Empty (no domains declared) or all-1.0 (domains but no injected
        downtime) distinguishes "not modelled" from "nothing failed".
        """
        if not self.domains or self.makespan <= 0:
            return {}
        out: dict[str, float] = {}
        for name, members in self.domains:
            total = self.makespan * len(members)
            down = sum(
                self.machine_downtime[m]
                for m in members
                if m < len(self.machine_downtime)
            )
            out[name] = max(0.0, 1.0 - down / total)
        return out

    # ---- per-class views ---------------------------------------------
    @property
    def class_names(self) -> list[str]:
        """Declared classes, highest priority first (ties by name)."""
        ordered = sorted(self.slo.classes, key=lambda c: (-c.priority, c.name))
        return [c.name for c in ordered]

    def class_records(self, name: str) -> list[RequestRecord]:
        return [r for r in self.records if r.request.class_name == name]

    def _class_completed(self, name: str) -> list[RequestRecord]:
        return [r for r in self.class_records(name) if r.finished]

    # Per-class percentiles follow the base report's "no data is nan"
    # convention: a class with no completed requests (or no recorded
    # gaps) reports ``nan``, rendered as "—" in the experiment tables.
    def class_ttft_percentile(self, name: str, p: float) -> float:
        done = self._class_completed(name)
        return percentile_or_nan([r.ttft for r in done], p)

    def class_tbt_percentile(self, name: str, p: float) -> float:
        gaps = [g for r in self._class_completed(name) for g in r.tbts]
        return percentile_or_nan(gaps, p)

    def class_e2e_percentile(self, name: str, p: float) -> float:
        done = self._class_completed(name)
        return percentile_or_nan([r.e2e_latency for r in done], p)

    def class_queue_wait_percentile(self, name: str, p: float) -> float:
        """Arrival -> prefill-start scheduling delay within one class."""
        done = self._class_completed(name)
        return percentile_or_nan([r.queue_wait for r in done], p)

    # ---- SLO attainment ----------------------------------------------
    def request_attains(self, record: RequestRecord) -> tuple[bool, bool]:
        """(TTFT met, TBT met) for one completed request."""
        cls = self.slo.class_of(record.request)
        ttft_ok = cls.ttft_slo is None or record.ttft <= cls.ttft_slo
        if cls.tbt_slo is None:
            tbt_ok = True
        else:
            tbt_ok = all(g <= cls.tbt_slo for g in record.tbts)
        return ttft_ok, tbt_ok

    def slo_attainment(self, name: str) -> dict[str, float]:
        """Fractions of class ``name``'s requests meeting their SLOs.

        Keys: ``ttft``, ``tbt``, ``joint``.  The denominator is *every*
        request of the class: one the run never finished (stranded on a
        machine that never restarted) attains nothing — dropping it from
        the count would make a crash look like a latency improvement.
        Fault-free runs complete every request, so there this equals the
        completed-only fraction.  A class with no requests at all has
        nothing to attain over: every fraction is ``nan``.
        """
        records = self.class_records(name)
        if not records:
            return {"ttft": math.nan, "tbt": math.nan, "joint": math.nan}
        flags = [
            self.request_attains(r) if r.finished else (False, False)
            for r in records
        ]
        n = len(flags)
        return {
            "ttft": sum(1 for t, _ in flags if t) / n,
            "tbt": sum(1 for _, b in flags if b) / n,
            "joint": sum(1 for t, b in flags if t and b) / n,
        }

    def class_of(self, name: str) -> PriorityClass:
        """The declared class object for ``name``."""
        for cls in self.slo.classes:
            if cls.name == name:
                return cls
        raise KeyError(f"unknown class {name!r}")

    # ---- fairness and goodput ----------------------------------------
    @property
    def goodput(self) -> float:
        """Met-SLO tokens delivered per *available* machine-second.

        The numerator counts tokens only from completed requests that
        jointly attained their class SLOs; the denominator is the fleet's
        machine-seconds minus injected downtime, so a crashed-and-idle
        machine does not dilute the rate of the survivors.  ``nan`` on a
        zero-length run or a fleet that was down for the whole makespan.
        """
        if self.makespan <= 0:
            return math.nan
        available = self.makespan * self.num_machines
        available -= sum(self.machine_downtime)
        if available <= 0:
            return math.nan
        good_tokens = sum(
            len(r.token_times)
            for r in self.completed
            if all(self.request_attains(r))
        )
        return good_tokens / available

    @property
    def machine_seconds_per_good_token(self) -> float:
        """Cost-normalized attainment: machine-seconds per met-SLO token.

        The reciprocal of :attr:`goodput` — what one delivered,
        SLO-meeting token costs in available fleet time.  Lower is
        better; this is the number the capacity planner minimises when
        two fleets both clear the SLO table.  ``nan`` when nothing
        attained (no met-SLO tokens) or the run recorded no available
        machine time.
        """
        rate = self.goodput
        if math.isnan(rate) or rate <= 0:
            return math.nan
        return 1.0 / rate

    def fairness_index(self, by: str = "tenant") -> float:
        """Jain's fairness index over per-group decode service rates.

        ``by`` groups completed requests per ``"tenant"`` or per
        ``"class"``; each group's service rate is its delivered tokens
        divided by its summed end-to-end residence time.
        """
        if by not in ("tenant", "class"):
            raise ValueError("fairness_index groups by 'tenant' or 'class'")
        groups: dict[str, tuple[int, float]] = {}
        for record in self.completed:
            if by == "tenant":
                key = record.request.tenant
            else:
                key = record.request.class_name
            tokens, seconds = groups.get(key, (0, 0.0))
            groups[key] = (
                tokens + len(record.token_times),
                seconds + record.e2e_latency,
            )
        if not groups:
            # nothing completed (e.g. the whole fleet crashed): "no
            # data", nan — same convention as the latency percentiles
            return math.nan
        rates = [t / s for t, s in groups.values() if s > 0]
        if not rates:
            return 1.0
        total = sum(rates)
        return total * total / (len(rates) * sum(r * r for r in rates))
