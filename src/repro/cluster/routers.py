"""Pluggable request routers for the cluster front door.

A router maps each arriving request to a machine index, consulting a
per-machine *load* vector (queued + resident requests) the run state
maintains.  All routers are deterministic given their construction
arguments — power-of-two-choices draws its probes from a seeded
generator, so a (scenario, seed) pair replays exactly.

Shipped routers:

* ``round-robin`` — cycle through machines in arrival order;
* ``least-loaded`` — send to the machine with the smallest load, ties to
  the lowest index;
* ``session-affinity`` — hash the request's tenant to a fixed machine,
  keeping a tenant's KV-cache locality (and hot-set stability) on one
  box;
* ``power-of-two`` — sample two distinct machines and pick the less
  loaded: near-least-loaded balance with O(1) state, the classic
  load-balancing result;
* ``throughput-least-loaded`` — least-loaded with each machine's load
  normalized by its backend's estimated tokens/sec: the right notion of
  "least loaded" on a heterogeneous fleet, where equal queue depths
  mean very different drain times.

Any of them can be wrapped in :class:`HealthAwareRouter` (the cluster
config's ``health_aware`` flag), which overrides choices that land on a
down, partitioned, or straggling machine — stragglers are detected
observationally by the :class:`HealthMonitor` EWMA over served decode
latency, never by peeking at the fault schedule.
"""

from __future__ import annotations

import typing
import zlib

import numpy as np

from ..serving import Request


class Router:
    """Base router: route every request to machine 0."""

    name = "single"
    #: routers that normalize load by machine speed set this; the
    #: cluster simulator then calls :meth:`bind_fleet` before the run
    needs_throughputs = False
    #: a router whose decisions depend only on the request stream (never
    #: on live load values) can be replayed by the sharded coordinator
    #: without simulating the fleet — the requirement for
    #: ``ServingConfig.shards`` (see :mod:`repro.cluster.sharded`)
    shardable = False

    def route(self, request: Request, loads: typing.Sequence[float]) -> int:
        """Machine index for ``request`` given per-machine loads."""
        return 0

    def bind_fleet(self, tokens_per_second: typing.Sequence[float]) -> None:
        """Receive per-machine throughput estimates (no-op by default).

        Called once per run by the cluster simulator, before any
        routing decision, with one estimate per machine index.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class RoundRobinRouter(Router):
    """Cycle through machines in arrival order."""

    name = "round-robin"
    #: the counter ignores loads entirely — decisions are a pure
    #: function of the routing-call order, which the coordinator replays
    shardable = True

    def __init__(self) -> None:
        self._next = 0

    def route(self, request: Request, loads: typing.Sequence[float]) -> int:
        target = self._next % len(loads)
        self._next += 1
        return target


class LeastLoadedRouter(Router):
    """Send each request to the machine with the shortest queue."""

    name = "least-loaded"

    def route(self, request: Request, loads: typing.Sequence[float]) -> int:
        best = 0
        for m, load in enumerate(loads):
            if load < loads[best]:
                best = m
        return best


class SessionAffinityRouter(Router):
    """Pin each tenant to one machine via a stable hash.

    Uses CRC-32 (not Python's randomised ``hash``) so the mapping is
    identical across processes and runs.
    """

    name = "session-affinity"
    #: stateless and order-independent: the target is a pure function
    #: of the tenant, so any routing-call interleaving replays exactly
    shardable = True

    def route(self, request: Request, loads: typing.Sequence[float]) -> int:
        return zlib.crc32(request.tenant.encode()) % len(loads)


class PowerOfTwoRouter(Router):
    """Sample two distinct machines, pick the less loaded one."""

    name = "power-of-two"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def route(self, request: Request, loads: typing.Sequence[float]) -> int:
        n = len(loads)
        if n == 1:
            return 0
        a, b = self._rng.choice(n, size=2, replace=False)
        a, b = int(a), int(b)
        if loads[a] < loads[b]:
            return a
        if loads[b] < loads[a]:
            return b
        return min(a, b)


class ThroughputLeastLoadedRouter(Router):
    """Least *drain time* routing: load normalized by machine speed.

    Uniform least-loaded routing is wrong the moment machines differ —
    three requests queued on a machine that decodes 5x faster drain
    sooner than two on a slow one.  This router divides each machine's
    (queued + resident) load by its backend's estimated tokens/sec
    (bound once per run via :meth:`bind_fleet`) and picks the smallest
    quotient, ties to the lowest index.  On a homogeneous fleet every
    weight is equal and it degenerates to ``least-loaded`` exactly.
    """

    name = "throughput-least-loaded"
    needs_throughputs = True

    def __init__(self) -> None:
        self._weights: list[float] | None = None

    def bind_fleet(self, tokens_per_second: typing.Sequence[float]) -> None:
        if any(t <= 0 for t in tokens_per_second):
            raise ValueError("throughput estimates must be positive")
        self._weights = [float(t) for t in tokens_per_second]

    def route(self, request: Request, loads: typing.Sequence[float]) -> int:
        weights = self._weights
        if weights is None:
            # unbound (e.g. used directly on a ServingSimulator):
            # uniform speeds — plain least-loaded
            weights = [1.0] * len(loads)
        if len(weights) != len(loads):
            raise ValueError(
                f"router bound to {len(weights)} machines but asked to "
                f"route over {len(loads)}")
        best = 0
        best_cost = loads[0] / weights[0]
        for m in range(1, len(loads)):
            cost = loads[m] / weights[m]
            if cost < best_cost:
                best = m
                best_cost = cost
        return best


class HealthMonitor:
    """EWMA straggler detector over observed per-token decode latency.

    The router-side half of failure awareness: routers *know* about
    crashes and partitions (the front door sees connections die), but a
    straggling machine still answers — it is just slow.  The monitor
    watches what the front door can actually observe, normalized decode
    latency (seconds per token at the served batch), smooths it with an
    EWMA per machine, and demotes a machine while its smoothed latency
    exceeds ``threshold`` times the *best latency that same machine has
    ever demonstrated*.  Comparing each machine against its own baseline
    (rather than the fleet best) keeps the detector honest on
    heterogeneous fleets: a backend that is natively 5x slower than its
    neighbours is not a straggler, it is just a slower machine — the
    throughput-aware routers handle that.  A straggler is a machine that
    got slower *than itself*.

    Purely observational — it never changes simulated costs — and fully
    deterministic, so runs replay bit-exactly.
    """

    def __init__(self, alpha: float = 0.25, threshold: float = 3.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1")
        self.alpha = alpha
        self.threshold = threshold
        self._ewma: dict[int, float] = {}
        self._best: dict[int, float] = {}

    def observe(self, machine: int, seconds: float, batch: int) -> None:
        """Fold one decode step (``seconds`` over ``batch`` tokens) in."""
        if batch < 1 or seconds < 0.0:
            return
        per_token = seconds / batch
        prev = self._ewma.get(machine)
        if prev is None:
            ewma = per_token
        else:
            ewma = self.alpha * per_token + (1.0 - self.alpha) * prev
        self._ewma[machine] = ewma
        if per_token < self._best.get(machine, float("inf")):
            self._best[machine] = per_token

    def rebaseline(self, machine: int) -> None:
        """Forget a machine's latency history (post-renegotiation).

        After a partial-degradation fault the machine is *legitimately*
        slower — fewer DIMMs, a derated link — and judging its new
        steady state against the pristine machine's best would demote it
        forever.  Dropping both the EWMA and the best-ever baseline lets
        the monitor relearn what "normal" means for the renegotiated
        hardware, exactly as it did at run start.
        """
        self._ewma.pop(machine, None)
        self._best.pop(machine, None)

    def demoted(self, machine: int) -> bool:
        """True while ``machine`` looks like a straggler."""
        ewma = self._ewma.get(machine)
        best = self._best.get(machine)
        if ewma is None or best is None:
            return False
        return ewma > self.threshold * best

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HealthMonitor(alpha={self.alpha}, "
                f"threshold={self.threshold}, tracked={len(self._ewma)})")


class HealthAwareRouter(Router):
    """Wrap any router with health-based fallback.

    Delegates every decision to the inner router; when the choice lands
    on an unhealthy machine (down, partitioned, or demoted by the
    :class:`HealthMonitor`), re-routes to the least-loaded healthy
    machine instead (ties to the lowest index).  With every machine
    unhealthy the inner choice stands — requests must land *somewhere*,
    and the queue drains when the fleet recovers.

    ``unhealthy(machine) -> bool`` is supplied by the cluster simulator,
    which combines schedule facts (crashes, partitions) with the
    monitor's straggler verdicts at routing time.
    """

    def __init__(
        self,
        inner: Router,
        unhealthy: typing.Callable[[int], bool],
    ) -> None:
        self.inner = inner
        self.unhealthy = unhealthy
        self.name = f"health-aware({inner.name})"

    @property
    def needs_throughputs(self) -> bool:  # type: ignore[override]
        return self.inner.needs_throughputs

    def bind_fleet(self, tokens_per_second: typing.Sequence[float]) -> None:
        self.inner.bind_fleet(tokens_per_second)

    def route(self, request: Request, loads: typing.Sequence[float]) -> int:
        choice = self.inner.route(request, loads)
        if not self.unhealthy(choice):
            return choice
        healthy = [m for m in range(len(loads)) if not self.unhealthy(m)]
        if not healthy:
            return choice
        return min(healthy, key=lambda m: (loads[m], m))


ROUTERS: dict[str, typing.Callable[..., Router]] = {
    "round-robin": RoundRobinRouter,
    "least-loaded": LeastLoadedRouter,
    "session-affinity": SessionAffinityRouter,
    "power-of-two": PowerOfTwoRouter,
    "throughput-least-loaded": ThroughputLeastLoadedRouter,
}


def get_router(name: str | Router, *, seed: int = 0) -> Router:
    """A *fresh* router instance by name (or pass an instance through).

    Routers are stateful (round-robin cursor, power-of-two RNG), so every
    simulation run must start from a new instance for reproducibility;
    ``seed`` feeds the routers that randomise.
    """
    if isinstance(name, Router):
        return name
    try:
        factory = ROUTERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(ROUTERS))
        raise KeyError(
            f"unknown router {name!r}; known routers: {known}"
        ) from None
    if factory is PowerOfTwoRouter:
        return factory(seed=seed)
    return factory()
