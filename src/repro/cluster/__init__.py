"""Cluster-scale serving: routing, priority classes, SLO attainment.

The serving package answers "what latency does one machine's queue see";
this package scales that to the paper's deployment story — a fleet of
budget NDP-DIMM machines behind a routing front door, shared by tenants
with different priorities and SLOs:

* :mod:`~repro.cluster.routers` — pluggable request routing
  (round-robin, least-loaded, session-affinity, power-of-two-choices,
  throughput-weighted least-loaded for heterogeneous fleets);
* :mod:`~repro.cluster.slo` — priority classes with TTFT/TBT deadlines
  and deadline-driven preemptive admission;
* :mod:`~repro.cluster.simulator` — the cluster simulator, a thin
  specialisation of the machine-count-agnostic serving loop;
* :mod:`~repro.cluster.report` — per-class SLO attainment, Jain
  fairness, and per-machine utilization on top of the serving metrics.

Scenario specs under ``scenarios/`` (loaded by :mod:`repro.scenarios`)
drive all of this declaratively.
"""

from .report import ClusterReport
from .routers import (
    ROUTERS,
    HealthAwareRouter,
    HealthMonitor,
    LeastLoadedRouter,
    PowerOfTwoRouter,
    RoundRobinRouter,
    Router,
    SessionAffinityRouter,
    ThroughputLeastLoadedRouter,
    get_router,
)
from .simulator import ClusterConfig, ClusterSimulator
from .slo import (
    DEFAULT_CLASS,
    DeadlinePreemptor,
    PriorityClass,
    PriorityOrderedPolicy,
    SLOPolicy,
)

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "SessionAffinityRouter",
    "PowerOfTwoRouter",
    "ThroughputLeastLoadedRouter",
    "ROUTERS",
    "get_router",
    "HealthMonitor",
    "HealthAwareRouter",
    "PriorityClass",
    "DEFAULT_CLASS",
    "SLOPolicy",
    "PriorityOrderedPolicy",
    "DeadlinePreemptor",
    "ClusterConfig",
    "ClusterSimulator",
    "ClusterReport",
]
