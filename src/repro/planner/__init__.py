"""Capacity planner: the cheapest fleet that meets a scenario's SLOs.

``plan()`` enumerates candidate fleets from the backend/GPU registries,
prunes them analytically with the shared cost kernels, validates only
the cost/capacity Pareto frontier with short seeded simulator runs, and
returns the cheapest fleet whose every SLO-bearing class reaches the
scenario's target attainment::

    from repro.planner import plan
    result = plan("scenarios/mixed_slo_tiny.json", budget=8)
    print(result.best.candidate.describe())

or from the command line::

    python -m repro.experiments plan --scenario scenarios/<file> --budget 8
"""

from .frontier import pareto_frontier
from .plan import PlanResult, ValidationOutcome, plan
from .prune import (
    CandidateAnalysis,
    OfferedLoad,
    analyze_candidate,
    offered_load,
)
from .space import FleetCandidate, default_nominal_batch, enumerate_candidates

__all__ = [
    "CandidateAnalysis",
    "FleetCandidate",
    "OfferedLoad",
    "PlanResult",
    "ValidationOutcome",
    "analyze_candidate",
    "default_nominal_batch",
    "enumerate_candidates",
    "offered_load",
    "pareto_frontier",
    "plan",
]
