"""``python -m repro.experiments plan``: the capacity-planner CLI.

A thin wrapper over :func:`repro.planner.plan` following the
experiments CLI conventions: the human-readable table goes to stdout
(stderr under ``--json``, which reserves stdout for the machine-readable
report), and the exit code says what happened — 0 when a fleet meeting
the SLO table was found, 1 when the whole candidate space failed, 2 on
usage errors (argparse's own convention).
"""

from __future__ import annotations

import argparse
import json
import sys

from .plan import plan


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments plan",
        description=(
            "Find the cheapest fleet that serves a scenario's traffic "
            "within its SLO table."
        ),
    )
    parser.add_argument(
        "--scenario",
        required=True,
        metavar="FILE",
        help="declarative scenario spec (JSON/TOML) to plan capacity for",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="largest machine count a candidate fleet may use "
             "(default: the spec's planner.budget)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="cap every tenant at a few requests for a fast smoke pass",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for frontier validation "
             "(default: REPRO_JOBS env var, else 1)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="write the machine-readable plan to stdout "
             "(the table moves to stderr)",
    )
    args = parser.parse_args(argv)
    if args.budget is not None and args.budget < 1:
        parser.error("--budget must be >= 1")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")

    try:
        result = plan(
            args.scenario,
            budget=args.budget,
            quick=args.quick,
            jobs=args.jobs,
        )
    except (OSError, ValueError) as exc:
        # a bad path or a malformed spec is a usage error, not a
        # planner verdict
        parser.error(str(exc))

    print(result.to_text(), file=sys.stderr if args.json else sys.stdout)
    if args.json:
        json.dump(result.to_json(), sys.stdout, indent=2)
        print()
    return 0 if result.best is not None else 1


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
