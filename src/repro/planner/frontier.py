"""Cost/capacity Pareto frontier over analytically-feasible candidates.

The planner only pays simulator time for fleets that could possibly be
the answer: a candidate that is both more expensive *and* no faster
than another can never be the cheapest SLO-meeting fleet, so it is
dominated and skipped.  The frontier walk is fully deterministic — the
sort key falls back to the candidate's own fields, so equal-cost
equal-capacity ties always resolve the same way regardless of input
order or ``--jobs``.
"""

from __future__ import annotations

import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .prune import CandidateAnalysis


def _order_key(analysis: "CandidateAnalysis"):
    c = analysis.candidate
    return (
        analysis.cost_usd,
        -analysis.fleet_tokens_per_second,
        c.count,
        c.backend,
        c.gpu,
        c.model,
        c.nominal_batch,
    )


def pareto_frontier(
    analyses: typing.Iterable["CandidateAnalysis"],
) -> list["CandidateAnalysis"]:
    """Non-dominated candidates: min cost, max estimated capacity.

    Walking candidates in (cost asc, capacity desc) order, a candidate
    joins the frontier only when it strictly beats every cheaper
    survivor's capacity — anything else is dominated by an
    already-kept fleet.  The result is ordered cheapest-first.
    """
    frontier: list["CandidateAnalysis"] = []
    best_capacity = -math.inf
    for analysis in sorted(analyses, key=_order_key):
        if analysis.fleet_tokens_per_second > best_capacity:
            frontier.append(analysis)
            best_capacity = analysis.fleet_tokens_per_second
    return frontier
