"""Candidate-fleet enumeration for the capacity planner.

A candidate is one *homogeneous* fleet — ``count`` identical machines
running one backend on one GPU for one model at one nominal batch —
drawn from the cross product the scenario's ``planner:`` section allows
(:class:`~repro.scenarios.PlannerSpec`; empty dimensions default to the
full backend/GPU registries and the scenario's own model and batch).
Enumeration order is fully deterministic: models, then backends, then
GPUs, then nominal batches, then counts, each dimension sorted — the
basis of the planner's ``--jobs N`` reproducibility.
"""

from __future__ import annotations

import dataclasses
import typing

from ..hardware import GPU_REGISTRY, Machine, get_gpu, machine_cost_usd
from ..serving import BACKENDS, MachineGroup

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..scenarios import PlannerSpec, Scenario


@dataclasses.dataclass(frozen=True)
class FleetCandidate:
    """One homogeneous fleet the planner may propose."""

    backend: str
    gpu: str  # GPU registry key (lower-case)
    model: str  # model registry name
    count: int
    nominal_batch: int

    def machine(self, base: Machine) -> Machine:
        """The candidate's machine spec: ``base`` with this GPU."""
        return base.with_gpu(get_gpu(self.gpu))

    def cost_usd(self, base: Machine) -> float:
        """Fleet bill of materials (per-machine BOM x count)."""
        return machine_cost_usd(self.machine(base)) * self.count

    def groups(
        self, base: Machine, scenario_model: str
    ) -> tuple[MachineGroup, ...]:
        """The ``fleet:`` description handing this candidate to a run."""
        return (
            MachineGroup(
                count=self.count,
                backend=self.backend,
                machine=self.machine(base),
                model=self.model if self.model != scenario_model else None,
                nominal_batch=self.nominal_batch,
            ),
        )

    def describe(self) -> str:
        return (
            f"{self.count}x {self.backend} on {get_gpu(self.gpu).name} "
            f"({self.model}, batch {self.nominal_batch})"
        )


def default_nominal_batch(max_batch: int) -> int:
    """The simulator's own offline-partition batch for ``max_batch``."""
    return max(2, max_batch // 2)


def enumerate_candidates(
    scenario: "Scenario", spec: "PlannerSpec"
) -> list[FleetCandidate]:
    """Every fleet the ``planner:`` section allows, in stable order."""
    backends = tuple(
        b.lower() for b in (spec.backends or tuple(sorted(BACKENDS)))
    )
    gpus = tuple(g.lower() for g in (spec.gpus or tuple(sorted(GPU_REGISTRY))))
    models = spec.models or (scenario.model,)
    batches = spec.nominal_batches or (
        default_nominal_batch(scenario.config.max_batch),
    )
    counts = tuple(
        c for c in (spec.counts or tuple(range(1, spec.budget + 1)))
        if c <= spec.budget
    )
    return [
        FleetCandidate(
            backend=backend,
            gpu=gpu,
            model=model,
            count=count,
            nominal_batch=batch,
        )
        for model in models
        for backend in sorted(set(backends))
        for gpu in sorted(set(gpus))
        for batch in sorted(set(batches))
        for count in sorted(set(counts))
    ]
