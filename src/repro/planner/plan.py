"""The capacity planner: enumerate, prune, validate, pick the cheapest.

``plan()`` answers "what is the cheapest fleet that serves this
scenario's traffic within its SLO table?" in four deterministic steps:

1. **Enumerate** every candidate fleet the scenario's ``planner:``
   section allows (:func:`~repro.planner.space.enumerate_candidates`).
2. **Prune analytically** with the shared cost kernels
   (:func:`~repro.planner.prune.analyze_candidate`) — memory-infeasible
   Hermes fleets and fleets whose optimistic throughput bound cannot
   cover the offered load never reach the simulator.
3. **Validate the Pareto frontier only**
   (:func:`~repro.planner.frontier.pareto_frontier`): each surviving
   non-dominated candidate gets a short seeded simulator run, fanned
   out over :func:`~repro.experiments.runner.run_grid` workers when the
   scenario came from a file (a path travels to spawn workers; an
   in-memory :class:`~repro.scenarios.Scenario` validates serially).
4. **Pick** the cheapest validated fleet whose every SLO-bearing class
   reaches the spec's ``target_attainment``, breaking cost ties by
   cost-normalized attainment (machine-seconds per met-SLO token) and
   then by the candidate's own fields — same answer at any ``--jobs``.
"""

from __future__ import annotations

import dataclasses
import functools
import math
import pathlib
import typing

from ..experiments.runner import run_grid
from ..scenarios import Scenario, load_scenario
from ..scenarios.spec import scenario_trace
from .frontier import pareto_frontier
from .prune import (
    CandidateAnalysis,
    OfferedLoad,
    analyze_candidate,
    offered_load,
)
from .space import FleetCandidate, enumerate_candidates

if typing.TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..cluster import ClusterReport

#: request cap per tenant under ``--quick`` (CI smoke) validation
QUICK_REQUESTS = 32


@dataclasses.dataclass(frozen=True)
class ValidationOutcome:
    """One frontier candidate's simulator verdict."""

    candidate: FleetCandidate
    cost_usd: float
    passed: bool
    #: why validation failed ("" when it passed): the failing class and
    #: its attainment, or the constructor/run error for a fleet the
    #: simulator rejected outright
    reason: str
    #: per-class joint SLO attainment (SLO-bearing classes only)
    attainment: dict[str, float] = dataclasses.field(default_factory=dict)
    goodput: float = math.nan
    machine_seconds_per_good_token: float = math.nan


@dataclasses.dataclass(frozen=True)
class PlanResult:
    """Everything ``plan()`` decided, including the audit trail."""

    scenario: str
    budget: int
    target_attainment: float
    quick: bool
    load: OfferedLoad
    #: every enumerated candidate's analytic verdict
    analyses: tuple[CandidateAnalysis, ...]
    #: the non-dominated survivors that were handed to the simulator
    frontier: tuple[CandidateAnalysis, ...]
    #: simulator verdicts, frontier order (cheapest first)
    validations: tuple[ValidationOutcome, ...]
    #: the cheapest validated SLO-meeting fleet, or ``None``
    best: ValidationOutcome | None

    @property
    def num_candidates(self) -> int:
        return len(self.analyses)

    @property
    def num_pruned(self) -> int:
        return sum(1 for a in self.analyses if not a.feasible)

    def to_text(self) -> str:
        lines = [
            f"capacity plan: {self.scenario} "
            f"(budget {self.budget}, target attainment "
            f"{self.target_attainment:.0%})",
            f"offered load: {self.load.total_output_tokens} output tokens "
            f"over {self.load.arrival_span:.1f}s arrivals "
            f"-> demanded {self.load.demanded_tokens_per_second:.1f} tok/s",
            f"candidates: {self.num_candidates} enumerated, "
            f"{self.num_pruned} pruned analytically, "
            f"{len(self.frontier)} on the cost/capacity frontier",
            "",
            f"{'fleet':<44} {'cost $':>9} {'est tok/s':>10} {'verdict':<8}",
        ]
        for outcome in self.validations:
            analysis = next(
                a for a in self.frontier if a.candidate == outcome.candidate
            )
            verdict = "PASS" if outcome.passed else "fail"
            lines.append(
                f"{outcome.candidate.describe():<44} "
                f"{outcome.cost_usd:>9.0f} "
                f"{analysis.fleet_tokens_per_second:>10.1f} "
                f"{verdict:<8}"
                + ("" if outcome.passed else f" ({outcome.reason})")
            )
        lines.append("")
        if self.best is None:
            lines.append(
                "no fleet within budget meets the SLO table; cheapest "
                "failure above explains what ran out"
            )
        else:
            lines.append(
                "cheapest SLO-meeting fleet: "
                f"{self.best.candidate.describe()}"
            )
            lines.append(
                f"  cost ${self.best.cost_usd:.0f}, goodput "
                f"{self.best.goodput:.1f} tok/s, "
                f"{self.best.machine_seconds_per_good_token * 1e3:.3f} "
                f"machine-ms per met-SLO token"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable form (``--json``); ``nan`` becomes ``null``."""
        def num(x: float) -> float | None:
            return None if isinstance(x, float) and math.isnan(x) else x

        def cand(c: FleetCandidate) -> dict:
            return {
                "backend": c.backend,
                "gpu": c.gpu,
                "model": c.model,
                "count": c.count,
                "nominal_batch": c.nominal_batch,
            }

        def outcome(o: ValidationOutcome) -> dict:
            return {
                "candidate": cand(o.candidate),
                "cost_usd": o.cost_usd,
                "passed": o.passed,
                "reason": o.reason,
                "attainment": {k: num(v) for k, v in o.attainment.items()},
                "goodput": num(o.goodput),
                "machine_seconds_per_good_token": num(
                    o.machine_seconds_per_good_token
                ),
            }

        return {
            "scenario": self.scenario,
            "budget": self.budget,
            "target_attainment": self.target_attainment,
            "quick": self.quick,
            "offered_load": {
                "total_output_tokens": self.load.total_output_tokens,
                "arrival_span": self.load.arrival_span,
                "slo_slack": self.load.slo_slack,
                "demanded_tokens_per_second": (
                    self.load.demanded_tokens_per_second
                ),
            },
            "num_candidates": self.num_candidates,
            "num_pruned": self.num_pruned,
            "frontier": [
                {
                    "candidate": cand(a.candidate),
                    "cost_usd": a.cost_usd,
                    "est_tokens_per_second": num(a.est_tokens_per_second),
                    "fleet_tokens_per_second": num(
                        a.fleet_tokens_per_second
                    ),
                    "resident_fraction": a.resident_fraction,
                }
                for a in self.frontier
            ],
            "validations": [outcome(o) for o in self.validations],
            "best": None if self.best is None else outcome(self.best),
        }


# ----------------------------------------------------------------------
# simulator validation
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=4)
def _trace(model: str, granularity: int, seed: int):
    """Per-process activation-trace cache (one per model actually run)."""
    return scenario_trace(model, granularity, seed)


@functools.lru_cache(maxsize=4)
def _scenario(path: str) -> Scenario:
    """Per-process scenario cache for spawn workers."""
    return load_scenario(path)


def _quick_scenario(scenario: Scenario) -> Scenario:
    """Truncate every tenant to :data:`QUICK_REQUESTS` requests."""
    tenants = tuple(
        dataclasses.replace(
            t,
            workload=dataclasses.replace(
                t.workload,
                num_requests=min(t.workload.num_requests, QUICK_REQUESTS),
            ),
        )
        for t in scenario.tenants
    )
    return dataclasses.replace(scenario, tenants=tenants)


def _validate(
    scenario: Scenario,
    candidate: FleetCandidate,
    target: float,
    quick: bool,
) -> ValidationOutcome:
    """One short seeded run of ``scenario`` on ``candidate``'s fleet."""
    cost = candidate.cost_usd(scenario.machine)
    if quick:
        scenario = _quick_scenario(scenario)
    variant = dataclasses.replace(
        scenario,
        fleet=candidate.groups(scenario.machine, scenario.model),
    )
    try:
        report: "ClusterReport" = variant.run(
            _trace(scenario.model, scenario.granularity, scenario.trace_seed)
        )
    except (ValueError, MemoryError) as exc:
        # the simulator rejected the fleet outright (e.g. a fault
        # schedule naming machines the candidate does not have, or a
        # Hermes engine that cannot hold the model) — a failed
        # validation, not a planner crash
        return ValidationOutcome(
            candidate=candidate,
            cost_usd=cost,
            passed=False,
            reason=f"simulator rejected fleet: {exc}",
        )
    attainment: dict[str, float] = {}
    failures: list[str] = []
    for cls in variant.slo.classes:
        if cls.ttft_slo is None and cls.tbt_slo is None:
            continue  # no declared deadline -> nothing to attain
        joint = report.slo_attainment(cls.name)["joint"]
        attainment[cls.name] = joint
        if math.isnan(joint):
            continue  # class saw no requests in this workload
        if joint < target:
            failures.append(f"{cls.name} joint {joint:.2f} < {target:.2f}")
    return ValidationOutcome(
        candidate=candidate,
        cost_usd=cost,
        passed=not failures,
        reason="; ".join(failures),
        attainment=attainment,
        goodput=report.goodput,
        machine_seconds_per_good_token=(
            report.machine_seconds_per_good_token
        ),
    )


def _validate_point(
    task: tuple[str, FleetCandidate, float, bool]
) -> ValidationOutcome:
    """Spawn-safe grid point: reload the scenario by path, validate."""
    path, candidate, target, quick = task
    return _validate(_scenario(path), candidate, target, quick)


def _best_key(outcome: ValidationOutcome):
    cost_per_token = outcome.machine_seconds_per_good_token
    if math.isnan(cost_per_token):
        cost_per_token = math.inf
    c = outcome.candidate
    return (
        outcome.cost_usd,
        cost_per_token,
        c.count,
        c.backend,
        c.gpu,
        c.model,
        c.nominal_batch,
    )


# ----------------------------------------------------------------------
# the planner entry point
# ----------------------------------------------------------------------
def plan(
    scenario: Scenario | str | pathlib.Path,
    *,
    budget: int | None = None,
    quick: bool = False,
    jobs: int | None = None,
) -> PlanResult:
    """Find the cheapest fleet serving ``scenario`` within its SLOs.

    ``scenario`` may be a spec path (validation then parallelises over
    ``jobs`` spawn workers) or an in-memory :class:`Scenario` (serial
    validation — the object never crosses a process boundary).
    ``budget`` overrides the spec's ``planner.budget``; ``quick`` caps
    every tenant at :data:`QUICK_REQUESTS` requests for smoke runs.
    """
    path: str | None = None
    if isinstance(scenario, (str, pathlib.Path)):
        path = str(scenario)
        scenario = load_scenario(path)
    spec = scenario.planner
    if budget is not None:
        spec = dataclasses.replace(
            spec,
            budget=int(budget),
            counts=tuple(c for c in spec.counts if c <= int(budget)),
        )

    load = offered_load(scenario)
    analyses = tuple(
        analyze_candidate(c, scenario, load, spec)
        for c in enumerate_candidates(scenario, spec)
    )
    frontier = tuple(pareto_frontier(a for a in analyses if a.feasible))

    target = spec.target_attainment
    if path is not None:
        validations = tuple(
            run_grid(
                _validate_point,
                [(path, a.candidate, target, quick) for a in frontier],
                jobs=jobs,
            )
        )
    else:
        validations = tuple(
            _validate(scenario, a.candidate, target, quick)
            for a in frontier
        )

    passing = [o for o in validations if o.passed]
    best = min(passing, key=_best_key) if passing else None
    return PlanResult(
        scenario=scenario.name,
        budget=spec.budget,
        target_attainment=target,
        quick=quick,
        load=load,
        analyses=analyses,
        frontier=frontier,
        validations=validations,
        best=best,
    )
