"""Analytic pruning: discard candidate fleets without simulating them.

Two pure screens, both built from the shared cost kernels in
:mod:`repro.baselines.base` (the same spellings the serving backends
charge per token, so the planner and the simulator cannot disagree
about what a machine costs):

* **Memory feasibility** — a Hermes machine must hold the model's
  sparse weights on its DIMM pool and the dense weights plus workspace
  on its GPU (:func:`~repro.baselines.base.hermes_memory_feasible`,
  exactly the checks that make engine construction raise).  The
  streamed backends (dense, dejavu) degrade instead of failing — their
  GPU-resident weight fraction
  (:func:`~repro.baselines.base.weights_resident_fraction`) is recorded
  as a diagnostic and their slowness is left to the throughput screen.
* **Throughput lower bound** — the scenario's offered load (exact, from
  the generated workload) must be coverable by the fleet's estimated
  aggregate decode rate.  The estimate
  (:func:`~repro.serving.probe_tokens_per_second`) is heuristic, so it
  is inflated by the spec's ``optimism`` factor before comparing —
  pruning only fleets that miss by a wide margin and never one the
  simulator could validate (pinned by the planner tests).  For
  weight-streaming dense fleets a *sound* PCIe bound
  (:func:`~repro.baselines.base.streamed_token_transfer_floor`) caps
  the optimistic estimate.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from ..baselines.base import (
    hermes_memory_feasible,
    streamed_token_transfer_floor,
    weights_resident_fraction,
)
from ..models import get_model
from ..serving import probe_tokens_per_second
from .space import FleetCandidate

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..scenarios import PlannerSpec, Scenario


@dataclasses.dataclass(frozen=True)
class OfferedLoad:
    """The scenario's traffic, reduced to a demanded token rate.

    ``demanded_tokens_per_second`` is the decode work the whole
    workload carries divided by the window it must roughly fit in —
    the arrival span plus the laxest completion slack any SLO-bound
    request enjoys (TTFT deadline plus its output at the TBT deadline).
    Zero when no class declares a complete TTFT+TBT SLO pair: latency
    then imposes no sustained-rate requirement the planner can bound.
    """

    total_output_tokens: int
    arrival_span: float
    slo_slack: float
    demanded_tokens_per_second: float


def offered_load(scenario: "Scenario") -> OfferedLoad:
    """Exact offered load from the scenario's (seeded) workload."""
    workload = scenario.build_workload()
    total = sum(r.output_len for r in workload)
    span = max((r.arrival for r in workload), default=0.0)
    classes = {c.name: c for c in scenario.slo.classes}
    slack = 0.0
    bounded = False
    for request in workload:
        cls = classes.get(request.class_name)
        if cls is None or cls.ttft_slo is None or cls.tbt_slo is None:
            continue  # no completion deadline -> no rate demand
        bounded = True
        slack = max(slack, cls.ttft_slo + request.output_len * cls.tbt_slo)
    if not bounded or total == 0:
        demanded = 0.0
    else:
        demanded = total / max(span + slack, 1e-12)
    return OfferedLoad(
        total_output_tokens=total,
        arrival_span=span,
        slo_slack=slack,
        demanded_tokens_per_second=demanded,
    )


@dataclasses.dataclass(frozen=True)
class CandidateAnalysis:
    """One candidate's analytic verdict (no simulator involved)."""

    candidate: FleetCandidate
    cost_usd: float
    memory_ok: bool
    #: why memory feasibility failed ("" when it did not)
    memory_reason: str
    #: GPU-resident weight fraction (streamed backends; 1.0 for hermes,
    #: whose weights live on the DIMM pool by construction)
    resident_fraction: float
    #: per-machine probe estimate (nan when memory-infeasible)
    est_tokens_per_second: float
    #: count x estimate — the frontier's capacity axis
    fleet_tokens_per_second: float
    throughput_ok: bool
    cost_ok: bool

    @property
    def feasible(self) -> bool:
        return self.memory_ok and self.throughput_ok and self.cost_ok


def analyze_candidate(
    candidate: FleetCandidate,
    scenario: "Scenario",
    load: OfferedLoad,
    spec: "PlannerSpec",
) -> CandidateAnalysis:
    """Run both analytic screens on one candidate."""
    machine = candidate.machine(scenario.machine)
    model = get_model(candidate.model)
    cost = candidate.cost_usd(scenario.machine)
    cost_ok = spec.max_cost_usd is None or cost <= spec.max_cost_usd

    if candidate.backend == "hermes":
        memory_ok, reason = hermes_memory_feasible(machine, model)
        resident = 1.0
        faults = scenario.config.faults
        if memory_ok and faults is not None and faults.degrades:
            # the scenario injects partial degradation: a candidate is
            # only feasible if it *stays* feasible on the worst-case
            # surviving DIMM pool — otherwise the renegotiation the
            # simulator would attempt raises instead of serving
            worst = min(
                faults.degrade_state(d.machine, math.inf)[0]
                for d in faults.degrades
            )
            degraded = dataclasses.replace(
                machine,
                num_dimms=max(1, int(machine.num_dimms * worst)),
            )
            memory_ok, degraded_reason = hermes_memory_feasible(
                degraded, model
            )
            if not memory_ok:
                reason = (
                    f"after worst-case degrade to {degraded.num_dimms} "
                    f"DIMMs ({worst:.2f} of the pool): {degraded_reason}"
                )
    else:
        memory_ok, reason = True, ""
        resident = weights_resident_fraction(machine, model)

    if not memory_ok:
        return CandidateAnalysis(
            candidate=candidate,
            cost_usd=cost,
            memory_ok=False,
            memory_reason=reason,
            resident_fraction=resident,
            est_tokens_per_second=math.nan,
            fleet_tokens_per_second=math.nan,
            throughput_ok=False,
            cost_ok=cost_ok,
        )

    est = probe_tokens_per_second(
        candidate.backend,
        machine,
        model,
        nominal_batch=candidate.nominal_batch,
        granularity=scenario.granularity,
        seed=scenario.trace_seed,
    )
    fleet_est = est * candidate.count
    upper_bound = fleet_est * spec.optimism
    if candidate.backend == "dense" and resident < 1.0:
        # sound per-machine cap: no pipeline beats the PCIe stream of
        # the non-resident weights, even at the largest admitted batch
        floor = streamed_token_transfer_floor(machine, model, resident)
        pcie_cap = scenario.config.max_batch / floor * candidate.count
        upper_bound = min(upper_bound, pcie_cap)
    throughput_ok = upper_bound >= load.demanded_tokens_per_second
    return CandidateAnalysis(
        candidate=candidate,
        cost_usd=cost,
        memory_ok=True,
        memory_reason="",
        resident_fraction=resident,
        est_tokens_per_second=est,
        fleet_tokens_per_second=fleet_est,
        throughput_ok=throughput_ok,
        cost_ok=cost_ok,
    )
