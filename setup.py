"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on offline machines where PEP 517
editable builds cannot produce a wheel.
"""

from setuptools import setup

setup()
