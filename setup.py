"""Setuptools entry point.

Project metadata lives in ``pyproject.toml``; the src-layout package
discovery is declared here (the single source of truth for it) so that
``pip install -e .`` — including ``--no-use-pep517`` on offline machines
where PEP 517 editable builds cannot produce a wheel — installs ``repro``
without hand-setting ``PYTHONPATH``.
"""

from setuptools import find_packages, setup

setup(
    package_dir={"": "src"},
    packages=find_packages("src"),
)
