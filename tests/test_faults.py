"""Fault injection and failure-aware serving tests.

The contracts pinned here, roughly inside-out:

* **engine** — ``Signal``/``WaitSignal`` interruptible waits: a fire
  wakes every waiter exactly once, deadlines still expire, and a stale
  deadline after a fire is a no-op;
* **schedule** — :class:`FaultSchedule` interval queries (down windows
  include the restart warmup and are half-open, slowdowns compound,
  partitions are routing-only), validation, and the seeded
  :func:`sample_faults` expansion (string-seeded, hence identical in
  every process);
* **serving** — crashes abort in-flight work at the instant, killed
  requests migrate with their generated tokens but *without* their
  KV-cache (the re-prefill is charged honestly), never-restart crashes
  strand work as ``unfinished`` and count against SLO attainment, and
  an all-machines-down run degrades to nan metrics instead of raising;
* **macro-step** — the fused decode path stays bit-identical to the
  stepped reference under every fault kind, for hermes and dense
  fleets, and for the bundled chaos scenario in both routing modes;
* **health** — the EWMA monitor demotes a machine that got slower
  *than itself* (not one that is natively slower than the fleet), and
  health-aware routing beats health-blind on the bundled chaos drill;
* **determinism** — ``--jobs 2`` grids and telemetry streams are
  byte-identical to serial runs, and an *empty* ``FaultSchedule`` is
  bit-identical to ``faults=None`` (the machinery itself is free);
* **telemetry** — fault lifecycle events appear in recorded streams,
  tracing never perturbs the run, the JSONL stream carries the string
  ``health`` column and fault counters, the watch renderer shows them,
  and the Chrome exporter draws outages and migrations.
"""

from __future__ import annotations

import dataclasses
import io
import json
import math
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import HealthMonitor
from repro.experiments import cluster_eval
from repro.experiments.runner import run_grid
from repro.models import get_model
from repro.scenarios import load_scenario
from repro.serving import (
    CrashSpec,
    FaultSchedule,
    LengthDistribution,
    MachineGroup,
    PartitionSpec,
    SampleSpec,
    ServingConfig,
    ServingSimulator,
    StragglerSpec,
    WorkloadConfig,
    generate_workload,
    merge_sampled,
    sample_faults,
)
from repro.sim import Signal, Simulator, Timeout, WaitSignal
from repro.sparsity import TraceConfig, generate_trace
from repro.telemetry import (
    MachineDown,
    MachineHealth,
    MachineUp,
    MetricStreamTracer,
    RecordingTracer,
    RequestMigrated,
    chrome_trace,
)
from repro.telemetry.watch import StreamState

REPO = pathlib.Path(__file__).resolve().parent.parent
CHAOS_SPEC = REPO / "scenarios" / "chaos_mixed_tiny.json"

#: module-level trace: hypothesis examples must not rebuild it
_TRACE = None


def _trace():
    global _TRACE
    if _TRACE is None:
        _TRACE = generate_trace(
            get_model("tiny-test"),
            TraceConfig(prompt_len=16, decode_len=24, granularity=8),
            seed=11,
        )
    return _TRACE


def _workload(num_requests=36, rate=2000.0, seed=9):
    return generate_workload(
        WorkloadConfig(rate=rate, num_requests=num_requests,
                       prompt_lens=LengthDistribution(mean=24),
                       output_lens=LengthDistribution(
                           kind="uniform", mean=12, low=4, high=20)),
        seed=seed)


def _serve(faults, *, machines=2, macro=True, fleet=None, policy="fcfs",
           num_requests=36):
    simulator = ServingSimulator(
        "tiny-test", policy,
        ServingConfig(max_batch=6, num_machines=machines,
                      macro_step=macro, faults=faults),
        trace=_trace(),
        fleet=fleet)
    return simulator.run(list(_workload(num_requests)))


def _record_view(record):
    return (
        record.request.req_id,
        record.machine,
        record.prefill_start,
        record.token_times,
        record.preemptions,
        record.migrations,
    )


def _assert_reports_equal(fused, stepped):
    assert fused.makespan == stepped.makespan
    assert fused.machine_gpu_busy == stepped.machine_gpu_busy
    assert fused.machine_dimm_busy == stepped.machine_dimm_busy
    assert fused.batch_samples == stepped.batch_samples
    assert fused.queue_samples == stepped.queue_samples
    assert ([_record_view(r) for r in fused.records]
            == [_record_view(r) for r in stepped.records])


# ----------------------------------------------------------------------
# engine: interruptible waits
# ----------------------------------------------------------------------
class TestSignal:
    def test_fire_wakes_unbounded_waiter(self):
        sim = Simulator()
        wake = Signal("wake")
        woke_at = []

        def sleeper():
            yield WaitSignal(wake)
            woke_at.append(sim.now)

        def firer():
            yield Timeout(2.0)
            sim.fire(wake)

        sim.process(sleeper())
        sim.process(firer())
        sim.run()
        assert woke_at == [2.0]

    def test_deadline_expires_without_fire(self):
        sim = Simulator()
        wake = Signal()
        woke_at = []

        def sleeper():
            yield WaitSignal(wake, until=1.5)
            woke_at.append(sim.now)

        sim.process(sleeper())
        assert sim.run() == 1.5
        assert woke_at == [1.5]

    def test_fire_beats_deadline_and_stale_entry_is_noop(self):
        sim = Simulator()
        wake = Signal()
        woke_at = []

        def sleeper():
            yield WaitSignal(wake, until=10.0)
            woke_at.append(sim.now)
            # sleep again past the stale deadline entry: if the t=10
            # heap entry re-woke us this wait would end early
            yield WaitSignal(wake, until=20.0)
            woke_at.append(sim.now)

        def firer():
            yield Timeout(1.0)
            sim.fire(wake)

        sim.process(sleeper())
        sim.process(firer())
        assert sim.run() == 20.0
        assert woke_at == [1.0, 20.0]

    def test_fire_wakes_every_waiter_once(self):
        sim = Simulator()
        wake = Signal()
        woke = []

        def sleeper(tag):
            yield WaitSignal(wake)
            woke.append((tag, sim.now))

        def firer():
            yield Timeout(3.0)
            sim.fire(wake)
            sim.fire(wake)  # nobody left: must be a no-op

        for tag in range(3):
            sim.process(sleeper(tag))
        sim.process(firer())
        sim.run()
        assert sorted(woke) == [(0, 3.0), (1, 3.0), (2, 3.0)]


# ----------------------------------------------------------------------
# schedule: interval queries + validation
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_down_window_includes_warmup_and_is_half_open(self):
        f = FaultSchedule(crashes=(CrashSpec(0, 1.0, 2.0),),
                          restart_warmup=0.5)
        assert not f.is_down(0, 0.999)
        assert f.is_down(0, 1.0)
        assert f.is_down(0, 3.499)
        assert not f.is_down(0, 3.5)
        assert f.up_time(0, 2.0) == 3.5
        with pytest.raises(ValueError):
            f.up_time(0, 0.5)

    def test_never_restart_is_down_forever(self):
        f = FaultSchedule(crashes=(CrashSpec(1, 2.0, None),))
        assert f.is_down(1, 1e9)
        assert f.up_time(1, 5.0) is None
        assert f.next_down(1, 0.0) == 2.0
        assert f.next_down(1, 3.0) == 2.0  # inside: the containing crash
        assert f.next_down(0, 0.0) is None

    def test_slowdowns_compound(self):
        f = FaultSchedule(stragglers=(
            StragglerSpec(0, 1.0, 3.0, 2.0),
            StragglerSpec(0, 2.0, 4.0, 3.0),
            StragglerSpec(0, 5.0, None, 1.5),
        ))
        assert f.slowdown_at(0, 0.5) == 1.0
        assert f.slowdown_at(0, 1.5) == 2.0
        assert f.slowdown_at(0, 2.5) == 6.0
        assert f.slowdown_at(0, 3.5) == 3.0
        assert f.slowdown_at(0, 100.0) == 1.5  # open-ended window

    def test_health_state_priority(self):
        f = FaultSchedule(
            crashes=(CrashSpec(0, 1.0, 1.0),),
            stragglers=(StragglerSpec(0, 0.0, 10.0, 4.0),),
            partitions=(PartitionSpec(0, 0.0, 10.0),),
        )
        assert f.health_state(0, 1.5) == "down"
        assert f.health_state(0, 3.0) == "partitioned"
        f2 = FaultSchedule(stragglers=(StragglerSpec(0, 0.0, 1.0, 4.0),))
        assert f2.health_state(0, 0.5) == "slow"
        assert f2.health_state(0, 2.0) == "ok"

    def test_next_any_down_strictness(self):
        f = FaultSchedule(crashes=(CrashSpec(0, 1.0, 1.0),
                                   CrashSpec(1, 2.0, 1.0)))
        assert f.next_any_down(0.0) == 1.0
        assert f.next_any_down(1.0) == 1.0
        assert f.next_any_down(1.0, strict=True) == 2.0
        assert f.next_any_down(2.0, strict=True) is None

    def test_downtime_and_recoveries_within_horizon(self):
        f = FaultSchedule(
            crashes=(CrashSpec(0, 1.0, 2.0), CrashSpec(1, 3.0, None)),
            restart_warmup=0.5,
        )
        assert f.downtime_within(0, 10.0) == pytest.approx(2.5)
        assert f.downtime_within(0, 2.0) == pytest.approx(1.0)
        assert f.downtime_within(1, 10.0) == pytest.approx(7.0)
        # only fully recovered crashes count, durations include warmup
        assert f.recoveries_within(10.0) == [2.5]
        assert f.recoveries_within(2.0) == []

    def test_overlapping_crashes_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            FaultSchedule(crashes=(CrashSpec(0, 1.0, 5.0),
                                   CrashSpec(0, 2.0, 1.0)))
        with pytest.raises(ValueError, match="overlap"):
            FaultSchedule(crashes=(CrashSpec(0, 1.0, None),
                                   CrashSpec(0, 2.0, 1.0)))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CrashSpec(0, 1.0, 0.0)  # restart must be positive or None
        with pytest.raises(ValueError):
            CrashSpec(-1, 1.0, 1.0)
        with pytest.raises(ValueError):
            StragglerSpec(0, 1.0, 0.5, 2.0)  # end before start
        with pytest.raises(ValueError):
            StragglerSpec(0, 0.0, 1.0, 0.5)  # speedup, not a straggler
        with pytest.raises(ValueError):
            PartitionSpec(0, 2.0, 2.0)
        with pytest.raises(ValueError):
            SampleSpec(horizon=0.0)
        with pytest.raises(ValueError):
            SampleSpec(horizon=1.0, restart_fraction=1.5)

    def test_validate_fleet(self):
        f = FaultSchedule(crashes=(CrashSpec(3, 1.0, 1.0),))
        f.validate_fleet(4)
        with pytest.raises(ValueError, match="machine 3"):
            f.validate_fleet(3)


class TestSampledFaults:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**31 - 1), machines=st.integers(1, 4))
    def test_sampling_is_deterministic_and_valid(self, seed, machines):
        spec = SampleSpec(horizon=1.0, crashes_per_machine=2.0,
                          mean_downtime=0.1, restart_fraction=0.5,
                          stragglers_per_machine=1.0, mean_straggle=0.2,
                          partitions_per_machine=1.0, mean_partition=0.1)
        a = sample_faults(spec, machines, seed=seed, restart_warmup=0.01)
        b = sample_faults(spec, machines, seed=seed, restart_warmup=0.01)
        assert a == b  # frozen dataclasses: full structural equality
        a.validate_fleet(machines)  # every event targets a real machine

    def test_restart_fraction_extremes(self):
        spec = SampleSpec(horizon=1.0, crashes_per_machine=3.0,
                          mean_downtime=0.05, restart_fraction=0.0)
        never = sample_faults(spec, 2, seed=7)
        assert never.crashes
        assert all(c.restart_after is None for c in never.crashes)
        spec = dataclasses.replace(spec, restart_fraction=1.0)
        always = sample_faults(spec, 2, seed=7)
        assert all(c.restart_after is not None for c in always.crashes)

    def test_merge_keeps_explicit_crashes(self):
        explicit = FaultSchedule(crashes=(CrashSpec(0, 0.5, None),),
                                 seed=3)
        spec = SampleSpec(horizon=1.0, crashes_per_machine=4.0,
                          mean_downtime=0.1)
        merged = merge_sampled(explicit, spec, 2)
        assert CrashSpec(0, 0.5, None) in merged.crashes
        # machine 0 is down forever from 0.5: no sampled crash may
        # overlap it, and the merge must still validate
        merged.validate_fleet(2)
        for crash in merged.crashes:
            if crash.machine == 0 and crash.at != 0.5:
                assert crash.at < 0.5
        assert merge_sampled(explicit, None, 2) is explicit


# ----------------------------------------------------------------------
# serving semantics under faults
# ----------------------------------------------------------------------
class TestServingUnderFaults:
    def test_crash_migrates_and_recharges_prefill(self):
        f = FaultSchedule(crashes=(CrashSpec(0, 0.005, 0.004),),
                          restart_warmup=0.001)
        report = _serve(f)
        assert report.migrations > 0
        assert not report.unfinished  # the machine comes back
        moved = [r for r in report.records if r.migrations]
        assert moved
        for record in moved:
            # generated tokens survive the move; timestamps stay
            # monotone through the re-prefill
            times = record.token_times
            assert all(a < b for a, b in zip(times, times[1:]))
            assert len(times) == record.request.output_len
        assert report.availability < 1.0
        assert report.mean_time_to_recover == pytest.approx(0.005)

    def test_never_restart_strands_work(self):
        f = FaultSchedule(crashes=(CrashSpec(0, 0.004, None),
                                   CrashSpec(1, 0.006, None)))
        report = _serve(f)
        assert report.unfinished
        assert math.isnan(report.mean_time_to_recover)
        done = sum(1 for r in report.records if r.finished)
        assert len(report.unfinished) == len(report.records) - done
        assert done < len(report.records)

    def test_all_machines_down_degrades_to_nan(self):
        f = FaultSchedule(crashes=(CrashSpec(0, 1e-4, None),
                                   CrashSpec(1, 1e-4, None)))
        report = _serve(f)  # must not raise
        assert not any(r.finished for r in report.records)
        assert math.isnan(report.ttft_percentile(99))
        assert report.tokens_per_second == 0.0

    def test_all_machines_down_cluster_renders_dashes(self):
        """The cluster table path: nan percentiles and fairness render
        as em-dashes instead of raising."""
        scenario = load_scenario(CHAOS_SPEC)
        f = FaultSchedule(crashes=tuple(
            CrashSpec(m, 1e-4, None)
            for m in range(scenario.config.num_machines)))
        dead = dataclasses.replace(
            scenario,
            config=dataclasses.replace(scenario.config, faults=f))
        report = dead.run()
        assert not any(r.finished for r in report.records)
        assert math.isnan(report.fairness_index())
        assert math.isnan(report.class_ttft_percentile("interactive", 99))
        assert math.isnan(report.slo_attainment("default")["joint"])
        rows, _ = cluster_eval._scenario_rows(dead, None)
        assert rows == []  # no completions: nothing to tabulate

    def test_straggler_stretches_makespan(self):
        slow = FaultSchedule(stragglers=(
            StragglerSpec(0, 0.0, None, 6.0),
            StragglerSpec(1, 0.0, None, 6.0)))
        assert _serve(slow).makespan > _serve(None).makespan

    def test_empty_schedule_is_bit_identical_to_none(self):
        """The fault machinery itself is free: an empty schedule takes
        the fault-aware code paths (signal-bounded idle waits, span
        capping) yet reproduces the fault-free run exactly."""
        _assert_reports_equal(_serve(FaultSchedule()), _serve(None))


# ----------------------------------------------------------------------
# macro-step: fused == stepped under every fault kind
# ----------------------------------------------------------------------
FAULT_KINDS = {
    "crash": FaultSchedule(crashes=(CrashSpec(0, 0.005, 0.004),),
                           restart_warmup=0.001),
    "crash-final": FaultSchedule(crashes=(CrashSpec(0, 0.006, None),)),
    "straggler": FaultSchedule(stragglers=(
        StragglerSpec(1, 0.003, 0.02, 5.0),)),
    "everything": FaultSchedule(
        crashes=(CrashSpec(0, 0.004, 0.005),),
        stragglers=(StragglerSpec(1, 0.002, 0.015, 4.0),),
        partitions=(PartitionSpec(1, 0.0, 0.005),),
        restart_warmup=0.001),
}


class TestFusedEqualsSteppedUnderFaults:
    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    @pytest.mark.parametrize("backend", ["hermes", "dense"])
    def test_shared_queue(self, kind, backend):
        fleet = [MachineGroup(count=2, backend=backend)]
        fused = _serve(FAULT_KINDS[kind], fleet=fleet, macro=True)
        stepped = _serve(FAULT_KINDS[kind], fleet=fleet, macro=False)
        _assert_reports_equal(fused, stepped)

    @pytest.mark.parametrize("health_aware", [False, True])
    def test_chaos_scenario(self, health_aware):
        scenario = load_scenario(CHAOS_SPEC)
        trace = scenario.build_trace()
        reports = {}
        for macro in (True, False):
            run = dataclasses.replace(
                scenario,
                config=dataclasses.replace(
                    scenario.config, macro_step=macro,
                    health_aware=health_aware))
            reports[macro] = run.run(trace)
        _assert_reports_equal(reports[True], reports[False])


# ----------------------------------------------------------------------
# health monitoring + health-aware routing
# ----------------------------------------------------------------------
class TestHealthMonitor:
    def test_demotes_on_self_relative_slowdown(self):
        monitor = HealthMonitor(alpha=0.5, threshold=3.0)
        for _ in range(4):
            monitor.observe(0, 0.001, 1)
        assert not monitor.demoted(0)
        for _ in range(6):
            monitor.observe(0, 0.01, 1)
        assert monitor.demoted(0)
        # recovery: the EWMA decays back under threshold x own-best
        for _ in range(20):
            monitor.observe(0, 0.001, 1)
        assert not monitor.demoted(0)

    def test_natively_slow_machine_is_not_a_straggler(self):
        monitor = HealthMonitor()
        for _ in range(10):
            monitor.observe(0, 0.001, 1)   # fast machine
            monitor.observe(1, 0.02, 1)    # 20x slower, consistently
        assert not monitor.demoted(0)
        assert not monitor.demoted(1)

    def test_unknown_machine_is_healthy(self):
        assert not HealthMonitor().demoted(7)

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(alpha=0.0)
        with pytest.raises(ValueError):
            HealthMonitor(alpha=1.5)
        with pytest.raises(ValueError):
            HealthMonitor(threshold=1.0)
        monitor = HealthMonitor()
        monitor.observe(0, -1.0, 1)  # rejected sample
        monitor.observe(0, 1.0, 0)
        assert not monitor.demoted(0)

    def test_health_aware_beats_blind_on_chaos_drill(self):
        """The acceptance pin: on the bundled chaos scenario the
        health-aware front door wins the interactive joint SLO."""
        scenario = load_scenario(CHAOS_SPEC)
        trace = scenario.build_trace()
        joint = {}
        for health_aware in (True, False):
            run = dataclasses.replace(
                scenario,
                config=dataclasses.replace(
                    scenario.config, health_aware=health_aware))
            report = run.run(trace)
            joint[health_aware] = {
                name: report.slo_attainment(name)["joint"]
                for name in ("interactive", "bulk")
            }
            assert report.migrations > 0
        assert joint[True]["interactive"] > joint[False]["interactive"]
        assert joint[True]["bulk"] >= joint[False]["bulk"]


# ----------------------------------------------------------------------
# --jobs determinism
# ----------------------------------------------------------------------
def _stream_bytes(path):
    """Worker: run the scenario with a JSONL stream tracer attached and
    return the raw stream bytes (module-level: spawn-picklable)."""
    scenario = load_scenario(path)
    out = io.StringIO()
    tracer = MetricStreamTracer(out, sample_interval=0.002,
                                source="jobs-pin")
    scenario.run(tracer=tracer)
    return out.getvalue()


class TestJobsDeterminism:
    def test_grid_rows_jobs2_match_serial(self):
        points = [(str(CHAOS_SPEC), None), (str(CHAOS_SPEC), "least-loaded")]
        serial = run_grid(cluster_eval._point, points, jobs=1)
        parallel = run_grid(cluster_eval._point, points, jobs=2)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)

    def test_telemetry_stream_jobs2_byte_identical(self):
        paths = [str(CHAOS_SPEC), str(CHAOS_SPEC)]
        serial = run_grid(_stream_bytes, paths, jobs=1)
        parallel = run_grid(_stream_bytes, paths, jobs=2)
        assert serial == parallel
        assert serial[0] == serial[1]
        assert serial[0]  # the stream actually carries content


# ----------------------------------------------------------------------
# telemetry under faults
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def chaos_recorded():
    scenario = load_scenario(CHAOS_SPEC)
    trace = scenario.build_trace()
    tracer = RecordingTracer()
    report = scenario.run(trace, tracer=tracer)
    return scenario, trace, report, tracer.events


class TestFaultTelemetry:
    def test_tracing_does_not_perturb(self, chaos_recorded):
        scenario, trace, traced, _ = chaos_recorded
        _assert_reports_equal(scenario.run(trace), traced)

    def test_fault_lifecycle_events(self, chaos_recorded):
        scenario, _, report, events = chaos_recorded
        downs = [e for e in events if isinstance(e, MachineDown)]
        ups = [e for e in events if isinstance(e, MachineUp)]
        faults = scenario.config.faults
        assert sorted((e.machine, e.time) for e in downs) == sorted(
            (c.machine, c.at) for c in faults.crashes)
        assert len(ups) == len(faults.crashes)  # both crashes restart
        for up in ups:
            assert up.warmup == faults.restart_warmup
        moved = [e for e in events if isinstance(e, RequestMigrated)]
        assert len(moved) == report.migrations
        states = {e.state for e in events if isinstance(e, MachineHealth)}
        assert {"down", "slow", "ok"} <= states

    def test_stream_has_health_column_and_fault_counters(
            self, chaos_recorded):
        scenario, trace, report, _ = chaos_recorded
        out = io.StringIO()
        tracer = MetricStreamTracer(out, sample_interval=0.002)
        scenario.run(trace, tracer=tracer)
        lines = [json.loads(line) for line in out.getvalue().splitlines()]
        machine_configs = [
            m for m in lines
            if m["type"] == "config" and m["topic"].startswith("machine/")
        ]
        assert machine_configs
        for config in machine_configs:
            fields = {f["name"]: f for f in config["fields"]}
            assert fields["health"]["kind"] == "state"
        health_seen = {
            m["values"]["health"] for m in lines
            if m["type"] == "sample" and m["topic"].startswith("machine/")
        }
        assert "slow" in health_seen or "down" in health_seen
        cluster_samples = [
            m for m in lines
            if m["type"] == "sample" and m["topic"] == "cluster"
        ]
        assert cluster_samples[-1]["values"]["migrations"] == \
            report.migrations
        ups = {m["values"]["machines_up"] for m in cluster_samples}
        assert min(ups) < scenario.config.num_machines

    def test_watch_renders_health(self, chaos_recorded):
        scenario, trace, _, _ = chaos_recorded
        out = io.StringIO()
        tracer = MetricStreamTracer(out, sample_interval=0.002)
        scenario.run(trace, tracer=tracer)
        state = StreamState()
        for line in out.getvalue().splitlines():
            state.feed_line(line)
        rendered = state.render()
        assert "health" in rendered
        assert "ok" in rendered  # every machine ends the run healthy

    def test_chrome_trace_draws_faults(self, chaos_recorded):
        scenario, _, _, events = chaos_recorded
        doc = chrome_trace(events)
        json.dumps(doc, allow_nan=False)  # strict-JSON clean
        names = [e["name"] for e in doc["traceEvents"]]
        crashes = len(scenario.config.faults.crashes)
        assert names.count("crash") == crashes
        assert names.count("down") == crashes
        assert any(n.startswith("migrate req ") for n in names)
        assert any(n.startswith("health: slow") for n in names)
