"""Unit tests for model specifications and the registry."""

import math

import pytest

from repro.models import (
    BYTES_PER_PARAM,
    FALCON_40B,
    LLAMA2_70B,
    LLAMA_7B,
    OPT_13B,
    OPT_66B,
    ModelSpec,
    get_model,
    list_models,
    neuron_groups,
    register_model,
)


def spec(**overrides) -> ModelSpec:
    base = dict(
        name="t",
        num_layers=2,
        hidden_size=64,
        ffn_size=256,
        num_heads=4,
        num_kv_heads=4,
        vocab_size=100,
    )
    base.update(overrides)
    return ModelSpec(**base)


class TestValidation:
    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            spec(num_layers=0)

    def test_rejects_negative_hidden(self):
        with pytest.raises(ValueError):
            spec(hidden_size=-1)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            spec(hidden_size=100, num_heads=3)

    def test_rejects_bad_kv_grouping(self):
        with pytest.raises(ValueError):
            spec(num_heads=4, num_kv_heads=3)

    def test_rejects_density_out_of_range(self):
        with pytest.raises(ValueError):
            spec(activation_density=0.0)
        with pytest.raises(ValueError):
            spec(activation_density=1.5)

    def test_accepts_full_density(self):
        assert spec(activation_density=1.0).activation_density == 1.0


class TestDerivedDimensions:
    def test_head_dim(self):
        assert spec().head_dim == 16

    def test_kv_dim_mha(self):
        s = spec()
        assert s.kv_dim == s.hidden_size

    def test_kv_dim_gqa(self):
        s = spec(num_heads=4, num_kv_heads=2)
        assert s.kv_dim == s.hidden_size // 2

    def test_neuron_counts(self):
        s = spec()
        assert s.attn_neurons_per_layer == 64
        assert s.mlp_neurons_per_layer == 256
        assert s.neurons_per_layer == 320
        assert s.total_neurons == 640


class TestWeightFootprints:
    def test_attn_neuron_bytes_mha(self):
        s = spec()
        # one row of W_q plus one row each of W_k and W_v
        assert s.attn_neuron_bytes == (64 + 2 * 64) * BYTES_PER_PARAM

    def test_attn_neuron_bytes_gqa(self):
        s = spec(num_heads=4, num_kv_heads=2)
        assert s.attn_neuron_bytes == (64 + 2 * 32) * BYTES_PER_PARAM

    def test_mlp_neuron_bytes_plain(self):
        assert spec().mlp_neuron_bytes == 2 * 64 * BYTES_PER_PARAM

    def test_mlp_neuron_bytes_gated(self):
        assert spec(gated_mlp=True).mlp_neuron_bytes \
            == 3 * 64 * BYTES_PER_PARAM

    def test_sparse_bytes_sum(self):
        s = spec()
        expected = (s.attn_neurons_per_layer * s.attn_neuron_bytes
                    + s.mlp_neurons_per_layer * s.mlp_neuron_bytes)
        assert s.sparse_bytes_per_layer == expected

    def test_dense_bytes_is_projection(self):
        s = spec()
        assert s.dense_bytes_per_layer == 64 * 64 * BYTES_PER_PARAM

    def test_total_includes_embeddings(self):
        s = spec()
        assert s.total_weight_bytes == (
            s.layer_bytes * s.num_layers + s.embedding_bytes
        )

    def test_opt66b_weight_scale(self):
        """OPT-66B is ~66B parameters, ~123 GiB in FP16."""
        assert 60e9 < OPT_66B.total_params < 72e9
        assert 115 < OPT_66B.total_weight_bytes / 2**30 < 135

    def test_llama70b_weight_scale(self):
        assert 62e9 < LLAMA2_70B.total_params < 75e9

    def test_falcon_is_multiquery(self):
        assert FALCON_40B.num_kv_heads < FALCON_40B.num_heads


class TestKVCache:
    def test_kv_per_token_scales_with_batch(self):
        s = spec()
        assert (s.kv_bytes_per_token_per_layer(4)
                == 4 * s.kv_bytes_per_token_per_layer(1))

    def test_kv_total(self):
        s = spec()
        assert s.kv_bytes_total(10) == (
            10 * s.num_layers * s.kv_bytes_per_token_per_layer()
        )

    def test_gqa_shrinks_kv(self):
        mha = spec()
        gqa = spec(num_kv_heads=2)
        assert gqa.kv_bytes_total(10) == mha.kv_bytes_total(10) // 2


class TestStateTableClaim:
    def test_llama7b_state_table_is_232kb(self):
        """Paper §IV-C1: the LLaMA-7B neuron state table costs 232 KB."""
        bits = LLAMA_7B.total_neurons * 4
        assert bits // 8 // 1024 == 232


class TestNeuronGroups:
    def test_exact_division(self):
        assert neuron_groups(spec(), 64) == (1, 4)

    def test_ceil_division(self):
        attn, mlp = neuron_groups(spec(), 48)
        assert attn == math.ceil(64 / 48)
        assert mlp == math.ceil(256 / 48)

    def test_granularity_one(self):
        assert neuron_groups(spec(), 1) == (64, 256)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            neuron_groups(spec(), 0)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_model("opt-13b") is OPT_13B

    def test_unknown_model_lists_known(self):
        with pytest.raises(KeyError, match="OPT-66B"):
            get_model("gpt-5")

    def test_list_models_sorted(self):
        names = list_models()
        assert names == sorted(names)
        assert "OPT-66B" in names

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_model(spec(name="OPT-13B"))

    def test_paper_models_present(self):
        for name in (
            "OPT-13B",
            "OPT-30B",
            "OPT-66B",
            "LLaMA2-13B",
            "LLaMA2-70B",
            "Falcon-40B",
            "LLaMA-7B",
        ):
            assert get_model(name).name == name

    def test_densities_in_paper_sparsity_range(self):
        """§II-B: 70-90% sparsity, i.e. density 0.1-0.3."""
        for name in list_models():
            model = get_model(name)
            if name == "tiny-test":
                continue
            assert 0.10 <= model.activation_density <= 0.30

    def test_describe_mentions_size(self):
        text = OPT_66B.describe()
        assert "OPT-66B" in text and "GiB" in text
