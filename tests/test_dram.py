"""Unit tests for the DDR4 timing substrate (Table II)."""


import pytest

from repro.dram import (
    Bank,
    DDR4Timing,
    DIMMGeometry,
    DRAMController,
    ReadRequest,
    channel_stream_bandwidth,
    internal_stream_bandwidth,
    lane_bandwidth,
    scattered_access_efficiency,
)


class TestTiming:
    def test_table2_defaults(self):
        t = DDR4Timing()
        assert (t.tRC, t.tRCD, t.tCL, t.tRP, t.tBL) == (76, 24, 24, 24, 4)
        assert (t.tCCD_S, t.tCCD_L, t.tRRD_S, t.tRRD_L, t.tFAW) == \
            (4, 8, 4, 6, 26)

    def test_clock_is_half_data_rate(self):
        t = DDR4Timing()
        assert t.clock_hz == pytest.approx(1600e6)
        assert t.tCK == pytest.approx(0.625e-9)

    def test_cycles_to_seconds(self):
        t = DDR4Timing()
        assert t.cycles_to_seconds(1600e6) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            t.cycles_to_seconds(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            DDR4Timing(tRC=0)
        with pytest.raises(ValueError):
            DDR4Timing(tCCD_L=2, tCCD_S=4)
        with pytest.raises(ValueError):
            DDR4Timing(tRC=10, tRCD=24)


class TestGeometry:
    def test_table2_defaults(self):
        g = DIMMGeometry()
        assert g.capacity_bytes == 32 * 2**30
        assert g.ranks == 4
        assert g.banks_per_rank == 8
        assert g.total_banks == 32
        assert g.burst_bytes == 64
        assert g.bursts_per_row == 128
        assert g.internal_paths == 8

    def test_peak_bandwidth(self):
        g = DIMMGeometry()
        assert g.peak_bandwidth(DDR4Timing()) == pytest.approx(25.6e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DIMMGeometry(ranks=0)


class TestBank:
    def test_activate_sets_read_window(self):
        bank = Bank(DDR4Timing())
        act = bank.activate(5, now=10)
        assert act == 10
        assert bank.next_read == 10 + 24  # tRCD
        assert bank.open_row == 5

    def test_row_conflict_pays_precharge(self):
        t = DDR4Timing()
        bank = Bank(t)
        bank.activate(1, now=0)
        act = bank.activate(2, now=0)
        # must wait tRC from the first ACT, then tRP
        assert act >= t.tRC + t.tRP

    def test_same_row_reuse_is_free(self):
        bank = Bank(DDR4Timing())
        bank.activate(1, now=0)
        issue = bank.read(1, now=100)
        assert issue == 100  # row already open, past tRCD

    def test_read_miss_activates(self):
        bank = Bank(DDR4Timing())
        issue = bank.read(3, now=0)
        assert issue == 24  # tRCD after the implicit ACT
        assert bank.open_row == 3

    def test_rejects_negative_row(self):
        with pytest.raises(ValueError):
            Bank(DDR4Timing()).activate(-1, 0)


class TestController:
    def test_validates_addresses(self):
        ctrl = DRAMController(DIMMGeometry(), DDR4Timing())
        with pytest.raises(ValueError):
            ctrl.serve([ReadRequest(rank=9, bank_group=0, bank=0, row=0)])
        with pytest.raises(ValueError):
            ReadRequest(rank=0, bank_group=0, bank=0, row=0, n_bursts=0)

    def test_single_burst_latency(self):
        t = DDR4Timing()
        ctrl = DRAMController(DIMMGeometry(), t)
        cycles = ctrl.serve([ReadRequest(0, 0, 0, 0)])
        assert cycles == t.tRCD + t.tCL + t.tBL

    def test_same_bank_group_pays_ccd_l(self):
        t = DDR4Timing()
        ctrl = DRAMController(DIMMGeometry(), t)
        reqs = [ReadRequest(0, 0, 0, 0), ReadRequest(0, 0, 1, 0)]
        cycles = ctrl.serve(reqs)
        assert cycles >= t.tRCD + t.tCCD_L + t.tCL + t.tBL

    def test_stream_zero_bytes(self):
        ctrl = DRAMController(DIMMGeometry(), DDR4Timing())
        assert ctrl.stream_rows(0) == 0
        with pytest.raises(ValueError):
            ctrl.stream_rows(-1)

    def test_internal_paths_beat_shared_bus(self):
        g, t = DIMMGeometry(), DDR4Timing()
        n = 2**20
        shared = DRAMController(g, t).stream_rows(n)
        parallel = DRAMController(g, t, internal_paths=True).stream_rows(n)
        assert parallel < shared / 2

    def test_stream_matches_analytic_internal(self):
        """The cycle model validates the closed-form bandwidth within 5%."""
        g, t = DIMMGeometry(), DDR4Timing()
        n = 2 * 2**20
        cycles = DRAMController(g, t, internal_paths=True).stream_rows(n)
        measured = n / t.cycles_to_seconds(cycles)
        analytic = internal_stream_bandwidth(g, t)
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_stream_matches_analytic_channel(self):
        g, t = DIMMGeometry(), DDR4Timing()
        n = 2 * 2**20
        cycles = DRAMController(g, t).stream_rows(n)
        measured = n / t.cycles_to_seconds(cycles)
        assert measured == pytest.approx(
            channel_stream_bandwidth(g, t), rel=0.05
        )


class TestBandwidthModel:
    def test_lane_bandwidth_is_half_duty(self):
        g, t = DIMMGeometry(), DDR4Timing()
        assert lane_bandwidth(g, t) == pytest.approx(
            g.peak_bandwidth(t) * t.tBL / t.tCCD_L, rel=0.01
        )

    def test_internal_is_lanes_times_paths(self):
        g, t = DIMMGeometry(), DDR4Timing()
        assert internal_stream_bandwidth(g, t) == pytest.approx(
            lane_bandwidth(g, t) * g.internal_paths
        )

    def test_internal_near_100gbs(self):
        """The calibration anchor: ~102 GB/s per DIMM, ~0.8 TB/s for 8."""
        bw = internal_stream_bandwidth(DIMMGeometry(), DDR4Timing())
        assert 90e9 < bw < 115e9

    def test_channel_is_interface_rate(self):
        bw = channel_stream_bandwidth(DIMMGeometry(), DDR4Timing())
        assert 23e9 < bw <= 25.6e9

    def test_scattered_efficiency_monotone_in_run_length(self):
        g, t = DIMMGeometry(), DDR4Timing()
        runs = [512, 4096, 65536, 2**20]
        effs = [scattered_access_efficiency(g, t, r) for r in runs]
        assert all(e1 < e2 for e1, e2 in zip(effs, effs[1:]))
        assert effs[-1] > 0.95

    def test_scattered_efficiency_bounds(self):
        g, t = DIMMGeometry(), DDR4Timing()
        assert 0 < scattered_access_efficiency(g, t, 64) < 1
        with pytest.raises(ValueError):
            scattered_access_efficiency(g, t, 0)

    def test_more_ranks_scale_internal_bandwidth(self):
        t = DDR4Timing()
        g4 = DIMMGeometry(ranks=4)
        g2 = DIMMGeometry(ranks=2)
        assert internal_stream_bandwidth(g4, t) == pytest.approx(
            2 * internal_stream_bandwidth(g2, t)
        )
