"""Unit tests for the hardware models: GPUs, links, DIMMs, machines."""

import dataclasses

import pytest

from repro.hardware import (
    A100_40GB,
    HostCPU,
    RTX_3090,
    RTX_4090,
    TESLA_T4,
    default_dimm,
    dimm_link,
    get_gpu,
    host_memory_bus,
    machine_cost_usd,
    pcie4_x16,
    server_cost_usd,
)
from repro.hardware.links import Link


class TestGPURoofline:
    def test_small_gemv_is_bandwidth_bound(self):
        b = 1 * 2**30
        t = RTX_4090.matmul_time(b, batch=1)
        assert t == pytest.approx(
            b / RTX_4090.effective_bandwidth + RTX_4090.kernel_launch_overhead
        )

    def test_large_batch_is_compute_bound(self):
        b = 1 * 2**30
        t1 = RTX_4090.matmul_time(b, batch=1)
        t256 = RTX_4090.matmul_time(b, batch=256)
        assert t256 > t1
        assert t256 == pytest.approx(
            b * 256 / RTX_4090.effective_flops
            + RTX_4090.kernel_launch_overhead)

    def test_scattered_access_is_slower(self):
        b = 1 * 2**30
        assert (RTX_4090.matmul_time(b, scattered=True)
                > RTX_4090.matmul_time(b, scattered=False))

    def test_zero_bytes_is_free(self):
        assert RTX_4090.matmul_time(0) == 0.0

    def test_batch_one_equals_batch_two_when_memory_bound(self):
        b = 1 * 2**30
        assert (RTX_4090.matmul_time(b, batch=1)
                == RTX_4090.matmul_time(b, batch=2))

    def test_attention_time_bandwidth_bound(self):
        kv = 100 * 2**20
        assert RTX_4090.attention_time(kv) == pytest.approx(
            kv / RTX_4090.effective_bandwidth + RTX_4090.kernel_launch_overhead
        )

    def test_prefill_compute_bound_for_long_prompt(self):
        b = 1 * 2**30
        t = RTX_4090.prefill_time(b, prompt_len=4096)
        assert t == pytest.approx(b * 4096 / RTX_4090.effective_flops)

    def test_rejects_invalid_args(self):
        with pytest.raises(ValueError):
            RTX_4090.matmul_time(-1)
        with pytest.raises(ValueError):
            RTX_4090.matmul_time(1, batch=0)
        with pytest.raises(ValueError):
            RTX_4090.attention_time(-1)
        with pytest.raises(ValueError):
            RTX_4090.prefill_time(1, prompt_len=0)

    def test_validation_of_spec_fields(self):
        with pytest.raises(ValueError):
            dataclasses.replace(RTX_4090, memory_bytes=0)
        with pytest.raises(ValueError):
            dataclasses.replace(RTX_4090, bandwidth_efficiency=1.5)


class TestGPURegistry:
    def test_paper_specs(self):
        """§V-A1 / §V-E2 spec-sheet numbers."""
        assert RTX_4090.memory_bytes == 24 * 2**30
        assert RTX_4090.memory_bandwidth == 936e9
        assert RTX_4090.tensor_tops == 330
        assert RTX_3090.tensor_tops == 142
        assert TESLA_T4.memory_bytes == 16 * 2**30
        assert A100_40GB.memory_bandwidth == 1555e9

    def test_lookup(self):
        assert get_gpu("rtx 4090") is RTX_4090
        with pytest.raises(KeyError):
            get_gpu("rtx 5090")

    def test_gpu_ordering_matches_tiers(self):
        b = 1 * 2**30
        t4090 = RTX_4090.matmul_time(b)
        t3090 = RTX_3090.matmul_time(b)
        tt4 = TESLA_T4.matmul_time(b)
        assert t4090 <= t3090 < tt4


class TestLinks:
    def test_transfer_time_includes_latency(self):
        link = Link(name="l", bandwidth=1e9, latency=1e-6)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_transfer_free(self):
        assert pcie4_x16().transfer_time(0) == 0.0

    def test_pageable_slower_than_pinned(self):
        assert (pcie4_x16(pinned=False).effective_bandwidth
                < pcie4_x16().effective_bandwidth)

    def test_pcie_matches_paper_bandwidth(self):
        assert pcie4_x16().bandwidth == 64e9

    def test_dimm_link_matches_table2(self):
        assert dimm_link().bandwidth == 25e9

    def test_host_bus_matches_paper(self):
        assert host_memory_bus().bandwidth == pytest.approx(89.6e9)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link(name="bad", bandwidth=0, latency=0)
        with pytest.raises(ValueError):
            Link(name="bad", bandwidth=1, latency=-1)
        with pytest.raises(ValueError):
            Link(name="bad", bandwidth=1, latency=0, efficiency=0)
        with pytest.raises(ValueError):
            pcie4_x16().transfer_time(-5)


class TestHostCPU:
    def test_gemv_memory_bound(self):
        cpu = HostCPU()
        b = 1 * 2**30
        expected = b / (
            cpu.memory_bus.effective_bandwidth * cpu.scatter_efficiency
        )
        assert cpu.gemv_time(b) == pytest.approx(expected)

    def test_sequential_faster_than_scattered(self):
        cpu = HostCPU()
        b = 1 * 2**30
        assert cpu.gemv_time(b, scattered=False) < cpu.gemv_time(b)

    def test_zero_free(self):
        assert HostCPU().gemv_time(0) == 0.0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            HostCPU().gemv_time(-1)
        with pytest.raises(ValueError):
            HostCPU().gemv_time(1, batch=0)


class TestNDPDIMM:
    def test_internal_exceeds_channel_bandwidth(self):
        d = default_dimm()
        assert d.internal_bandwidth > 3 * d.channel_bandwidth

    def test_capacity_is_32gb(self):
        assert default_dimm().capacity_bytes == 32 * 2**30

    def test_gemv_time_memory_bound_at_batch1(self):
        d = default_dimm()
        b = 100 * 2**20
        assert d.gemv_time(b) == pytest.approx(b / d.internal_bandwidth)

    def test_gemv_compute_bound_at_large_batch(self):
        d = default_dimm()
        b = 100 * 2**20
        assert d.gemv_time(b, batch=16) > 4 * d.gemv_time(b, batch=1)

    def test_scattered_run_derates_bandwidth(self):
        d = default_dimm()
        b = 100 * 2**20
        assert d.gemv_time(b, run_bytes=2048) > d.gemv_time(b)

    def test_migration_uses_dimm_link(self):
        d = default_dimm()
        assert d.migration_time(25e9) == pytest.approx(
            d.link.transfer_time(25e9)
        )

    def test_with_multipliers_changes_compute(self):
        d = default_dimm()
        fast = d.with_multipliers(512)
        b = 100 * 2**20
        assert fast.gemv_time(b, batch=16) < d.gemv_time(b, batch=16)


class TestMachine:
    def test_default_matches_paper_platform(self, machine):
        assert machine.gpu is RTX_4090
        assert machine.num_dimms == 8
        assert machine.dimm_capacity_total == 8 * 32 * 2**30

    def test_pool_bandwidth_aggregates(self, machine):
        assert machine.dimm_bandwidth_total == pytest.approx(
            8 * machine.dimm.internal_bandwidth
        )

    def test_fits_on_dimms(self, machine):
        assert machine.fits_on_dimms(100 * 2**30)
        assert not machine.fits_on_dimms(300 * 2**30)

    def test_with_dimms(self, machine):
        assert machine.with_dimms(16).num_dimms == 16
        with pytest.raises(ValueError):
            machine.with_dimms(0)

    def test_with_gpu(self, machine):
        assert machine.with_gpu(TESLA_T4).gpu is TESLA_T4

    def test_with_multipliers(self, machine):
        m = machine.with_multipliers(64)
        assert m.dimm.core.gemv.multipliers == 64


class TestCostModel:
    def test_hermes_box_is_about_5_percent_of_server(self, machine):
        """§V-F: ~$2,500 vs ~$50,000."""
        ratio = machine_cost_usd(machine) / server_cost_usd()
        assert 0.03 < ratio < 0.08

    def test_server_cost_scales(self):
        assert server_cost_usd(10) == 2 * server_cost_usd(5)
        with pytest.raises(ValueError):
            server_cost_usd(0)
