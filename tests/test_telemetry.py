"""Telemetry subsystem tests.

The two load-bearing guarantees:

1. **Observation only** — attaching any tracer leaves the simulation
   results bit-identical to an untraced run.
2. **Loop equivalence** — the macro-stepped (fused) serving loop emits
   *exactly* the event stream of the per-token reference loop: same
   events, same order, timestamps bit-equal.  The fused path
   reconstructs per-boundary ``DecodeStep`` events from its span cost
   arrays, and this is where that contract is pinned — for the hermes
   backend (with real preemptions in flight) and for the dense backend.

Plus unit coverage for the metrics registry, the self-describing JSONL
topic stream, the Chrome trace exporter (strict JSON, required fields,
flow arrows), the ``watch`` renderer (its final snapshot must agree
with the post-hoc ``ClusterReport``), and the scenario ``telemetry:``
schema.
"""

from __future__ import annotations

import dataclasses
import io
import json
import math

import pytest

from repro.scenarios import load_scenario, parse_scenario
from repro.serving import MachineGroup
from repro.telemetry import (
    DecodeStep,
    MetricsRegistry,
    MetricStreamTracer,
    MultiTracer,
    NULL_TRACER,
    PrefillEnded,
    QueueDepth,
    RecordingTracer,
    RequestAdmitted,
    RequestCompleted,
    RequestPreempted,
    RequestRouted,
    RunEnded,
    RunStarted,
    TelemetrySpec,
    TopicStream,
    chrome_trace,
    export_chrome_trace,
    scenario_sinks,
)
from repro.telemetry.watch import StreamState, watch


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("scenarios/mixed_slo_tiny.json")


@pytest.fixture(scope="module")
def trace(scenario):
    return scenario.build_trace()


def _run(scenario, trace, *, macro, tracer=None):
    scn = dataclasses.replace(
        scenario,
        config=dataclasses.replace(scenario.config, macro_step=macro),
    )
    recorder = tracer if tracer is not None else RecordingTracer()
    report = scn.run(trace, tracer=recorder)
    return recorder, report


@pytest.fixture(scope="module")
def recorded(scenario, trace):
    """(events, report) of the fused mixed_slo_tiny run."""
    recorder, report = _run(scenario, trace, macro=True)
    return recorder.events, report


# ----------------------------------------------------------------------
class TestLoopEquivalence:
    def test_fused_equals_stepped_hermes_preemptive(self, scenario, trace):
        """The acceptance pin: a routed preemptive hermes cluster emits
        identical streams from both loops — and preemptions do occur,
        so the preemption/resume event path is exercised."""
        fused, rep_f = _run(scenario, trace, macro=True)
        stepped, rep_s = _run(scenario, trace, macro=False)
        assert rep_f.preemptions > 0
        assert len(fused.events) == len(stepped.events)
        assert fused.events == stepped.events

    def test_fused_equals_stepped_dense_cluster(self, scenario, trace):
        """Same pin for the dense backend (analytic span path)."""
        dense = dataclasses.replace(
            scenario,
            fleet=(MachineGroup(count=2, backend="dense"),),
        )
        fused, _ = _run(dense, trace, macro=True)
        stepped, _ = _run(dense, trace, macro=False)
        assert fused.events == stepped.events
        kinds = {type(e) for e in fused.events}
        assert {RunStarted, RequestRouted, DecodeStep,
                RequestCompleted, RunEnded} <= kinds

    def test_tracing_does_not_perturb(self, scenario, trace, recorded):
        """A traced run and an untraced run produce identical reports."""
        _, traced = recorded
        untraced = dataclasses.replace(
            scenario,
            config=dataclasses.replace(scenario.config, macro_step=True),
        ).run(trace)
        assert traced.makespan == untraced.makespan
        assert traced.queue_samples == untraced.queue_samples
        assert traced.machine_gpu_busy == untraced.machine_gpu_busy
        assert [r.token_times for r in traced.records] == [
            r.token_times for r in untraced.records
        ]


# ----------------------------------------------------------------------
class TestRecordedStream:
    def test_bracketing_events(self, recorded):
        events, report = recorded
        assert isinstance(events[0], RunStarted)
        assert isinstance(events[-1], RunEnded)
        assert events[-1].makespan == report.makespan
        first = events[0]
        assert first.router == report.router
        assert first.preemptive is True
        assert [c.name for c in first.classes] == report.class_names
        assert first.backends == ("hermes", "hermes")

    def test_stream_matches_report(self, recorded):
        events, report = recorded
        completed = [e for e in events if isinstance(e, RequestCompleted)]
        assert len(completed) == len(report.completed)
        preempted = [e for e in events if isinstance(e, RequestPreempted)]
        assert len(preempted) == report.preemptions
        admitted = [e for e in events if isinstance(e, RequestAdmitted)]
        assert len(admitted) == len(report.records)
        tokens = sum(
            len(e.req_ids) for e in events if isinstance(e, DecodeStep)
        )
        assert tokens == report.total_tokens

    def test_queue_depth_mirrors_queue_samples(self, recorded):
        events, report = recorded
        depths = [
            (e.time, float(e.depth))
            for e in events
            if isinstance(e, QueueDepth)
        ]
        assert depths == report.queue_samples

    def test_decode_step_busy_mirrors_report(self, recorded):
        events, report = recorded
        gpu = [0.0] * report.num_machines
        dimm = [0.0] * report.num_machines
        for e in events:
            if isinstance(e, DecodeStep):
                gpu[e.machine] += e.gpu_busy
                dimm[e.machine] += e.dimm_busy
            elif isinstance(e, PrefillEnded):
                gpu[e.machine] += e.compute
        for m in range(report.num_machines):
            assert gpu[m] == pytest.approx(report.machine_gpu_busy[m])
            assert dimm[m] == pytest.approx(report.machine_dimm_busy[m])

    def test_hermes_steps_carry_engine_counters(self, recorded):
        events, _ = recorded
        steps = [e for e in events if isinstance(e, DecodeStep)]
        assert all(e.resident_bytes > 0 for e in steps)
        assert any(e.swap_bytes > 0 for e in steps)


# ----------------------------------------------------------------------
class TestTracers:
    def test_null_tracer_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_recording_tracer(self):
        rt = RecordingTracer()
        rt.emit(QueueDepth(time=0.0, depth=1))
        assert len(rt) == 1
        rt.clear()
        assert rt.events == []

    def test_multi_tracer_fans_out(self):
        a, b = RecordingTracer(), RecordingTracer()
        multi = MultiTracer(a, NULL_TRACER, b)
        multi.emit(QueueDepth(time=0.0, depth=2))
        assert len(a) == 1 and len(b) == 1

    def test_multi_tracer_needs_an_enabled_sink(self):
        with pytest.raises(ValueError):
            MultiTracer(NULL_TRACER)


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("done")
        counter.inc()
        counter.inc(2.0)
        assert registry.collect()["done"] == 3.0
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        assert math.isnan(registry.collect()["depth"])
        gauge.set(4)
        gauge.set(2)
        assert registry.collect()["depth"] == 2.0

    def test_get_or_create_and_kind_mismatch(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_windowed_percentiles(self):
        registry = MetricsRegistry(percentiles=(50.0,))
        hist = registry.histogram("lat", unit="ms")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        sample = registry.collect()
        assert sample["lat_count"] == 3.0
        assert sample["lat_p50"] == 2.0
        assert sample["lat_max"] == 3.0
        # the window reset with the collect; the count is cumulative
        again = registry.collect()
        assert again["lat_count"] == 3.0
        assert math.isnan(again["lat_p50"])
        assert math.isnan(again["lat_max"])

    def test_describe_expands_histograms(self):
        registry = MetricsRegistry(percentiles=(50.0, 99.0))
        registry.histogram("lat", unit="ms", help="latency")
        names = [f["name"] for f in registry.describe()]
        assert names == ["lat_count", "lat_p50", "lat_p99", "lat_max"]
        kinds = {f["name"]: f["kind"] for f in registry.describe()}
        assert kinds["lat_count"] == "counter"
        assert kinds["lat_p50"] == "gauge"

    def test_percentiles_validated(self):
        with pytest.raises(ValueError):
            MetricsRegistry(percentiles=(101.0,))


# ----------------------------------------------------------------------
class TestTopicStream:
    def test_publish_requires_announce(self):
        stream = TopicStream(io.StringIO())
        with pytest.raises(RuntimeError):
            stream.publish("cluster", 0.0, {})

    def test_lines_are_strict_json_with_null_for_nan(self):
        out = io.StringIO()
        stream = TopicStream(out)
        stream.announce("t", [{"name": "v", "kind": "gauge"}])
        stream.publish("t", 0.0, {"v": math.nan})
        stream.end(1.0)
        lines = out.getvalue().splitlines()
        assert len(lines) == 3
        decoded = [
            json.loads(line, parse_constant=pytest.fail)
            for line in lines
        ]
        assert decoded[0]["retain"] is True
        assert decoded[1]["values"]["v"] is None
        assert decoded[2] == {"type": "end", "time": 1.0}

    def test_stream_tracer_needs_run_started(self):
        tracer = MetricStreamTracer(io.StringIO())
        with pytest.raises(RuntimeError):
            tracer.emit(QueueDepth(time=0.0, depth=1))

    def test_sample_interval_validated(self):
        with pytest.raises(ValueError):
            MetricStreamTracer(io.StringIO(), sample_interval=0.0)

    def test_final_sample_matches_report(self, scenario, trace):
        """The last sample of every class topic carries exactly the
        report's completion counts and SLO attainment."""
        out = io.StringIO()
        tracer = MetricStreamTracer(out, source=scenario.name)
        _, report = _run(scenario, trace, macro=True, tracer=tracer)
        state = StreamState()
        for line in out.getvalue().splitlines():
            state.feed_line(line)
        assert state.ended
        for name in report.class_names:
            sample = state.samples.get(f"class/{name}")
            done = len([
                r for r in report.class_records(name) if r.finished
            ])
            if done == 0:
                assert sample is None or (
                    sample["values"]["completed"] == 0.0
                )
                continue
            values = sample["values"]
            assert values["completed"] == float(done)
            attainment = report.slo_attainment(name)
            assert values["slo_ttft"] == pytest.approx(attainment["ttft"])
            assert values["slo_tbt"] == pytest.approx(attainment["tbt"])
            assert values["slo_joint"] == pytest.approx(
                attainment["joint"]
            )
        cluster = state.samples["cluster"]["values"]
        assert cluster["completed"] == float(len(report.completed))
        assert cluster["preempted"] == float(report.preemptions)


# ----------------------------------------------------------------------
class TestChromeExport:
    def test_strict_json_with_required_fields(self, recorded, tmp_path):
        events, report = recorded
        path = tmp_path / "run.trace.json"
        export_chrome_trace(events, str(path))
        document = json.loads(
            path.read_text(), parse_constant=pytest.fail
        )
        trace_events = document["traceEvents"]
        assert trace_events
        for entry in trace_events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(entry)

    def test_one_lane_per_machine(self, recorded):
        events, report = recorded
        document = chrome_trace(events)
        lanes = {
            entry["args"]["name"]
            for entry in document["traceEvents"]
            if entry["ph"] == "M" and entry["name"] == "thread_name"
        }
        assert "front door" in lanes
        for m in range(report.num_machines):
            assert f"machine {m} (hermes)" in lanes

    def test_flow_arrows_balanced(self, recorded):
        """Every request's flow starts once ('s') and finishes once
        ('f'); preemption round trips add 't' hops in between."""
        events, report = recorded
        document = chrome_trace(events)
        flows: dict[int, list[str]] = {}
        for entry in document["traceEvents"]:
            if entry["ph"] in ("s", "t", "f"):
                flows.setdefault(entry["id"], []).append(entry["ph"])
        assert len(flows) == len(report.records)
        for phases in flows.values():
            assert phases[0] == "s"
            assert phases[-1] == "f"
            assert phases.count("s") == 1 and phases.count("f") == 1
        hops = sum(p.count("t") for p in flows.values())
        # routed prefill adds one 't' per request; each preemption adds
        # a preempt hop plus a resume hop
        assert hops >= len(report.records)

    def test_decode_slices_span_step_duration(self, recorded):
        events, _ = recorded
        document = chrome_trace(events)
        decode = [
            entry for entry in document["traceEvents"]
            if entry["ph"] == "X" and entry["name"].startswith("decode")
        ]
        assert decode
        step = next(e for e in events if isinstance(e, DecodeStep))
        first = decode[0]
        assert first["dur"] == pytest.approx(step.seconds * 1e6)
        assert first["ts"] == pytest.approx(
            (step.time - step.seconds) * 1e6
        )

    def test_queue_depth_counter_present(self, recorded):
        events, _ = recorded
        document = chrome_trace(events)
        counters = [
            entry for entry in document["traceEvents"]
            if entry["ph"] == "C"
        ]
        assert counters
        assert all("queued" in entry["args"] for entry in counters)


# ----------------------------------------------------------------------
class TestWatchRenderer:
    def test_once_matches_cluster_report(
        self, scenario, trace, tmp_path, capsys
    ):
        """The acceptance pin: watch --once over a recorded stream
        renders exactly the report's per-class attainment."""
        sinks = scenario_sinks(
            scenario.telemetry,
            trace_out=str(tmp_path / "run.jsonl"),
            source=scenario.name,
        )
        _, report = _run(scenario, trace, macro=True, tracer=sinks.tracer)
        (path,) = sinks.close()
        assert watch(path, once=True) == 0
        rendered = capsys.readouterr().out
        assert scenario.name in rendered
        for name in report.class_names:
            done = [
                r for r in report.class_records(name) if r.finished
            ]
            if not done:
                continue
            joint = report.slo_attainment(name)["joint"]
            row = next(
                line for line in rendered.splitlines()
                if line.startswith(name)
            )
            assert f"{joint:.3f}" in row
            assert f"{len(done):g}" in row

    def test_follow_mode_stops_at_end_marker(
        self, scenario, trace, tmp_path
    ):
        sinks = scenario_sinks(
            TelemetrySpec(stream=str(tmp_path / "run.jsonl")),
            source=scenario.name,
        )
        _run(scenario, trace, macro=True, tracer=sinks.tracer)
        (path,) = sinks.close()
        out = io.StringIO()
        assert watch(path, once=False, interval=0.01, out=out) == 0
        assert scenario.name in out.getvalue()


# ----------------------------------------------------------------------
class TestScenarioTelemetrySchema:
    BASE = {
        "model": "tiny-test",
        "tenants": [{"rate": 100.0, "num_requests": 2}],
    }

    def test_defaults_want_no_output(self, scenario):
        assert scenario.telemetry == TelemetrySpec()
        assert not scenario.telemetry.wants_output

    def test_parse_telemetry_section(self):
        data = dict(
            self.BASE,
            telemetry={
                "sample_interval": 0.005,
                "stream": "out/run.jsonl",
                "chrome_trace": "out/run.trace.json",
            },
        )
        scn = parse_scenario(data, name_hint="t")
        assert scn.telemetry.sample_interval == 0.005
        assert scn.telemetry.stream == "out/run.jsonl"
        assert scn.telemetry.chrome_trace == "out/run.trace.json"
        assert scn.telemetry.wants_output

    def test_unknown_telemetry_key_rejected(self):
        data = dict(self.BASE, telemetry={"streem": "x.jsonl"})
        with pytest.raises(ValueError, match="telemetry"):
            parse_scenario(data, name_hint="t")

    def test_bad_sample_interval_rejected(self):
        data = dict(self.BASE, telemetry={"sample_interval": 0})
        with pytest.raises(ValueError, match="sample_interval"):
            parse_scenario(data, name_hint="t")

    def test_sinks_route_trace_out_by_extension(self, tmp_path):
        spec = TelemetrySpec()
        jsonl = scenario_sinks(
            spec, trace_out=str(tmp_path / "a.jsonl")
        )
        chrome = scenario_sinks(
            spec, trace_out=str(tmp_path / "a.json")
        )
        assert isinstance(jsonl.tracer, MetricStreamTracer)
        assert isinstance(chrome.tracer, RecordingTracer)
        jsonl.close()
        chrome.close()
        assert (tmp_path / "a.json").exists()

    def test_no_sinks_means_no_tracer(self):
        sinks = scenario_sinks(TelemetrySpec())
        assert sinks.tracer is None
        assert not sinks.active
        assert sinks.close() == []
