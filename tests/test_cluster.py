"""Tests for the cluster layer (routers, SLO classes, preemption)."""

from __future__ import annotations

import math

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterReport,
    ClusterSimulator,
    PriorityClass,
    PriorityOrderedPolicy,
    SLOPolicy,
    get_router,
)
from repro.serving import (
    LengthDistribution,
    Request,
    RequestRecord,
    ServingConfig,
    ServingSimulator,
    WorkloadConfig,
    generate_workload,
    get_policy,
    merge_workloads,
)


# ----------------------------------------------------------------------
# routers
# ----------------------------------------------------------------------
def _req(i, tenant="default"):
    return Request(
        req_id=i, arrival=float(i), prompt_len=8, output_len=8, tenant=tenant
    )


class TestRouters:
    def test_round_robin_cycles(self):
        router = get_router("round-robin")
        loads = [0.0, 0.0, 0.0]
        assert [router.route(_req(i), loads) for i in range(6)] \
            == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_picks_min_with_low_index_ties(self):
        router = get_router("least-loaded")
        assert router.route(_req(0), [3.0, 1.0, 2.0]) == 1
        assert router.route(_req(1), [2.0, 2.0, 2.0]) == 0

    def test_session_affinity_stable_and_spread(self):
        router = get_router("session-affinity")
        loads = [0.0] * 4
        for tenant in ("alpha", "bravo", "charlie"):
            targets = {router.route(_req(i, tenant), loads) for i in range(5)}
            assert len(targets) == 1  # every request of a tenant pins
        # the mapping must not depend on Python's randomised str hash
        assert get_router("session-affinity").route(
            _req(0, "alpha"), loads) == router.route(_req(1, "alpha"), loads)

    def test_power_of_two_prefers_less_loaded_probe(self):
        router = get_router("power-of-two", seed=3)
        # with one machine there is only one choice
        assert router.route(_req(0), [9.0]) == 0
        # over many draws, the heavily-loaded machine is mostly avoided
        loads = [100.0, 0.0, 0.0, 0.0]
        picks = [router.route(_req(i), loads) for i in range(40)]
        assert picks.count(0) < 5

    def test_power_of_two_deterministic_per_seed(self):
        loads = [1.0, 2.0, 3.0, 4.0]
        a = get_router("power-of-two", seed=11)
        b = get_router("power-of-two", seed=11)
        assert [a.route(_req(i), loads) for i in range(16)] \
            == [b.route(_req(i), loads) for i in range(16)]

    def test_unknown_router(self):
        with pytest.raises(KeyError):
            get_router("carrier-pigeon")

    def test_instance_passthrough(self):
        router = get_router("round-robin")
        assert get_router(router) is router


# ----------------------------------------------------------------------
# SLO policy + priority ordering
# ----------------------------------------------------------------------
class TestSLOPolicy:
    def test_class_resolution_and_errors(self):
        slo = SLOPolicy(
            classes=(PriorityClass("a", priority=1), PriorityClass("b"))
        )
        assert slo.class_of(
            Request(req_id=0, arrival=0.0, prompt_len=1, output_len=1,
                    class_name="a")).priority == 1
        with pytest.raises(KeyError):
            slo.class_of(Request(req_id=1, arrival=0.0, prompt_len=1,
                                 output_len=1, class_name="zz"))

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityClass(name="x", ttft_slo=0.0)
        with pytest.raises(ValueError):
            PriorityClass(name="")
        with pytest.raises(ValueError):
            SLOPolicy(classes=())
        with pytest.raises(ValueError):
            SLOPolicy(classes=(PriorityClass("a"), PriorityClass("a")))
        with pytest.raises(ValueError):
            SLOPolicy(headroom=1.5)

    def test_priority_order_wraps_base_policy(self):
        slo = SLOPolicy(classes=(PriorityClass("hi", priority=2),
                                 PriorityClass("lo", priority=0)))
        queue = [
            Request(req_id=0, arrival=0.0, prompt_len=8, output_len=8,
                    class_name="lo"),
            Request(req_id=1, arrival=1.0, prompt_len=8, output_len=8,
                    class_name="hi"),
            Request(req_id=2, arrival=2.0, prompt_len=8, output_len=8,
                    class_name="hi"),
        ]
        wrapped = PriorityOrderedPolicy(get_policy("fcfs"), slo)
        assert [r.req_id for r in wrapped.order(queue)] == [1, 2, 0]
        # single class: exactly the base policy's order (stable sort)
        flat = SLOPolicy()
        queue = [_req(2), _req(0), _req(1)]
        wrapped = PriorityOrderedPolicy(get_policy("fcfs"), flat)
        assert wrapped.order(queue) == get_policy("fcfs").order(queue)

    def test_empty_queue_order(self):
        wrapped = PriorityOrderedPolicy(get_policy("fcfs"), SLOPolicy())
        assert wrapped.order([]) == []


# ----------------------------------------------------------------------
# cluster simulation end to end
# ----------------------------------------------------------------------
TWO_CLASS_SLO = SLOPolicy(
    classes=(PriorityClass("interactive", priority=2, ttft_slo=0.002,
                           tbt_slo=0.004),
             PriorityClass("batch", priority=0, ttft_slo=0.05)),
    preemptive=True, headroom=0.8)


def _mixed_workload():
    hi = generate_workload(
        WorkloadConfig(rate=4000.0, num_requests=32,
                       prompt_lens=LengthDistribution(mean=24),
                       output_lens=LengthDistribution(kind="uniform",
                                                      mean=12, low=8,
                                                      high=16)),
        seed=1, tenant="chat", class_name="interactive")
    lo = generate_workload(
        WorkloadConfig(arrival="bursty", rate=20000.0, num_requests=96,
                       prompt_lens=LengthDistribution(mean=64),
                       output_lens=LengthDistribution(kind="uniform",
                                                      mean=40, low=24,
                                                      high=56)),
        seed=2, tenant="analytics", class_name="batch")
    return merge_workloads(hi, lo)


def _cluster_run(tiny_trace, *, preemptive, router="least-loaded", machines=2):
    slo = SLOPolicy(
        classes=TWO_CLASS_SLO.classes,
        preemptive=preemptive,
        headroom=TWO_CLASS_SLO.headroom,
    )
    simulator = ClusterSimulator(
        "tiny-test",
        "fcfs",
        ClusterConfig(max_batch=8, num_machines=machines, router=router),
        slo=slo,
        trace=tiny_trace,
    )
    return simulator.run(_mixed_workload())


class TestClusterSimulator:
    @pytest.fixture(scope="class")
    def preemptive_report(self, tiny_trace):
        return _cluster_run(tiny_trace, preemptive=True)

    @pytest.fixture(scope="class")
    def plain_report(self, tiny_trace):
        return _cluster_run(tiny_trace, preemptive=False)

    def test_all_complete_across_machines(self, preemptive_report):
        report = preemptive_report
        assert len(report.completed) == len(report.records) == 128
        assert {r.machine for r in report.completed} == {0, 1}
        for record in report.records:
            assert len(record.token_times) == record.request.output_len

    def test_preemption_happens_and_is_recorded(
        self, preemptive_report, plain_report
    ):
        assert preemptive_report.preemptions > 0
        assert plain_report.preemptions == 0
        preempted = [r for r in preemptive_report.records if r.preemptions > 0]
        assert preempted
        # victims are only ever lower-priority (batch) requests
        assert all(r.request.class_name == "batch" for r in preempted)
        # a preempted request still finishes its full output
        assert all(r.finished for r in preempted)

    def test_preemption_protects_interactive_ttft(
        self, preemptive_report, plain_report
    ):
        cls = "interactive"
        assert preemptive_report.class_ttft_percentile(cls, 99) < \
            0.5 * plain_report.class_ttft_percentile(cls, 99)
        assert preemptive_report.slo_attainment(cls)["ttft"] > \
            plain_report.slo_attainment(cls)["ttft"]

    def test_per_machine_utilization_consistent(self, preemptive_report):
        report = preemptive_report
        assert len(report.machine_dimm_busy) == 2
        assert report.gpu_busy == pytest.approx(sum(report.machine_gpu_busy))
        assert report.dimm_utilization == pytest.approx(
            sum(report.machine_dimm_utilization) / 2
        )
        assert all(u > 0 for u in report.machine_gpu_utilization)

    def test_deterministic(self, tiny_trace):
        a = _cluster_run(tiny_trace, preemptive=True)
        b = _cluster_run(tiny_trace, preemptive=True)
        assert a.makespan == b.makespan
        assert [r.token_times for r in a.records] == \
            [r.token_times for r in b.records]
        assert a.preemptions == b.preemptions

    def test_routers_all_serve_everything(self, tiny_trace):
        for router in ("round-robin", "session-affinity", "power-of-two"):
            report = _cluster_run(tiny_trace, preemptive=False, router=router)
            assert len(report.completed) == 128
            assert report.router == router

    def test_fairness_index_bounds(self, preemptive_report):
        assert 0.0 < preemptive_report.fairness_index() <= 1.0
        assert 0.0 < preemptive_report.fairness_index(by="class") <= 1.0
        with pytest.raises(ValueError):
            preemptive_report.fairness_index(by="machine")

    def test_single_class_never_preempts(self, tiny_trace):
        workload = generate_workload(
            WorkloadConfig(rate=20000.0, num_requests=48,
                           prompt_lens=LengthDistribution(mean=16),
                           output_lens=LengthDistribution(mean=8)),
            seed=4)
        simulator = ClusterSimulator(
            "tiny-test",
            "fcfs",
            ClusterConfig(max_batch=8, num_machines=2),
            slo=SLOPolicy(preemptive=True),
            trace=tiny_trace,
        )
        report = simulator.run(workload)
        assert report.preemptions == 0
        assert len(report.completed) == 48


# ----------------------------------------------------------------------
# report math on hand-built records
# ----------------------------------------------------------------------
class TestClusterReport:
    def _report(self):
        slo = SLOPolicy(classes=(PriorityClass("a", priority=1,
                                               ttft_slo=1.0, tbt_slo=0.5),
                                 PriorityClass("b"),))
        records = [
            # ttft 0.5 (ok), gaps 0.25 (ok)
            RequestRecord(
                request=Request(req_id=0, arrival=0.0, prompt_len=4,
                                output_len=3, tenant="t0", class_name="a"),
                machine=0, prefill_start=0.2,
                token_times=[0.5, 0.75, 1.0]),
            # ttft 2.0 (miss), gaps 0.25 (ok)
            RequestRecord(
                request=Request(req_id=1, arrival=0.0, prompt_len=4,
                                output_len=2, tenant="t1", class_name="a"),
                machine=1, prefill_start=1.5, token_times=[2.0, 2.25]),
            # class b: no SLOs -> vacuously attained
            RequestRecord(
                request=Request(req_id=2, arrival=0.0, prompt_len=4,
                                output_len=1, tenant="t0", class_name="b"),
                machine=0, prefill_start=0.0, token_times=[3.0]),
        ]
        return ClusterReport(
            policy="fcfs",
            num_machines=2,
            records=records,
            makespan=4.0,
            queue_samples=[],
            batch_samples=[],
            machine_gpu_busy=[1.0, 0.5],
            machine_dimm_busy=[0.4, 0.2],
            router="round-robin",
            slo=slo,
        )

    def test_class_names_priority_ordered(self):
        assert self._report().class_names == ["a", "b"]

    def test_attainment_hand_computed(self):
        report = self._report()
        assert report.slo_attainment("a") == {
            "ttft": 0.5, "tbt": 1.0, "joint": 0.5
        }
        assert report.slo_attainment("b") == {
            "ttft": 1.0, "tbt": 1.0, "joint": 1.0
        }
        with pytest.raises(KeyError):
            report.class_of("zz")

    def test_class_percentiles(self):
        report = self._report()
        assert report.class_ttft_percentile("a", 0) == pytest.approx(0.5)
        assert report.class_ttft_percentile("a", 100) == pytest.approx(2.0)
        # single token: no gaps -> "no data", not an exception
        assert math.isnan(report.class_tbt_percentile("b", 50))

    def test_fairness_hand_computed(self):
        report = self._report()
        # t0: 4 tokens / (1.0 + 3.0)s = 1.0; t1: 2 tokens / 2.25s
        x = [1.0, 2 / 2.25]
        want = sum(x) ** 2 / (2 * sum(v * v for v in x))
        assert report.fairness_index() == pytest.approx(want)

    def test_busy_aggregates(self):
        report = self._report()
        assert report.gpu_busy == pytest.approx(1.5)
        assert report.machine_gpu_utilization == pytest.approx([0.25, 0.125])


# ----------------------------------------------------------------------
# 1-machine cluster == single-machine simulator (exact), non-property
# ----------------------------------------------------------------------
def test_one_machine_round_robin_matches_serving(tiny_trace):
    workload = generate_workload(
        WorkloadConfig(rate=2000.0, num_requests=40,
                       prompt_lens=LengthDistribution(mean=32),
                       output_lens=LengthDistribution(kind="uniform",
                                                      mean=24, low=8,
                                                      high=40)),
        seed=3)
    base = ServingSimulator("tiny-test", "fcfs",
                            ServingConfig(max_batch=8),
                            trace=tiny_trace).run(workload)
    clustered = ClusterSimulator(
        "tiny-test", "fcfs",
        ClusterConfig(max_batch=8, num_machines=1, router="round-robin"),
        trace=tiny_trace).run(workload)
    assert clustered.makespan == base.makespan
    assert [r.token_times for r in clustered.records] == \
        [r.token_times for r in base.records]
    assert clustered.queue_samples == base.queue_samples
    assert clustered.batch_samples == base.batch_samples
    assert clustered.machine_gpu_busy == base.machine_gpu_busy
    assert clustered.machine_dimm_busy == base.machine_dimm_busy
