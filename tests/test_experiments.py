"""Tests for the experiment harness: every figure regenerates and the
headline shapes hold."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, geometric_mean
from repro.experiments.common import ExperimentResult, trace_for


class TestCommon:
    def test_trace_cache_returns_same_object(self):
        a = trace_for("tiny-test", quick=True)
        b = trace_for("tiny-test", quick=True)
        assert a is b

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_result_to_text_renders(self):
        result = ExperimentResult(
            name="x",
            description="d",
            headers=["a", "b"],
            rows=[[1, None], [2.5, "ok"]],
            notes=["note"],
        )
        text = result.to_text()
        assert "N.P." in text and "note" in text

    def test_result_column(self):
        result = ExperimentResult(
            name="x", description="d", headers=["a", "b"], rows=[[1, 2]]
        )
        assert result.column("b") == [2]
        with pytest.raises(ValueError):
            result.column("c")


@pytest.mark.slow
class TestEveryExperimentRuns:
    """Smoke-run each figure in quick mode; these dominate suite runtime."""

    @pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
    def test_runs_and_is_well_formed(self, name):
        result = ALL_EXPERIMENTS[name](quick=True)
        assert isinstance(result, ExperimentResult)
        assert result.rows, name
        width = len(result.headers)
        for row in result.rows:
            assert len(row) == width
        assert result.to_text()


@pytest.mark.slow
class TestHeadlineShapes:
    def test_fig04_similarity_decays_from_high_adjacency(self):
        result = ALL_EXPERIMENTS["fig04"](quick=False)
        for row in result.rows:
            d1, d10 = row[1], row[4]
            assert d1 > 0.85  # paper: >90%
            assert d1 > d10   # monotone decay

    def test_motivation_statistics_in_paper_range(self):
        result = ALL_EXPERIMENTS["motivation"](quick=True)
        stats = {row[0]: row[1] for row in result.rows}
        assert stats["hot 20% computation share"] > 0.6
        assert 0.2 < stats["hot-set churn during decode"] < 0.9
        assert stats["fixed vs oracle slowdown"] > 1.0

    def test_fig16_batch16_scales_with_multipliers(self):
        result = ALL_EXPERIMENTS["fig16"](quick=True)
        rows = {row[0]: row[1:] for row in result.rows}
        # batch 1 saturates early; batch 16 keeps scaling (paper: 3.86x)
        assert rows[1][-1] < 1.5
        assert rows[16][-1] > 2.0

    def test_predictor_accuracy_near_claim(self):
        result = ALL_EXPERIMENTS["predictor"](quick=True)
        for row in result.rows:
            assert row[1] > 0.90  # paper: ~98%

    def test_fig17_efficiency_between_zero_and_one(self):
        result = ALL_EXPERIMENTS["fig17"](quick=True)
        for row in result.rows:
            assert 0 < row[3] < 150
