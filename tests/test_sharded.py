"""Bit-equality pins for the sharded cluster event loop.

``config.shards`` partitions the fleet into per-shard calendars
synchronized only at crash instants (see :mod:`repro.cluster.sharded`).
The contract pinned here: for a fixed scenario and seed, the sharded
run equals the single-calendar reference — records (every token
timestamp, preemption, migration), per-machine busy time, makespan,
and batch-occupancy statistics — for any shard count, for inline and
spawned-process workers alike.

Scope notes (deliberate, documented in the module under test):

* fault equality runs use the session-affinity router: round-robin's
  shared counter makes arrivals landing *exactly* on a crash instant
  order-ambiguous against that instant's migrations in the reference
  (heap order), so round-robin is pinned fault-free only;
* crash instants are distinct per machine — simultaneous multi-machine
  crashes with refugees routed onto co-crashed machines are likewise
  heap-order-ambiguous in the reference;
* ``mean_queue_depth`` is excluded: the reference may ingest (and
  sample) a waiting arrival at another shard's machine boundary; no
  scheduling decision observes that difference.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ClusterSimulator
from repro.serving import (
    MachineGroup,
    ServingConfig,
    ServingSimulator,
    WorkloadConfig,
    generate_workload,
)
from repro.serving.faults import CrashSpec, FaultSchedule
from repro.serving.workload import merge_workloads

MODEL = "tiny-test"

FLEETS = {
    "hermes": None,  # homogeneous default fleet
    "dense": [MachineGroup(count=4, backend="dense")],
    "mixed": [
        MachineGroup(count=2, backend="dense"),
        MachineGroup(count=2, backend="dejavu"),
    ],
}


def _workload(n_tenants=6, per=15, rate=8.0, seed=5):
    streams = [
        generate_workload(
            WorkloadConfig(num_requests=per, rate=rate),
            seed=seed + i,
            tenant=f"t{i}",
        )
        for i in range(n_tenants)
    ]
    return merge_workloads(*streams)


def _run(config, workload, fleet=None):
    sim = ClusterSimulator(MODEL, "fcfs", config, fleet=fleet)
    return sim.run(list(workload))


def _assert_reports_equal(ref, rep):
    assert rep.makespan == ref.makespan
    assert rep.machine_gpu_busy == ref.machine_gpu_busy
    assert rep.machine_dimm_busy == ref.machine_dimm_busy
    assert rep.batch_samples == sorted(
        rep.batch_samples, key=lambda s: s[0]
    )
    assert len(rep.records) == len(ref.records)
    for a, b in zip(ref.records, rep.records):
        assert a.request.req_id == b.request.req_id
        assert a.machine == b.machine
        assert a.prefill_start == b.prefill_start
        assert a.token_times == b.token_times
        assert a.preemptions == b.preemptions
        assert a.migrations == b.migrations
        assert a.needs_prefill == b.needs_prefill
    assert rep.mean_batch_size == ref.mean_batch_size


class TestShardedEqualsSingleProcess:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        fleet_name=st.sampled_from(sorted(FLEETS)),
        router=st.sampled_from(["round-robin", "session-affinity"]),
        shards=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_fault_free(self, fleet_name, router, shards, seed):
        """Sharded == reference, fault-free, all fleets and routers."""
        workload = _workload(seed=11 + seed)
        base = ClusterConfig(num_machines=4, router=router, max_batch=4)
        ref = _run(base, workload, fleet=FLEETS[fleet_name])
        cfg = dataclasses.replace(base, shards=shards)
        rep = _run(cfg, workload, fleet=FLEETS[fleet_name])
        _assert_reports_equal(ref, rep)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        fleet_name=st.sampled_from(sorted(FLEETS)),
        shards=st.sampled_from([1, 2, 4]),
        crash_times=st.lists(
            st.floats(min_value=0.3, max_value=4.0),
            min_size=1,
            max_size=3,
            unique=True,
        ),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_with_crashes(self, fleet_name, shards, crash_times, seed):
        """Sharded == reference under crash/restart faults.

        Distinct crash instants on distinct machines, session-affinity
        routing (order-independent targets) — the supported fault
        envelope; see the module docstring for why.
        """
        faults = FaultSchedule(crashes=tuple(
            CrashSpec(machine=i % 4, at=at, restart_after=0.5 + 0.2 * i)
            for i, at in enumerate(sorted(crash_times))
        ))
        workload = _workload(per=25, seed=17 + seed)
        base = ClusterConfig(
            num_machines=4,
            router="session-affinity",
            max_batch=4,
            faults=faults,
        )
        ref = _run(base, workload, fleet=FLEETS[fleet_name])
        cfg = dataclasses.replace(base, shards=shards)
        rep = _run(cfg, workload, fleet=FLEETS[fleet_name])
        _assert_reports_equal(ref, rep)

    def test_crash_migrations_actually_happen(self):
        """The fault pin above must exercise real cross-machine hops."""
        faults = FaultSchedule(crashes=(
            CrashSpec(machine=1, at=0.9, restart_after=0.7),
            CrashSpec(machine=3, at=1.9, restart_after=0.6),
        ))
        workload = _workload(per=40, seed=5)
        base = ClusterConfig(
            num_machines=4,
            router="session-affinity",
            max_batch=4,
            faults=faults,
        )
        ref = _run(base, workload)
        assert sum(r.migrations for r in ref.records) > 0
        rep = _run(dataclasses.replace(base, shards=4), workload)
        _assert_reports_equal(ref, rep)

    def test_process_workers_equal_inline(self):
        """shard_processes=True spawns workers; results are identical."""
        workload = _workload(per=10, seed=23)
        base = ClusterConfig(num_machines=4, router="round-robin",
                             max_batch=4)
        ref = _run(base, workload)
        cfg = dataclasses.replace(
            base, shards=2, shard_processes=True
        )
        rep = _run(cfg, workload)
        _assert_reports_equal(ref, rep)

    def test_two_sharded_runs_identical(self):
        """Sharded runs are deterministic run-to-run (golden drift)."""
        workload = _workload(per=15, seed=31)
        cfg = ClusterConfig(num_machines=4, router="round-robin",
                            max_batch=4, shards=2)
        a = _run(cfg, workload)
        b = _run(cfg, workload)
        _assert_reports_equal(a, b)


class TestShardedTelemetry:
    def test_merged_stream_is_time_ordered_and_complete(self):
        from repro.telemetry.events import (
            RequestCompleted,
            RunEnded,
            RunStarted,
        )
        from repro.telemetry.tracer import RecordingTracer

        workload = _workload(per=10, seed=7)
        cfg = ClusterConfig(num_machines=4, router="round-robin",
                            max_batch=4, shards=2)
        tracer = RecordingTracer()
        report = _run(cfg, workload)
        sim = ClusterSimulator(MODEL, "fcfs", cfg)
        traced = sim.run(list(workload), tracer=tracer)
        _assert_reports_equal(report, traced)
        events = tracer.events
        assert isinstance(events[0], RunStarted)
        assert isinstance(events[-1], RunEnded)
        times = [e.time for e in events[1:-1]]
        assert times == sorted(times)
        completed = [
            e for e in events if isinstance(e, RequestCompleted)
        ]
        assert len(completed) == len(
            [r for r in traced.records if r.finished]
        )


class TestShardedValidation:
    def test_base_simulator_rejects_shards(self):
        cfg = ServingConfig(num_machines=2, shards=2)
        sim = ServingSimulator(MODEL, "fcfs", cfg)
        with pytest.raises(ValueError, match="cluster front door"):
            sim.run(_workload(per=2))

    def test_more_shards_than_machines(self):
        cfg = ClusterConfig(num_machines=2, shards=3)
        with pytest.raises(ValueError, match="cannot exceed"):
            _run(cfg, _workload(per=2))

    def test_load_dependent_router_rejected(self):
        cfg = ClusterConfig(num_machines=4, router="least-loaded",
                            shards=2)
        with pytest.raises(ValueError, match="not shardable"):
            _run(cfg, _workload(per=2))

    def test_health_aware_rejected(self):
        faults = FaultSchedule(crashes=(
            CrashSpec(machine=0, at=1.0, restart_after=0.5),
        ))
        cfg = ClusterConfig(num_machines=4, shards=2, health_aware=True,
                            faults=faults)
        with pytest.raises(ValueError, match="health_aware"):
            _run(cfg, _workload(per=2))

    def test_partitions_rejected(self):
        from repro.serving.faults import PartitionSpec

        faults = FaultSchedule(partitions=(
            PartitionSpec(machine=0, start=1.0, end=2.0),
        ))
        cfg = ClusterConfig(num_machines=4, shards=2, faults=faults)
        with pytest.raises(ValueError, match="partition"):
            _run(cfg, _workload(per=2))

    def test_shard_processes_requires_shards(self):
        with pytest.raises(ValueError, match="shard_processes"):
            ClusterConfig(num_machines=2, shard_processes=True)
