"""Integration tests for the baseline systems and cross-system ordering."""

import pytest

from repro.baselines import (
    DejaVu,
    FlexGen,
    HermesBase,
    HermesHost,
    HuggingfaceAccelerate,
    TensorRTLLM,
)
from repro.core import HermesSystem
from repro.models import get_model


@pytest.fixture(scope="module")
def opt13(machine, small_opt_trace):
    """Run every system once on OPT-13B and cache the results."""
    model = get_model("OPT-13B")
    systems = {
        "hermes": HermesSystem(machine, model),
        "base": HermesBase(machine, model),
        "host": HermesHost(machine, model),
        "dejavu": DejaVu(machine, model),
        "flexgen": FlexGen(machine, model),
        "accelerate": HuggingfaceAccelerate(machine, model),
    }
    return {
        name: s.run(small_opt_trace, batch=1) for name, s in systems.items()
    }


class TestEverySystemRuns:
    @pytest.mark.parametrize(
        "name", ["hermes", "base", "host", "dejavu", "flexgen", "accelerate"]
    )
    def test_positive_throughput(self, opt13, name):
        assert opt13[name].tokens_per_second > 0

    @pytest.mark.parametrize("name", ["dejavu", "flexgen", "accelerate"])
    def test_offloaders_record_communication(self, opt13, name):
        assert opt13[name].breakdown["communication"] > 0


class TestPaperOrdering:
    """Figure 9/10 qualitative ordering on a single model."""

    def test_hermes_beats_everything(self, opt13):
        hermes = opt13["hermes"].tokens_per_second
        for name in ("base", "host", "dejavu", "flexgen", "accelerate"):
            assert hermes > opt13[name].tokens_per_second, name

    def test_sparsity_systems_beat_dense_offloading(self, opt13):
        assert (opt13["dejavu"].tokens_per_second
                > opt13["flexgen"].tokens_per_second)

    def test_flexgen_overlap_beats_accelerate(self, opt13):
        assert (opt13["flexgen"].tokens_per_second
                > opt13["accelerate"].tokens_per_second)

    def test_local_compute_beats_pcie_streaming(self, opt13):
        """Hermes-host and Hermes-base avoid per-token PCIe weight
        traffic, so both must beat every PCIe-bound offloader."""
        floor = max(opt13[n].tokens_per_second
                    for n in ("dejavu", "flexgen", "accelerate"))
        assert opt13["host"].tokens_per_second > floor
        assert opt13["base"].tokens_per_second > floor

    def test_hermes_speedup_over_flexgen_is_large(self, opt13):
        """Paper: two orders of magnitude (247x avg); shape check >20x."""
        ratio = (opt13["hermes"].tokens_per_second
                 / opt13["flexgen"].tokens_per_second)
        assert ratio > 20

    def test_dejavu_communication_dominates(self, opt13):
        """Paper Fig. 12a: ~89% of Deja Vu runtime is communication."""
        fractions = opt13["dejavu"].breakdown_fractions()
        assert fractions["communication"] > 0.5


class TestDejaVu:
    def test_predictor_footprint_near_2gb_for_7b(self, machine):
        dejavu = DejaVu(machine, get_model("LLaMA-7B"))
        total = dejavu.predictor_bytes_per_layer() * dejavu.model.num_layers
        # paper §III-B: ~2 GB of MLP predictors for LLaMA-7B
        assert 0.3 * 2**30 < total < 3 * 2**30

    def test_batching_increases_per_token_traffic(
        self, machine, small_opt_trace
    ):
        dejavu = DejaVu(machine, get_model("OPT-13B"))
        r1 = dejavu.run(small_opt_trace, batch=1)
        r16 = dejavu.run(small_opt_trace, batch=16)
        comm1 = r1.breakdown["communication"]
        comm16 = r16.breakdown["communication"]
        assert comm16 > comm1  # unioned activations move more bytes


class TestHermesBase:
    def test_gpu_resident_layers_counted(self, machine):
        base = HermesBase(machine, get_model("OPT-13B"))
        n = base.gpu_resident_layers()
        assert 0 < n <= base.model.num_layers

    def test_no_weight_pcie_during_decode(self, machine, small_opt_trace):
        base = HermesBase(machine, get_model("OPT-13B"))
        result = base.run(small_opt_trace)
        # only the prompt KV push is charged to communication
        kv = base.model.kv_bytes_total(small_opt_trace.prompt_len)
        assert result.breakdown["communication"] == pytest.approx(
            machine.pcie.transfer_time(kv)
        )


class TestTensorRT:
    def test_rejects_undersized_cluster(self):
        with pytest.raises(ValueError):
            TensorRTLLM(get_model("LLaMA2-70B"), num_gpus=2)

    def test_llama70b_runs_on_5_a100(self, small_opt_trace, machine):
        from repro.sparsity import TraceConfig, generate_trace
        model = get_model("LLaMA2-70B")
        trace = generate_trace(
            model,
            TraceConfig(prompt_len=16, decode_len=16, granularity=256),
            seed=1,
        )
        result = TensorRTLLM(model).run(trace)
        assert result.tokens_per_second > 5

    def test_batching_scales_well(self, machine):
        from repro.sparsity import TraceConfig, generate_trace
        model = get_model("LLaMA2-70B")
        trace = generate_trace(
            model,
            TraceConfig(prompt_len=16, decode_len=16, granularity=256),
            seed=1,
        )
        system = TensorRTLLM(model)
        t1 = system.run(trace, batch=1).decode_tokens_per_second
        t16 = system.run(trace, batch=16).decode_tokens_per_second
        assert t16 > 8 * t1  # dense serving batches almost linearly
