"""Tests for declarative scenario specs (`repro.scenarios`)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.experiments.cluster_eval import SCENARIO_DIR, resolve_scenario
from repro.scenarios import load_scenario, parse_scenario

MINIMAL = {
    "model": "tiny-test",
    "trace": {"granularity": 4, "seed": 7},
    "tenants": [
        {"name": "t0", "rate": 2000.0, "num_requests": 8,
         "prompt_lens": {"kind": "fixed", "mean": 16},
         "output_lens": {"kind": "fixed", "mean": 4}},
    ],
}

TWO_CLASS = {
    "model": "tiny-test",
    "seed": 3,
    "trace": {"granularity": 4, "seed": 7},
    "cluster": {"num_machines": 2, "max_batch": 8,
                "router": "least-loaded", "policy": "fcfs"},
    "slo": {"preemptive": True, "headroom": 0.8},
    "classes": {
        "hi": {"priority": 2, "ttft_slo": 0.002, "tbt_slo": 0.004},
        "lo": {"priority": 0},
    },
    "tenants": [
        {"name": "chat", "class": "hi", "rate": 3000.0,
         "num_requests": 12,
         "prompt_lens": {"kind": "fixed", "mean": 16},
         "output_lens": {"kind": "fixed", "mean": 8}},
        {"name": "bulk", "class": "lo", "arrival": "bursty",
         "rate": 8000.0, "num_requests": 24, "burst_factor": 3.0,
         "burst_fraction": 0.25,
         "prompt_lens": {"kind": "fixed", "mean": 32},
         "output_lens": {"kind": "fixed", "mean": 16}},
    ],
}


class TestParsing:
    def test_minimal_defaults(self):
        scenario = parse_scenario(copy.deepcopy(MINIMAL))
        assert scenario.config.num_machines == 2  # ClusterConfig default
        assert scenario.config.router == "round-robin"
        assert scenario.policy.name == "fcfs"
        # untagged tenants get the implicit default class
        assert {c.name for c in scenario.slo.classes} == {"default"}

    def test_unknown_keys_rejected_everywhere(self):
        for mutate in (
            lambda d: d.update(routers="oops"),
            lambda d: d["trace"].update(granluarity=4),
            lambda d: d["tenants"][0].update(prompt_len=16),
            lambda d: d["tenants"][0]["prompt_lens"].update(man=16),
        ):
            data = copy.deepcopy(MINIMAL)
            mutate(data)
            with pytest.raises(ValueError, match="unknown keys"):
                parse_scenario(data)

    def test_missing_model_or_tenants(self):
        with pytest.raises(ValueError, match="model"):
            parse_scenario({"tenants": MINIMAL["tenants"]})
        with pytest.raises(ValueError, match="tenant"):
            parse_scenario({"model": "tiny-test"})

    def test_undeclared_class_rejected(self):
        data = copy.deepcopy(MINIMAL)
        data["tenants"][0]["class"] = "gold"
        with pytest.raises(ValueError, match="not declared"):
            parse_scenario(data)

    def test_unknown_router_rejected(self):
        data = copy.deepcopy(MINIMAL)
        data["cluster"] = {"router": "dns"}
        with pytest.raises(ValueError, match="unknown router"):
            parse_scenario(data)

    def test_union_cap_needs_hermes_union(self):
        data = copy.deepcopy(MINIMAL)
        data["cluster"] = {"policy": "fcfs", "union_cap": 1.5}
        with pytest.raises(ValueError, match="union_cap"):
            parse_scenario(data)
        data["cluster"] = {"policy": "hermes-union", "union_cap": 1.5}
        assert parse_scenario(data).policy.union_cap == 1.5

    def test_machine_overrides(self):
        data = copy.deepcopy(MINIMAL)
        data["machine"] = {
            "gpu": "RTX 3090", "num_dimms": 4, "sync_latency": 1e-6
        }
        machine = parse_scenario(data).machine
        assert machine.gpu.name == "RTX 3090"
        assert machine.num_dimms == 4
        assert machine.sync_latency == 1e-6

    def test_tenant_seeds_default_distinct(self):
        data = copy.deepcopy(TWO_CLASS)
        for tenant in data["tenants"]:
            tenant.pop("seed", None)
        scenario = parse_scenario(data)
        seeds = [t.seed for t in scenario.tenants]
        assert len(set(seeds)) == len(seeds)

    def test_workload_merge_and_tags(self):
        scenario = parse_scenario(copy.deepcopy(TWO_CLASS))
        workload = scenario.build_workload()
        assert len(workload) == 36
        arrivals = [r.arrival for r in workload]
        assert arrivals == sorted(arrivals)
        assert [r.req_id for r in workload] == list(range(36))
        assert {r.tenant for r in workload} == {"chat", "bulk"}
        assert {r.class_name for r in workload} == {"hi", "lo"}

    def test_deterministic(self):
        a = parse_scenario(copy.deepcopy(TWO_CLASS))
        b = parse_scenario(copy.deepcopy(TWO_CLASS))
        assert [(r.arrival, r.prompt_len) for r in a.build_workload()] \
            == [(r.arrival, r.prompt_len) for r in b.build_workload()]


class TestLoading:
    def test_load_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(MINIMAL))
        assert load_scenario(path).name == "spec"

    def test_load_toml(self, tmp_path):
        pytest.importorskip(
            "tomllib", reason="TOML scenarios need Python >= 3.11"
        )
        path = tmp_path / "spec.toml"
        path.write_text(
            'model = "tiny-test"\n'
            "[trace]\ngranularity = 4\n"
            "[[tenants]]\nname = \"t0\"\nrate = 2000.0\n"
            "num_requests = 4\n"
            'prompt_lens = {kind = "fixed", mean = 16}\n'
            'output_lens = {kind = "fixed", mean = 4}\n')
        scenario = load_scenario(path)
        assert scenario.tenants[0].name == "t0"

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("model: tiny-test")
        with pytest.raises(ValueError, match="unsupported"):
            load_scenario(path)

    def test_resolve_scenario_lookup(self):
        direct = resolve_scenario("scenarios/mixed_slo_tiny.json") \
            if (SCENARIO_DIR / "mixed_slo_tiny.json").exists() else None
        by_name = resolve_scenario("mixed_slo_tiny")
        assert by_name.name == "mixed_slo_tiny.json"
        if direct is not None:
            assert direct.read_bytes() == by_name.read_bytes()
        with pytest.raises(FileNotFoundError):
            resolve_scenario("no_such_scenario")

    def test_bundled_specs_parse(self):
        for path in sorted(SCENARIO_DIR.glob("*.json")):
            scenario = load_scenario(path)
            assert scenario.tenants


class TestEndToEnd:
    def test_small_scenario_runs(self, tiny_trace):
        scenario = parse_scenario(copy.deepcopy(TWO_CLASS))
        report = scenario.run(tiny_trace)
        assert len(report.completed) == 36
        assert report.num_machines == 2
        assert report.router == "least-loaded"
        assert set(report.class_names) >= {"hi", "lo"}
        # both classes produced SLO numbers
        for name in ("hi", "lo"):
            attainment = report.slo_attainment(name)
            assert 0.0 <= attainment["joint"] <= 1.0
