"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

from repro import (
    HermesSystem,
    Machine,
    generate_trace,
    machine_cost_usd,
)
from repro.core import HermesConfig
from repro.experiments.fig09_end_to_end import SYSTEMS, build_system
from repro.experiments.fig13_ablation import VARIANTS
from repro.sparsity import TraceConfig, load_trace, save_trace


class TestTraceToResultPipeline:
    def test_saved_trace_reproduces_the_run(
        self, tmp_path, machine, tiny_model, tiny_trace
    ):
        """Serialise -> reload -> identical simulation outcome."""
        path = tmp_path / "trace.npz"
        save_trace(tiny_trace, path)
        reloaded = load_trace(path)
        a = HermesSystem(machine, tiny_model).run(tiny_trace)
        b = HermesSystem(machine, tiny_model).run(reloaded)
        assert a.decode_time == pytest.approx(b.decode_time)
        assert a.breakdown == pytest.approx(b.breakdown)

    def test_different_seeds_give_different_latencies(
        self, machine, tiny_model
    ):
        cfg = TraceConfig(prompt_len=16, decode_len=32, granularity=8)
        results = []
        for seed in (1, 2):
            trace = generate_trace(tiny_model, cfg, seed=seed)
            results.append(
                HermesSystem(machine, tiny_model).run(trace).decode_time
            )
        assert results[0] != results[1]

    def test_seed_variance_is_small(self, machine, tiny_model):
        """Throughput is a property of the workload statistics, not the
        specific random draw: seeds must agree within a few percent."""
        cfg = TraceConfig(prompt_len=32, decode_len=64, granularity=8)
        rates = []
        for seed in (1, 2, 3):
            trace = generate_trace(tiny_model, cfg, seed=seed)
            rates.append(HermesSystem(machine, tiny_model).run(
                trace).decode_tokens_per_second)
        assert np.std(rates) / np.mean(rates) < 0.10


class TestExperimentFactories:
    def test_fig09_factory_builds_every_system(self, machine, tiny_model):
        for name in SYSTEMS:
            system = build_system(name, machine, tiny_model)
            assert system.name == name

    def test_fig13_variants_are_distinct_configs(self):
        assert len(VARIANTS) == 6
        assert VARIANTS["Hermes"] == HermesConfig()
        assert VARIANTS["Hermes-random"].partition_strategy == "random"
        assert not VARIANTS["Hermes-partition"].online_adjustment
        assert not VARIANTS["Hermes-token-adjustment"].layer_prediction
        assert not VARIANTS["Hermes-layer-adjustment"].token_prediction
        assert not VARIANTS["Hermes-adjustment"].window_scheduling


class TestWholeSystemInvariants:
    def test_hot_bytes_never_exceed_budget(
        self, machine, tiny_model, tiny_trace
    ):
        result = HermesSystem(machine, tiny_model).run(tiny_trace)
        assert result.metadata["hot_bytes"] \
            <= result.metadata["gpu_hot_budget"]

    def test_decode_rate_excludes_prefill(
        self, machine, tiny_model, tiny_trace
    ):
        result = HermesSystem(machine, tiny_model).run(tiny_trace)
        assert (result.decode_tokens_per_second >= result.tokens_per_second)

    def test_oracle_beats_or_ties_every_variant(
        self, machine, tiny_model, tiny_trace
    ):
        oracle = HermesSystem(
            machine, tiny_model,
            HermesConfig(oracle=True, window_scheduling=False,
                         online_adjustment=False)).run(tiny_trace)
        for name, config in VARIANTS.items():
            result = HermesSystem(machine, tiny_model, config).run(tiny_trace)
            assert (oracle.decode_latency_per_token
                    <= result.decode_latency_per_token * 1.10), name

    def test_cost_model_scales_with_dimms(self):
        small = machine_cost_usd(Machine(num_dimms=4))
        large = machine_cost_usd(Machine(num_dimms=16))
        assert large > small

    def test_migration_traffic_bounded_by_cold_pool(
        self, machine, tiny_model, tiny_trace
    ):
        """A run cannot migrate more unique bytes per rebalance than the
        cold pool holds; sanity-bound total traffic."""
        result = HermesSystem(machine, tiny_model).run(tiny_trace)
        sparse_total = (
            tiny_model.sparse_bytes_per_layer * tiny_model.num_layers
        )
        n_windows = max(1, tiny_trace.n_decode_tokens // 5)
        assert result.metadata["remap_bytes"] \
            <= sparse_total * n_windows

    def test_all_public_symbols_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
