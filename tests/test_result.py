"""Unit tests for the RunResult container."""

import pytest

from repro.core import BREAKDOWN_KEYS, RunResult


def make(system="Hermes", batch=1, prefill=1.0, decode=2.0, n=10):
    return RunResult(
        system=system,
        model="tiny-test",
        batch=batch,
        prefill_time=prefill,
        decode_time=decode,
        n_decode_tokens=n,
    )


class TestRunResult:
    def test_tokens_per_second_includes_prefill(self):
        r = make()
        assert r.tokens_per_second == pytest.approx(10 / 3.0)

    def test_decode_only_rate(self):
        r = make()
        assert r.decode_tokens_per_second == pytest.approx(5.0)

    def test_batch_scales_rate(self):
        assert make(batch=4).tokens_per_second == pytest.approx(40 / 3.0)

    def test_latency_per_token(self):
        assert make().decode_latency_per_token == pytest.approx(0.2)

    def test_breakdown_accumulates(self):
        r = make()
        r.add("fc", 1.0)
        r.add("fc", 0.5)
        assert r.breakdown["fc"] == 1.5

    def test_breakdown_rejects_unknown_keys(self):
        r = make()
        with pytest.raises(ValueError):
            r.add("pizza", 1.0)
        with pytest.raises(ValueError):
            r.add("fc", -1.0)

    def test_breakdown_fractions_sum_to_one(self):
        r = make()
        r.add("fc", 3.0)
        r.add("attention", 1.0)
        fractions = r.breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["fc"] == pytest.approx(0.75)

    def test_breakdown_fractions_empty_raises(self):
        with pytest.raises(ValueError):
            make().breakdown_fractions()

    def test_speedup_over(self):
        fast = make(decode=1.0, prefill=0.5)
        slow = make(decode=10.0, prefill=5.0)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_speedup_rejects_mismatched_workloads(self):
        with pytest.raises(ValueError):
            make(batch=1).speedup_over(make(batch=2))

    def test_validation(self):
        with pytest.raises(ValueError):
            make(batch=0)
        with pytest.raises(ValueError):
            make(n=0)
        with pytest.raises(ValueError):
            make(decode=0.0)
        with pytest.raises(ValueError):
            RunResult(
                system="s",
                model="m",
                batch=1,
                prefill_time=0.1,
                decode_time=1.0,
                n_decode_tokens=1,
                breakdown={"bogus": 1.0},
            )

    def test_breakdown_keys_cover_fig12(self):
        for key in (
            "fc",
            "attention",
            "predictor",
            "prefill",
            "communication",
            "others",
        ):
            assert key in BREAKDOWN_KEYS
