"""Tests for the parallel sweep executor (`repro.experiments.runner`).

The core guarantee: fanning a grid out over worker processes produces
*byte-identical* experiment payloads to a serial run — same rows, same
order, same floats.
"""

import dataclasses
import json

import pytest

from repro.experiments import serving_eval
from repro.experiments.runner import (
    JOBS_ENV,
    default_jobs,
    flatten,
    resolve_jobs,
    run_grid,
)


def _square(x):
    return x * x


class TestRunGrid:
    def test_serial_preserves_order(self):
        assert run_grid(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        points = list(range(7))
        assert run_grid(_square, points, jobs=2) == \
            [x * x for x in points]

    def test_empty_grid(self):
        assert run_grid(_square, [], jobs=4) == []

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_grid(_square, [1], jobs=0)

    def test_flatten_keeps_order(self):
        assert flatten([[[1], [2]], [], [[3]]]) == [[1], [2], [3]]


class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert default_jobs() == 3
        assert resolve_jobs(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_env_validation(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "zero")
        with pytest.raises(ValueError):
            default_jobs()
        monkeypatch.setenv(JOBS_ENV, "0")
        with pytest.raises(ValueError):
            default_jobs()


class TestParallelEquivalence:
    def test_serving_sweep_jobs2_matches_jobs1(self):
        """--jobs 2 must produce a byte-identical ExperimentResult
        payload to --jobs 1 on the quick serving sweep."""
        serial = serving_eval.run(quick=True, jobs=1)
        parallel = serving_eval.run(quick=True, jobs=2)
        assert json.dumps(dataclasses.asdict(serial), sort_keys=True) == \
            json.dumps(dataclasses.asdict(parallel), sort_keys=True)
