"""Shared fixtures: a tiny model + trace that every system can run fast."""

from __future__ import annotations

import pytest

from repro.hardware import Machine
from repro.models import get_model
from repro.sparsity import TraceConfig, generate_trace


@pytest.fixture(scope="session")
def tiny_model():
    return get_model("tiny-test")


@pytest.fixture(scope="session")
def machine():
    return Machine()


@pytest.fixture(scope="session")
def tiny_trace(tiny_model):
    """A small but non-degenerate trace: 4 layers x 320 groups, 96 tokens."""
    config = TraceConfig(prompt_len=32, decode_len=64, granularity=4)
    return generate_trace(tiny_model, config, seed=11)


@pytest.fixture(scope="session")
def small_opt_trace():
    """OPT-13B at coarse granularity: realistic geometry, fast to simulate."""
    config = TraceConfig(prompt_len=32, decode_len=32, granularity=128)
    return generate_trace(get_model("OPT-13B"), config, seed=11)
