"""Tests for the pluggable serving backends and heterogeneous fleets."""

from __future__ import annotations

import pytest

from repro.baselines import DejaVu, FlexGen, TensorRTLLM
from repro.cluster import ThroughputLeastLoadedRouter, get_router
from repro.core import HermesConfig
from repro.hardware import Machine
from repro.models import get_model
from repro.serving import (
    BACKENDS,
    DejaVuBackend,
    DenseGPUBackend,
    LengthDistribution,
    MachineExecutor,
    MachineGroup,
    Request,
    ServingBackend,
    ServingConfig,
    ServingSimulator,
    WorkloadConfig,
    generate_workload,
    make_backend,
)
from repro.sparsity import TraceConfig, generate_trace


@pytest.fixture(scope="module")
def backends(machine, tiny_model, tiny_trace):
    return {
        name: make_backend(name, machine, tiny_model, trace=tiny_trace,
                           nominal_batch=4)
        for name in BACKENDS
    }


class TestRegistry:
    def test_registry_names(self):
        assert set(BACKENDS) == {"hermes", "dense", "dejavu"}

    def test_instances_satisfy_protocol(self, backends):
        for name, backend in backends.items():
            assert isinstance(backend, ServingBackend), name
            assert backend.name == name

    def test_unknown_backend_rejected(self, machine, tiny_model):
        with pytest.raises(KeyError, match="unknown backend"):
            make_backend("vllm", machine, tiny_model)

    def test_hermes_config_rejected_off_hermes(
        self, machine, tiny_model, tiny_trace
    ):
        with pytest.raises(ValueError, match="Hermes engine config"):
            make_backend(
                "dense",
                machine,
                tiny_model,
                hermes_config=HermesConfig(oracle=True),
            )
        executor = make_backend(
            "hermes",
            machine,
            tiny_model,
            trace=tiny_trace,
            hermes_config=HermesConfig(oracle=True),
        )
        assert executor.system.config.oracle

    def test_capability_flags(self, backends):
        assert backends["hermes"].supports_union_batching
        assert backends["dejavu"].supports_union_batching
        assert not backends["dense"].supports_union_batching
        for backend in backends.values():
            assert backend.supports_preemption


class TestSteppableSurface:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_decode_step_positive_and_tracked(self, backends, name):
        backend = backends[name]
        cost = backend.decode_step(2, 40)
        assert cost.seconds > 0
        assert cost.gpu_busy >= 0 and cost.dimm_busy >= 0
        assert backend.last_step_seconds == cost.seconds

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_prefill_cost_memoised_and_growing(self, backends, name):
        backend = backends[name]
        short = backend.prefill_seconds(16)
        long = backend.prefill_seconds(256)
        assert 0 < short < long
        assert backend.prefill_cost(16) == backend.prefill_cost(16)

    def test_dense_mean_union_is_one(self, backends):
        for batch in (1, 2, 8):
            assert backends["dense"].mean_union(batch) == 1.0
        assert backends["dense"].max_union_batch(1.0, 16) == 16

    def test_dejavu_union_grows_with_batch(self, backends):
        dejavu = backends["dejavu"]
        assert dejavu.mean_union(1) == 1.0
        assert dejavu.mean_union(8) > dejavu.mean_union(2) > 1.0
        assert dejavu.max_union_batch(1.0, 16) == 1
        assert dejavu.max_union_batch(10.0, 16) == 16

    def test_dejavu_matches_offline_kernel(
        self, machine, tiny_model, tiny_trace
    ):
        """The backend charges the offline baseline's own token cost."""
        backend = DejaVuBackend(machine, tiny_model, trace=tiny_trace)
        core = DejaVu(machine, tiny_model)
        union = core.union_factors(tiny_trace, 2)
        t = next(iter(tiny_trace.decode_tokens()))
        want = core.token_cost(tiny_trace, t, 40, 2, union)
        got = backend.decode_step(2, 40)
        assert got.seconds == want.total

    def test_dense_resident_on_tiny_model(self, backends, machine, tiny_model):
        """tiny-test fits the GPU, so decode moves zero PCIe bytes and
        one token costs exactly L dense HBM reads plus attention."""
        dense = backends["dense"]
        assert dense.resident_fraction == 1.0
        cost = dense.decode_step(1, 40)
        assert cost.gpu_busy == cost.seconds

    def test_dense_streams_oversized_model(self, machine):
        """A model larger than GPU memory streams over PCIe: decode gets
        transfer-bound and the step takes far longer per byte."""
        model = get_model("OPT-30B")
        dense = DenseGPUBackend(machine, model)
        assert 0.0 <= dense.resident_fraction < 1.0
        cost = dense.decode_step(1, 40)
        assert cost.gpu_busy < cost.seconds

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_throughput_estimate_pure_and_deterministic(
        self, machine, tiny_model, tiny_trace, name
    ):
        a = make_backend(name, machine, tiny_model, trace=tiny_trace)
        b = make_backend(name, machine, tiny_model, trace=tiny_trace)
        a.decode_step(2, 40)
        est = a.estimated_tokens_per_second()
        assert est > 0
        assert est == b.estimated_tokens_per_second()
        # probing did not advance a's serving state: its next steps
        # still march in lockstep with the unprobed control instance
        b.decode_step(2, 40)
        for context in (41, 42, 43):
            assert (a.decode_step(2, context).seconds
                    == b.decode_step(2, context).seconds)
        assert a.last_step_seconds == b.last_step_seconds

    def test_backend_ordering_matches_offline_story(self, machine):
        """On a model well beyond GPU memory, sparsity beats dense
        streaming per token — the fig09 ordering, now online.  (OPT-13B
        is ~94 % resident on the default machine, so the dense stream is
        nearly free there; OPT-30B is the smallest model where PCIe
        dominates.)"""
        model = get_model("OPT-30B")
        config = TraceConfig(prompt_len=16, decode_len=16, granularity=256)
        trace = generate_trace(model, config, seed=11)
        dense = DenseGPUBackend(machine, model)
        dejavu = DejaVuBackend(machine, model, trace=trace)
        assert (dejavu.decode_step(1, 65).seconds
                < dense.decode_step(1, 65).seconds)

    def test_dejavu_rejects_mismatched_trace(self, machine, tiny_trace):
        with pytest.raises(ValueError, match="trace"):
            DejaVuBackend(machine, get_model("OPT-13B"), trace=tiny_trace)


class TestSpanEquivalence:
    """decode_span == sequential decode_step, bit for bit (the contract
    the macro-stepped serving loop relies on for every backend)."""

    @pytest.mark.parametrize("name", ("dense", "dejavu"))
    def test_span_equals_steps(self, machine, tiny_model, tiny_trace, name):
        ref = make_backend(name, machine, tiny_model, trace=tiny_trace)
        fused = make_backend(name, machine, tiny_model, trace=tiny_trace)
        contexts = [33 + i for i in range(12)]
        steps = [ref.decode_step(3, c) for c in contexts]
        span = fused.decode_span(3, contexts, start_time=2.0)
        assert span.seconds.tolist() == [s.seconds for s in steps]
        assert span.gpu_busy.tolist() == [s.gpu_busy for s in steps]
        assert span.dimm_busy.tolist() == [s.dimm_busy for s in steps]
        running = 2.0
        ends = []
        for s in steps:
            running += s.seconds
            ends.append(running)
        assert span.end_times.tolist() == ends

    @pytest.mark.parametrize("name", ("dense", "dejavu"))
    def test_until_truncates_after_crossing_step(
        self, machine, tiny_model, tiny_trace, name
    ):
        ref = make_backend(name, machine, tiny_model, trace=tiny_trace)
        fused = make_backend(name, machine, tiny_model, trace=tiny_trace)
        contexts = [40 + i for i in range(10)]
        steps = [ref.decode_step(2, c) for c in contexts]
        boundaries = []
        running = 1.0
        for s in steps:
            running += s.seconds
            boundaries.append(running)
        span = fused.decode_span(
            2, contexts, start_time=1.0, until=boundaries[3]
        )
        assert len(span) == 4
        assert span.end_times.tolist() == boundaries[:4]
        rest = fused.decode_span(
            2, contexts[4:], start_time=span.end_times[-1]
        )
        assert rest.end_times.tolist() == boundaries[4:]

    @pytest.mark.parametrize("name", ("dense", "dejavu"))
    def test_until_in_past_still_runs_one_step(
        self, machine, tiny_model, tiny_trace, name
    ):
        backend = make_backend(name, machine, tiny_model, trace=tiny_trace)
        span = backend.decode_span(1, [30, 31, 32], until=-1.0)
        assert len(span) == 1


class TestMachineGroup:
    def test_validation(self):
        with pytest.raises(ValueError, match="count"):
            MachineGroup(count=0)
        with pytest.raises(ValueError, match="unknown backend"):
            MachineGroup(backend="vllm")
        with pytest.raises(ValueError, match="nominal_batch"):
            MachineGroup(nominal_batch=0)

    def test_fleet_needs_groups(self, tiny_trace):
        with pytest.raises(ValueError, match="at least one"):
            ServingSimulator("tiny-test", "fcfs", trace=tiny_trace, fleet=[])

    def test_fleet_overrides_num_machines(self, tiny_trace):
        sim = ServingSimulator(
            "tiny-test", "fcfs",
            ServingConfig(max_batch=4, num_machines=1),
            trace=tiny_trace,
            fleet=[MachineGroup(count=2, backend="dense"),
                   MachineGroup(count=1, backend="dejavu")])
        assert sim.config.num_machines == 3
        assert sim.machine_backends == ["dense", "dense", "dejavu"]

    def test_group_model_override(self, machine, tiny_trace):
        sim = ServingSimulator(
            "tiny-test",
            "fcfs",
            ServingConfig(max_batch=4),
            trace=tiny_trace,
            granularity=4,
            fleet=[MachineGroup(count=1, backend="dense", model="OPT-13B")],
        )
        assert sim.executors[0].model.name == "OPT-13B"

    def test_hermes_fleet_reproduces_homogeneous_run(self, tiny_trace):
        """Acceptance pin: a 1-group hermes-only fleet is bit-for-bit
        today's homogeneous report."""
        workload = generate_workload(
            WorkloadConfig(rate=800.0, num_requests=14,
                           prompt_lens=LengthDistribution(mean=24),
                           output_lens=LengthDistribution(
                               kind="uniform", mean=10, low=4, high=16)),
            seed=4)
        config = ServingConfig(max_batch=6, num_machines=2)
        old = ServingSimulator("tiny-test", "fcfs", config,
                               trace=tiny_trace).run(list(workload))
        new = ServingSimulator("tiny-test", "fcfs", config,
                               trace=tiny_trace,
                               fleet=[MachineGroup(count=2)]
                               ).run(list(workload))
        assert old.makespan == new.makespan
        assert old.machine_gpu_busy == new.machine_gpu_busy
        assert old.machine_dimm_busy == new.machine_dimm_busy
        assert ([r.token_times for r in old.records]
                == [r.token_times for r in new.records])
        assert old.queue_samples == new.queue_samples


class TestThroughputRouter:
    def _request(self, i):
        return Request(req_id=i, arrival=float(i), prompt_len=8, output_len=4)

    def test_normalizes_load_by_speed(self):
        router = ThroughputLeastLoadedRouter()
        router.bind_fleet([10.0, 100.0])
        # 3 queued on the 10x faster machine drain before 1 on the slow
        assert router.route(self._request(0), [1.0, 3.0]) == 1
        # uniform speeds: plain least-loaded with ties to lowest index
        router.bind_fleet([5.0, 5.0])
        assert router.route(self._request(1), [2.0, 2.0]) == 0
        assert router.route(self._request(2), [3.0, 1.0]) == 1

    def test_unbound_degenerates_to_least_loaded(self):
        router = ThroughputLeastLoadedRouter()
        assert router.route(self._request(0), [2.0, 1.0, 3.0]) == 1

    def test_bind_validation(self):
        router = ThroughputLeastLoadedRouter()
        with pytest.raises(ValueError, match="positive"):
            router.bind_fleet([1.0, 0.0])
        router.bind_fleet([1.0, 2.0])
        with pytest.raises(ValueError, match="bound to 2"):
            router.route(self._request(0), [1.0, 1.0, 1.0])

    def test_registered(self):
        router = get_router("throughput-least-loaded")
        assert isinstance(router, ThroughputLeastLoadedRouter)
        assert router.needs_throughputs


class TestOfflineBaselinesStillOffline:
    """The steppable refactor keeps the offline run() surface intact."""

    def test_flexgen_token_cost_positive(self, machine, tiny_model):
        pipeline, transfer_only, attn = FlexGen(
            machine, tiny_model).token_cost(64, 2)
        assert pipeline >= transfer_only > 0
        assert attn > 0

    def test_tensorrt_token_cost_composes(self, tiny_model):
        system = TensorRTLLM(tiny_model)
        token = system.decode_token_cost(64, 2)
        fc, comm, attn = system.layer_costs(64, 2)
        assert token == pytest.approx(
            tiny_model.num_layers * (fc + comm + attn)
        )

    def test_executor_is_the_hermes_backend(
        self, machine, tiny_model, tiny_trace
    ):
        executor = MachineExecutor(machine, tiny_model, trace=tiny_trace)
        assert executor.name == "hermes"
        assert isinstance(executor, ServingBackend)
