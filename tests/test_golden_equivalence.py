"""Golden-equivalence tests for the vectorized decode fast path.

``tests/data/golden_engine_tiny.json`` was captured from the seed
(pre-vectorization) engine by ``tools/capture_goldens.py``.  The
vectorized engine must reproduce every recorded number *exactly* — JSON
float serialisation round-trips, so every comparison below is bit-for-bit:
per-step ``StepCost`` components, ``RunResult`` breakdowns, predictor
accuracy/recall, remap/swap counters, and the serving simulator's
percentile metrics.

If an intentional engine-semantics change ever invalidates these goldens,
regenerate them with::

    PYTHONPATH=src python tools/capture_goldens.py
"""

import json
import pathlib

import pytest

from repro.core import HermesConfig, HermesSystem
from repro.hardware import Machine
from repro.models import get_model
from repro.serving import (
    LengthDistribution,
    ServingConfig,
    ServingSimulator,
    WorkloadConfig,
    default_serving_trace,
    generate_workload,
)
from repro.sparsity import TraceConfig, generate_trace

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "data" / "golden_engine_tiny.json"
)
BASELINE_GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "data" / "golden_baselines_tiny.json"
)

CONFIGS = {
    "default": HermesConfig(),
    "oracle": HermesConfig(oracle=True),
    "random-no-online": HermesConfig(
        partition_strategy="random", online_adjustment=False,
        window_scheduling=False),
    "token-only": HermesConfig(layer_prediction=False,
                               window_scheduling=False),
    "layer-only": HermesConfig(token_prediction=False,
                               window_scheduling=False),
    "no-window": HermesConfig(window_scheduling=False),
}


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden_trace(golden):
    spec = golden["trace"]
    model = get_model(spec["model"])
    config = TraceConfig(
        prompt_len=spec["prompt_len"],
        decode_len=spec["decode_len"],
        granularity=spec["granularity"],
    )
    return generate_trace(model, config, seed=spec["seed"])


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("batch", (1, 4))
def test_engine_matches_seed_goldens(golden, golden_trace, config_name, batch):
    key = f"{config_name}/batch{batch}"
    want = golden["engine"][key]
    model = get_model(golden["trace"]["model"])
    session = HermesSystem(Machine(), model, CONFIGS[config_name]).session(
        golden_trace, batch
    )
    session.prefill()
    steps = [
        session.decode_step() for _ in range(golden_trace.n_decode_tokens)
    ]
    result = session.finish()

    assert result.prefill_time == want["prefill_time"]
    assert result.decode_time == want["decode_time"]
    assert dict(result.breakdown) == want["breakdown"]
    assert result.metadata["predictor_accuracy"] == \
        want["predictor_accuracy"]
    assert result.metadata["predictor_recall"] == want["predictor_recall"]
    assert result.metadata["remap_bytes"] == want["remap_bytes"]
    assert result.metadata["remap_groups"] == want["remap_groups"]
    assert result.metadata["swap_bytes"] == want["swap_bytes"]
    assert result.metadata["hot_bytes"] == want["hot_bytes"]
    assert [s.seconds for s in steps] == want["step_seconds"]
    assert [s.gpu_busy for s in steps] == want["step_gpu_busy"]
    assert [s.dimm_busy for s in steps] == want["step_dimm_busy"]


@pytest.mark.parametrize("rate", (50.0, 2000.0))
@pytest.mark.parametrize("policy", ("fcfs", "hermes-union"))
def test_serving_matches_seed_goldens(golden, rate, policy):
    want = golden["serving"][f"rate{rate:g}/{policy}"]
    model = get_model("tiny-test")
    trace = default_serving_trace(model, granularity=4)
    workload = generate_workload(
        WorkloadConfig(
            rate=rate, num_requests=32,
            prompt_lens=LengthDistribution(mean=32),
            output_lens=LengthDistribution(kind="uniform", mean=24,
                                           low=8, high=40)),
        seed=3)
    report = ServingSimulator("tiny-test", policy,
                              ServingConfig(max_batch=16),
                              trace=trace).run(workload)
    assert len(report.completed) == want["completed"]
    assert report.tokens_per_second == want["tokens_per_second"]
    assert report.ttft_percentile(50) == want["ttft_p50"]
    assert report.ttft_percentile(99) == want["ttft_p99"]
    assert report.e2e_percentile(50) == want["e2e_p50"]
    assert report.e2e_percentile(99) == want["e2e_p99"]
    assert report.mean_batch_size == want["mean_batch"]
    assert report.dimm_utilization == want["dimm_utilization"]
    assert report.makespan == want["makespan"]


@pytest.fixture(scope="module")
def baseline_golden():
    return json.loads(BASELINE_GOLDEN_PATH.read_text())


@pytest.mark.parametrize(
    "name", ("flexgen", "dejavu", "accelerate", "tensorrt")
)
@pytest.mark.parametrize("batch", (1, 4))
def test_baselines_match_goldens(baseline_golden, name, batch):
    """The offline baselines' RunResults are pinned bit-for-bit.

    Their per-token cost kernels back both the comparative figures
    (fig09/fig17) and the steppable serving backends, so any refactor of
    the byte accounting must reproduce these numbers exactly.
    """
    from tools.capture_goldens import _baseline_systems

    spec = baseline_golden["trace"]
    model = get_model(spec["model"])
    trace = generate_trace(
        model,
        TraceConfig(prompt_len=spec["prompt_len"],
                    decode_len=spec["decode_len"],
                    granularity=spec["granularity"]),
        seed=spec["seed"])
    system = _baseline_systems(Machine(), model)[name]
    result = system.run(trace, batch=batch)
    want = baseline_golden["baselines"][f"{name}/batch{batch}"]
    assert result.system == want["system"]
    assert result.prefill_time == want["prefill_time"]
    assert result.decode_time == want["decode_time"]
    assert dict(result.breakdown) == want["breakdown"]
    assert json.loads(json.dumps(result.metadata)) == want["metadata"]
