"""Distribution-level validation of ``fidelity: fast``.

Fast fidelity replaces per-token event replay with one closed-form span
estimate per admitted batch (uniform token spacing within the span), so
it is *not* bit-equal to exact mode — individual token timestamps move
within a span.  What must survive is the distribution: the metrics a
study actually reports.  The contract pinned here, for fixed seeds:

* latency percentiles (TTFT, E2E at p50/p95/p99), makespan, goodput
  and tokens/sec within **5 %** relative (plus a 1 ms absolute floor
  for near-zero percentiles);
* SLO attainment fractions within **0.05** absolute;
* request completion counts and migration counts exactly equal (fast
  mode changes token *timing*, never scheduling outcomes at this
  granularity envelope).

The budget is calibrated against an exhaustive sweep of this grid
(rate × max_batch × seed): the measured worst case is ~2.9 % on tail
percentiles at max_batch=2 under 600 req/s overload — long spans with
tiny batches are where uniform spacing diverges most from the exact
context ramp — while moderate loads sit near ~1e-3 and the crash
drill near ~3e-4.  Goodput's deltas are additionally discrete (a
request flipping across the SLO boundary moves it by its whole token
count).  Fast mode composes with sharding, and stays deterministic
run-to-run — both pinned below.
"""

from __future__ import annotations

import dataclasses
import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ClusterSimulator
from repro.cluster.slo import PriorityClass, SLOPolicy
from repro.serving import WorkloadConfig, generate_workload
from repro.serving.faults import CrashSpec, FaultSchedule
from repro.serving.workload import merge_workloads

MODEL = "tiny-test"
REL_TOL = 0.05
ABS_FLOOR = 1e-3
ATTAINMENT_TOL = 0.05

SLO = SLOPolicy(classes=(
    PriorityClass(name="default", priority=0, ttft_slo=0.3, tbt_slo=0.01),
))


def _workload(per, rate, seed):
    return merge_workloads(*[
        generate_workload(
            WorkloadConfig(num_requests=per, rate=rate),
            seed=seed + i,
            tenant=f"t{i}",
        )
        for i in range(4)
    ])


def _pair(base, workload):
    """(exact report, fast report) for the same scenario."""
    reports = []
    for fid in ("exact", "fast"):
        cfg = dataclasses.replace(base, fidelity=fid)
        sim = ClusterSimulator(MODEL, "fcfs", cfg, slo=SLO)
        reports.append(sim.run(list(workload)))
    return reports


def _close(exact, fast):
    if math.isnan(exact):
        return math.isnan(fast)
    return abs(fast - exact) <= max(REL_TOL * abs(exact), ABS_FLOOR)


def _assert_distributions_close(exact, fast):
    assert len(fast.records) == len(exact.records)
    assert len(fast.completed) == len(exact.completed)
    assert (sum(r.migrations for r in fast.records)
            == sum(r.migrations for r in exact.records))
    assert _close(exact.makespan, fast.makespan)
    for p in (50, 95, 99):
        assert _close(exact.ttft_percentile(p), fast.ttft_percentile(p)), (
            f"ttft p{p}: exact={exact.ttft_percentile(p)} "
            f"fast={fast.ttft_percentile(p)}")
        assert _close(exact.e2e_percentile(p), fast.e2e_percentile(p)), (
            f"e2e p{p}: exact={exact.e2e_percentile(p)} "
            f"fast={fast.e2e_percentile(p)}")
    ea = exact.slo_attainment("default")
    fa = fast.slo_attainment("default")
    for key in ("ttft", "tbt", "joint"):
        assert abs(fa[key] - ea[key]) <= ATTAINMENT_TOL, (
            f"attainment[{key}]: exact={ea[key]} fast={fa[key]}")
    assert _close(exact.goodput, fast.goodput), (
        f"goodput: exact={exact.goodput} fast={fast.goodput}")
    assert _close(exact.tokens_per_second, fast.tokens_per_second)


class TestFastFidelityTolerance:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        rate=st.sampled_from([8.0, 200.0, 600.0]),
        max_batch=st.sampled_from([2, 4, 8]),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_fault_free(self, rate, max_batch, seed):
        """Percentiles/attainment/goodput within budget across loads."""
        base = ClusterConfig(num_machines=4, router="round-robin",
                             max_batch=max_batch)
        exact, fast = _pair(base, _workload(30, rate, 11 + seed))
        _assert_distributions_close(exact, fast)

    def test_under_crash_faults(self):
        """Crash-truncated spans stay within the same budget."""
        faults = FaultSchedule(crashes=(
            CrashSpec(machine=1, at=0.2, restart_after=0.3),
            CrashSpec(machine=3, at=0.5, restart_after=0.4),
        ))
        base = ClusterConfig(num_machines=4, router="session-affinity",
                             max_batch=4, faults=faults)
        exact, fast = _pair(base, _workload(60, 300.0, 5))
        assert sum(r.migrations for r in exact.records) > 0
        _assert_distributions_close(exact, fast)

    def test_fast_plus_sharded_deterministic(self):
        """fidelity:fast composes with shards; two runs are identical."""
        cfg = ClusterConfig(num_machines=4, router="round-robin",
                            max_batch=4, fidelity="fast", shards=2)
        workload = _workload(20, 100.0, 29)
        runs = [
            ClusterSimulator(MODEL, "fcfs", cfg, slo=SLO).run(list(workload))
            for _ in range(2)
        ]
        a, b = runs
        assert a.makespan == b.makespan
        assert a.machine_gpu_busy == b.machine_gpu_busy
        for ra, rb in zip(a.records, b.records):
            assert ra.token_times == rb.token_times
            assert ra.machine == rb.machine

    def test_fast_sharded_within_tolerance_of_exact(self):
        """Sharded fast mode stays inside the same tolerance envelope.

        Fast + sharded is *not* bit-equal to fast unsharded: the
        coordinator pre-routes every arrival, so shards bound spans at
        the arrivals targeting each machine instead of every global
        arrival (same admission instants, different uniform-spacing
        windows).  The contract is the distribution one, against the
        exact single-calendar reference, with identical budgets.
        """
        base = ClusterConfig(num_machines=4, router="round-robin",
                             max_batch=4)
        workload = _workload(20, 100.0, 41)
        exact = ClusterSimulator(MODEL, "fcfs", base, slo=SLO).run(
            list(workload))
        cfg = dataclasses.replace(base, fidelity="fast", shards=4)
        fast = ClusterSimulator(MODEL, "fcfs", cfg, slo=SLO).run(
            list(workload))
        _assert_distributions_close(exact, fast)
        assert [r.machine for r in fast.records] == [
            r.machine for r in exact.records
        ]
