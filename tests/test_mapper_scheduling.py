"""Unit + property tests for the online mapper (§IV-C2) and the
window-based scheduler (§IV-D, Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NeuronMapper, WindowScheduler
from repro.core.partition import OfflinePartition
from repro.sparsity import NeuronLayout


@pytest.fixture(scope="session")
def layout(tiny_model):
    return NeuronLayout.build(tiny_model, granularity=4)


def make_mapper(layout, budget_groups=50):
    budget = int(layout.group_bytes[:budget_groups].sum())
    mapper = NeuronMapper(layout, budget)
    return mapper


def empty_partition(layout, num_dimms=4):
    g = layout.groups_per_layer
    return OfflinePartition(
        hot_masks=[np.zeros(g, dtype=bool)
                   for _ in range(layout.model.num_layers)],
        dimm_of=[np.arange(g) % num_dimms
                 for _ in range(layout.model.num_layers)],
        strategy="greedy",
    )


class TestMapper:
    def test_initialize_loads_partition(self, layout):
        mapper = make_mapper(layout)
        partition = empty_partition(layout)
        partition.hot_masks[0][:10] = True
        mapper.initialize(partition)
        assert mapper.resident[0][:10].all()
        assert mapper.resident_bytes == layout.group_bytes[:10].sum()

    def test_initialize_rejects_oversized_partition(self, layout):
        mapper = NeuronMapper(layout, gpu_budget_bytes=0)
        partition = empty_partition(layout)
        partition.hot_masks[0][:10] = True
        with pytest.raises(ValueError):
            mapper.initialize(partition)

    def test_swaps_in_hot_groups(self, layout):
        # no initialize(): the per-layer ceiling defaults to the full
        # GPU budget, so hot newcomers stream in freely
        mapper = make_mapper(layout)
        states = np.zeros(layout.groups_per_layer, dtype=np.int8)
        states[:5] = 15
        result = mapper.adjust(0, states)
        assert result.swapped_in == 5
        assert mapper.resident[0][:5].all()
        mapper.check_invariants()

    def test_ignores_groups_below_threshold(self, layout):
        mapper = make_mapper(layout)
        mapper.initialize(empty_partition(layout))
        states = np.full(layout.groups_per_layer, 10, dtype=np.int8)
        assert mapper.adjust(0, states).swapped_in == 0

    def test_budget_limits_transfers(self, layout):
        mapper = make_mapper(layout)
        states = np.full(layout.groups_per_layer, 15, dtype=np.int8)
        one_group = int(layout.group_bytes[0])
        result = mapper.adjust(0, states, max_bytes=one_group)
        assert result.swapped_in == 1

    def test_layer_budget_caps_growth(self, layout):
        """After initialize(), a layer's residency footprint is fixed:
        swap-ins past the offline allocation require paired evictions."""
        mapper = make_mapper(layout, budget_groups=100)
        partition = empty_partition(layout)
        partition.hot_masks[0][:2] = True
        mapper.initialize(partition)
        states = np.zeros(layout.groups_per_layer, dtype=np.int8)
        states[:20] = 15  # many hot candidates, all hotter than residents
        mapper.adjust(0, states)
        used = mapper.residency_bytes(0)
        assert used <= mapper.layer_budget[0]
        mapper.check_invariants()

    def test_evicts_coldest_resident_when_full(self, layout):
        # budget of exactly 2 attention groups
        budget = int(layout.group_bytes[:2].sum())
        mapper = NeuronMapper(layout, budget)
        partition = empty_partition(layout)
        partition.hot_masks[0][:2] = True
        mapper.initialize(partition)
        states = np.zeros(layout.groups_per_layer, dtype=np.int8)
        states[0] = 2   # coldest resident
        states[1] = 12
        states[5] = 15  # hot newcomer
        result = mapper.adjust(0, states)
        assert result.swapped_in == 1 and result.swapped_out == 1
        assert not mapper.resident[0][0]
        assert mapper.resident[0][5]
        mapper.check_invariants()

    def test_never_evicts_hotter_than_newcomer(self, layout):
        budget = int(layout.group_bytes[:1].sum())
        mapper = NeuronMapper(layout, budget)
        partition = empty_partition(layout)
        partition.hot_masks[0][0] = True
        mapper.initialize(partition)
        states = np.zeros(layout.groups_per_layer, dtype=np.int8)
        states[0] = 15  # resident, maximally hot
        states[5] = 12  # newcomer, hot but colder
        result = mapper.adjust(0, states)
        assert result.swapped_in == 0
        assert mapper.resident[0][0]

    def test_rejects_negative_budget(self, layout):
        with pytest.raises(ValueError):
            NeuronMapper(layout, -1)

    def test_rejects_bad_state_shape(self, layout):
        mapper = make_mapper(layout)
        with pytest.raises(ValueError):
            mapper.adjust(0, np.zeros(3, dtype=np.int8))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_budget_never_exceeded(self, layout, seed):
        rng = np.random.default_rng(seed)
        mapper = make_mapper(layout, budget_groups=30)
        for _ in range(5):
            layer = int(rng.integers(0, layout.model.num_layers))
            states = rng.integers(0, 16, layout.groups_per_layer).astype(
                np.int8
            )
            mapper.adjust(layer, states, max_bytes=int(rng.integers(0, 2**20)))
            mapper.check_invariants()


class TestWindowScheduler:
    def make(self, layout, num_dimms=4, window=5):
        return WindowScheduler(layout, num_dimms, window=window)

    def observe_tokens(self, scheduler, layout, rng, n=5, density=0.3):
        for _ in range(n):
            masks = [rng.random(layout.groups_per_layer) < density
                     for _ in range(layout.model.num_layers)]
            scheduler.observe_token(masks)

    def test_window_fills(self, layout):
        scheduler = self.make(layout, window=3)
        rng = np.random.default_rng(0)
        assert not scheduler.window_full
        self.observe_tokens(scheduler, layout, rng, n=3)
        assert scheduler.window_full

    def test_rebalance_reduces_pair_imbalance(self, layout):
        scheduler = self.make(layout, num_dimms=2)
        rng = np.random.default_rng(1)
        self.observe_tokens(scheduler, layout, rng)
        # heavily skewed: everything on DIMM 0
        dimm_of = np.zeros(layout.groups_per_layer, dtype=np.int64)
        before = scheduler.dimm_loads(0, dimm_of)
        result = scheduler.rebalance_layer(0, dimm_of)
        after = scheduler.dimm_loads(0, dimm_of)
        assert result.moved_groups > 0
        assert after.max() < before.max()

    def test_rebalance_never_increases_max_load(self, layout):
        scheduler = self.make(layout, num_dimms=4)
        rng = np.random.default_rng(2)
        self.observe_tokens(scheduler, layout, rng)
        dimm_of = rng.integers(0, 4, layout.groups_per_layer)
        before = scheduler.dimm_loads(0, dimm_of).max()
        scheduler.rebalance_layer(0, dimm_of)
        after = scheduler.dimm_loads(0, dimm_of).max()
        assert after <= before + 1e-9

    def test_balanced_input_moves_nothing(self, layout):
        scheduler = self.make(layout, num_dimms=2)
        masks = [np.ones(layout.groups_per_layer, dtype=bool)
                 for _ in range(layout.model.num_layers)]
        for _ in range(5):
            scheduler.observe_token(masks)
        dimm_of = np.arange(layout.groups_per_layer) % 2
        result = scheduler.rebalance_layer(0, dimm_of)
        assert result.moved_groups <= 1

    def test_single_dimm_is_noop(self, layout):
        scheduler = self.make(layout, num_dimms=1)
        rng = np.random.default_rng(3)
        self.observe_tokens(scheduler, layout, rng)
        dimm_of = np.zeros(layout.groups_per_layer, dtype=np.int64)
        assert scheduler.rebalance_layer(0, dimm_of).moved_groups == 0

    def test_excluded_groups_do_not_count_or_move(self, layout):
        scheduler = self.make(layout, num_dimms=2)
        rng = np.random.default_rng(4)
        self.observe_tokens(scheduler, layout, rng, density=0.5)
        dimm_of = np.zeros(layout.groups_per_layer, dtype=np.int64)
        exclude = np.ones(layout.groups_per_layer, dtype=bool)
        result = scheduler.rebalance_layer(0, dimm_of, exclude=exclude)
        assert result.moved_groups == 0

    def test_rebalance_all_resets_window(self, layout):
        scheduler = self.make(layout, num_dimms=2, window=2)
        rng = np.random.default_rng(5)
        self.observe_tokens(scheduler, layout, rng, n=2)
        dimm_of = [np.zeros(layout.groups_per_layer, dtype=np.int64)
                   for _ in range(layout.model.num_layers)]
        scheduler.rebalance_all(dimm_of)
        assert not scheduler.window_full

    def test_pair_bytes_track_bridges(self, layout):
        scheduler = self.make(layout, num_dimms=2)
        rng = np.random.default_rng(6)
        self.observe_tokens(scheduler, layout, rng, density=0.6)
        dimm_of = np.zeros(layout.groups_per_layer, dtype=np.int64)
        result = scheduler.rebalance_layer(0, dimm_of)
        assert result.moved_bytes == sum(result.pair_bytes.values())
        assert result.max_link_bytes <= result.moved_bytes

    def test_validation(self, layout):
        with pytest.raises(ValueError):
            WindowScheduler(layout, 0)
        with pytest.raises(ValueError):
            WindowScheduler(layout, 2, window=0)
        scheduler = self.make(layout)
        with pytest.raises(ValueError):
            scheduler.observe_token([])

    @given(seed=st.integers(0, 500), num_dimms=st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_property_rebalance_monotone(self, layout, seed, num_dimms):
        """Algorithm 1 never increases any layer's max DIMM load."""
        rng = np.random.default_rng(seed)
        scheduler = self.make(layout, num_dimms=num_dimms)
        self.observe_tokens(
            scheduler, layout, rng, density=float(rng.uniform(0.05, 0.6))
        )
        dimm_of = rng.integers(0, num_dimms, layout.groups_per_layer)
        before = scheduler.dimm_loads(1, dimm_of).max()
        scheduler.rebalance_layer(1, dimm_of)
        assert scheduler.dimm_loads(1, dimm_of).max() <= before + 1e-9
